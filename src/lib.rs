//! # vartol — statistical gate sizing for process-variation tolerance
//!
//! Umbrella crate re-exporting the full `vartol` workspace: a Rust
//! reproduction of *"Improving the Process-Variation Tolerance of Digital
//! Circuits Using Gate Sizing and Statistical Techniques"* (Neiroukh & Song,
//! DATE 2005).
//!
//! The workspace is organized bottom-up:
//!
//! * [`stats`] — random-variable toolkit: [`stats::Moments`], Clark's max,
//!   the paper's fast max approximation, discrete PDFs, Monte Carlo.
//! * [`liberty`] — a synthetic 90nm lookup-table standard-cell library with
//!   6–8 sizes per gate type and a proportional + random variation model.
//! * [`netlist`] — gate-level combinational netlists, an ISCAS-85 `.bench`
//!   parser, and structural generators for the paper's benchmark suite.
//! * [`ssta`] — timing engines behind the unified
//!   [`TimingEngine`](ssta::TimingEngine) trait: deterministic STA, the
//!   accurate discrete-PDF engine (FULLSSTA), the fast moment engine
//!   (FASSTA), Monte-Carlo reference timing, WNSS path tracing — plus the
//!   incremental [`TimingSession`](ssta::TimingSession) API the optimizers
//!   run on. The Monte-Carlo reference samples in parallel on a scoped
//!   worker pool ([`ssta::ScopedPool`], [`SstaConfig::threads`](ssta::SstaConfig))
//!   while staying **bit-identical for every thread count**: the sample
//!   budget splits into fixed chunks, each chunk draws from its own
//!   `(seed, chunk_index)`-derived RNG stream, and chunk summaries —
//!   mergeable Welford accumulators ([`stats::RunningMoments`]) — combine
//!   in chunk order.
//! * [`core`] — the paper's contribution: the `StatisticalGreedy` sizer with
//!   the weighted `μ + α·σ` objective, plus deterministic baselines. Its
//!   candidate-evaluation inner loop is parallel: each outer pass forks the
//!   timing session ([`TimingSession::fork_for_trial`](ssta::TimingSession::fork_for_trial))
//!   once per worker, scores every `(gate, size)` candidate on the frozen
//!   pass-start statistics concurrently, and merges the bids in path order —
//!   so the chosen resizes, final moments, and area are bit-identical for
//!   every thread count (`SizerConfig::with_threads`, 0 = all CPUs), just
//!   like the Monte-Carlo engine.
//!
//! # Benchmark-suite runner
//!
//! The `vartol-suite` binary (in `crates/bench`) is the perf-artifact
//! pipeline: it runs all four engines plus the full optimization flow over
//! a scenario matrix — `data/*.bench` circuits and the generator presets
//! (`netlist::generators::presets`: adders, multipliers, ALUs, ECC
//! correctors, comparators, seeded random DAGs at several sizes) — and
//! writes a validated `BENCH_suite.json` with per-circuit wall-clock, μ/σ
//! before/after sizing, area delta, resize count, and thread count. CI runs
//! the small tier on every push and uploads the report as a workflow
//! artifact, failing on panics or non-finite statistics:
//!
//! ```text
//! cargo run --release -p vartol-bench --bin vartol-suite -- --subset small
//! cargo run --release -p vartol-bench --bin vartol-suite -- --check BENCH_suite.json
//! ```
//!
//! # Quickstart
//!
//! ```
//! use vartol::liberty::Library;
//! use vartol::netlist::generators::ripple_carry_adder;
//! use vartol::ssta::{EngineKind, SstaConfig, TimingSession};
//! use vartol::core::{StatisticalGreedy, SizerConfig};
//!
//! # fn main() {
//! let library = Library::synthetic_90nm();
//! let mut netlist = ripple_carry_adder(8, &library);
//!
//! // Optimize for variance with alpha = 3.
//! let sizer = StatisticalGreedy::new(&library, SizerConfig::with_alpha(3.0));
//! let report = sizer.optimize(&mut netlist);
//! assert!(report.final_moments().std() <= report.initial_moments().std());
//!
//! // Inspect the result through an incremental timing session: any
//! // engine on demand, and cone-limited re-analysis after edits.
//! let mut session = TimingSession::new(&library, SstaConfig::default(), &mut netlist);
//! let optimized = session.refresh();
//! let sanity = session.report(EngineKind::Fassta).circuit_moments();
//! assert!((optimized.mean - sanity.mean).abs() / optimized.mean < 0.15);
//!
//! // What-if: resize one gate and re-analyze only its fanout cone.
//! let gate = session.netlist().gate_ids().next().unwrap();
//! session.resize(gate, 5);
//! let what_if = session.refresh();
//! # let _ = (report, what_if);
//! # }
//! ```

pub use vartol_core as core;
pub use vartol_liberty as liberty;
pub use vartol_netlist as netlist;
pub use vartol_ssta as ssta;
pub use vartol_stats as stats;
