//! # vartol — statistical gate sizing for process-variation tolerance
//!
//! Umbrella crate re-exporting the full `vartol` workspace: a Rust
//! reproduction of *"Improving the Process-Variation Tolerance of Digital
//! Circuits Using Gate Sizing and Statistical Techniques"* (Neiroukh & Song,
//! DATE 2005).
//!
//! **Front-door documents** (repo root): `README.md` — crate map,
//! quickstart, how to run tests/benches/`vartol-suite`, determinism
//! guarantees — and `ARCHITECTURE.md` — the layer diagram, engine data
//! flow, session/`Workspace` lifecycle, and the determinism design.
//! Both live next to this crate's `Cargo.toml`; start there when
//! navigating the workspace.
//!
//! The workspace is organized bottom-up:
//!
//! * [`stats`] — random-variable toolkit: [`stats::Moments`], Clark's max,
//!   the paper's fast max approximation, discrete PDFs, Monte Carlo.
//! * [`liberty`] — a synthetic 90nm lookup-table standard-cell library with
//!   6–8 sizes per gate type and a proportional + random variation model.
//! * [`netlist`] — gate-level combinational netlists, an ISCAS-85 `.bench`
//!   parser, and structural generators for the paper's benchmark suite.
//! * [`ssta`] — timing engines behind the unified
//!   [`TimingEngine`](ssta::TimingEngine) trait: deterministic STA, the
//!   accurate discrete-PDF engine (FULLSSTA), the fast moment engine
//!   (FASSTA), Monte-Carlo reference timing, WNSS path tracing — plus the
//!   incremental [`TimingSession`](ssta::TimingSession), an **owned
//!   handle** (an `Arc<Library>` and the netlist itself live inside, no
//!   lifetime parameters) that optimizers and services keep alive across
//!   thousands of queries. The Monte-Carlo reference samples in parallel
//!   on a scoped worker pool ([`ssta::ScopedPool`],
//!   [`SstaConfig::threads`](ssta::SstaConfig)) while staying
//!   **bit-identical for every thread count**: the sample budget splits
//!   into fixed chunks, each chunk draws from its own
//!   `(seed, chunk_index)`-derived RNG stream, and chunk summaries —
//!   mergeable Welford accumulators ([`stats::RunningMoments`]) — combine
//!   in chunk order.
//! * [`core`] — the paper's contribution: the `StatisticalGreedy` sizer with
//!   the weighted `μ + α·σ` objective, plus deterministic baselines. Both
//!   sizers hold their library through a shared handle (no lifetimes).
//!   `StatisticalGreedy`'s candidate-evaluation inner loop is parallel:
//!   each outer pass forks one copy-on-write branch
//!   ([`TimingSession::fork`](ssta::TimingSession::fork)) per worker,
//!   scores every `(gate, size)` candidate against the frozen pass-start
//!   fork base concurrently, and merges the bids in path order — so the
//!   chosen resizes, final moments, and area are bit-identical for
//!   every thread count (`SizerConfig::with_threads`, 0 = all CPUs), just
//!   like the Monte-Carlo engine.
//! * [`workspace`] — the service layer this crate adds on top:
//!   [`Workspace`] registers named circuits (`.bench` files, generator
//!   presets, or pre-built netlists) and serves **batches of typed
//!   requests** — [`Analyze`](workspace::Request::Analyze) under any
//!   engine, [`AnalyzeUnder`](workspace::Request::AnalyzeUnder) for
//!   correlated-corner analyses under an explicit
//!   [`VariationModel`](ssta::VariationModel) (die-to-die / spatial
//!   sources, see [`ssta::variation`]),
//!   [`Arrival`](workspace::Request::Arrival) /
//!   [`Slack`](workspace::Request::Slack) /
//!   [`Criticality`](workspace::Request::Criticality) queries,
//!   Monte-Carlo [`Yield`](workspace::Request::Yield) at a deadline,
//!   what-if [`Resize`](workspace::Request::Resize)s, full
//!   [`Size`](workspace::Request::Size) optimization runs, and named
//!   copy-on-write circuit versions —
//!   [`Fork`](workspace::Request::Fork) /
//!   [`BranchResize`](workspace::Request::BranchResize) /
//!   [`BranchAnalyze`](workspace::Request::BranchAnalyze) /
//!   [`Commit`](workspace::Request::Commit) /
//!   [`DropBranch`](workspace::Request::DropBranch), plus
//!   [`WhatIfBatch`](workspace::Request::WhatIfBatch) for N speculative
//!   trials evaluated in parallel — fanned out
//!   over a [`ScopedPool`](ssta::ScopedPool) with one cached session per
//!   circuit, answered in request order, bit-identical at every thread
//!   count, with malformed or panicking requests isolated to their own
//!   [`Answer::Error`].
//!
//! One layer sits *above* this crate and is therefore not re-exported
//! here (it depends on `vartol`): the **`vartol-serve`** crate
//! (`crates/serve`) fronts [`Workspace`] with a wire protocol — the
//! `vartol-serve` binary speaks newline-delimited JSON over TCP or a
//! stdin/stdout REPL, shards circuits by name hash across independent
//! workspaces with bounded admission queues, and serves repeat queries
//! from a fingerprint-keyed LRU result cache. See `ARCHITECTURE.md`
//! ("Service layer") and the `serve_client` example.
//!
//! # Migrating from the borrowed-session API (pre-0.2 idiom)
//!
//! `TimingSession` and both sizers used to borrow (`TimingSession<'l, 'n>`
//! held `&'l Library` + `&'n mut Netlist`; sizers held `&'l Library`), so
//! a session could not outlive a stack frame, be stored in a struct, or
//! serve two circuits at once. They are now owned handles. The whole
//! migration, as one compiling example (every step below is the "after"
//! idiom — the "before" forms no longer exist to compile):
//!
//! * **Constructing a session.** Previously
//!   `TimingSession::new(&lib, cfg, &mut n)` borrowed the netlist; now
//!   pass it *by value* and any library handle — `Arc<Library>`
//!   (shared), `Library` (moved), or `&Library` (cloned once) — and
//!   take the circuit back out with
//!   [`into_netlist`](ssta::TimingSession::into_netlist) when done:
//!
//!   ```
//!   use vartol::liberty::Library;
//!   use vartol::netlist::generators::ripple_carry_adder;
//!   use vartol::ssta::{SstaConfig, TimingSession};
//!
//!   let lib = Library::synthetic_90nm();
//!   let netlist = ripple_carry_adder(4, &lib);
//!   let gate = netlist.gate_ids().next().unwrap();
//!
//!   let mut session = TimingSession::new(&lib, SstaConfig::default(), netlist);
//!   session.resize(gate, 3);
//!   session.refresh();
//!   let netlist = session.into_netlist(); // the circuit comes back out
//!   assert_eq!(netlist.gate(gate).size(), Some(3));
//!   ```
//!
//! * **Sizers.** `StatisticalGreedy::new(&lib, cfg)` and
//!   `MeanDelaySizer::new(&lib, cfg)` compile unchanged (the `&Library`
//!   converts into a shared handle by cloning); to share one library
//!   across many sizers and sessions without copies, pass an
//!   `Arc<Library>`. Their `optimize`/`minimize_delay`/`recover_area`
//!   still take `&mut Netlist` and write the result back:
//!
//!   ```
//!   use std::sync::Arc;
//!   use vartol::core::{SizerConfig, StatisticalGreedy};
//!   use vartol::liberty::Library;
//!   use vartol::netlist::generators::ripple_carry_adder;
//!
//!   let lib = Arc::new(Library::synthetic_90nm());
//!   let mut netlist = ripple_carry_adder(4, &lib);
//!   let sizer = StatisticalGreedy::new(Arc::clone(&lib), SizerConfig::with_alpha(3.0));
//!   let report = sizer.optimize(&mut netlist);
//!   assert!(report.final_moments().std() <= report.initial_moments().std());
//!   ```
//!
//! * **Slack / criticality plumbing.** Instead of exporting arrivals and
//!   the electrical snapshot by hand, query the session:
//!
//!   ```
//!   use vartol::liberty::Library;
//!   use vartol::netlist::generators::ripple_carry_adder;
//!   use vartol::ssta::{SstaConfig, TimingSession};
//!
//!   let lib = Library::synthetic_90nm();
//!   let mut session =
//!       TimingSession::new(&lib, SstaConfig::default(), ripple_carry_adder(4, &lib));
//!   let m = session.refresh();
//!   let slacks = session.slacks(m.mean + 3.0 * m.std());
//!   assert!(slacks.worst_statistical_slack(3.0).is_finite());
//!   let criticality = session.criticality();
//!   assert!(!criticality.ranking().is_empty());
//!   ```
//!
//! * **Long-lived / multi-circuit use.** Store sessions in structs or
//!   maps freely — or skip the bookkeeping entirely and use a
//!   [`Workspace`], which caches one session per registered circuit and
//!   serves concurrent batches deterministically (see the next
//!   section).
//!
//! # Migrating from mutate-and-rollback to branches (0.2 → 0.3 idiom)
//!
//! Speculation used to mean mutating the one session and rolling back
//! (`resize` → measure → `restore_sizes`), or borrowing a
//! lifetime-bound `TrialSession` that could not leave the stack frame.
//! Both are superseded by **owned copy-on-write branches**:
//! [`TimingSession::fork`](ssta::TimingSession::fork) snapshots the
//! session's state once into a shared base and hands back a
//! [`SessionBranch`](ssta::SessionBranch) — cheap to create, safe to
//! send across threads, recomputing only its own divergent fanout cone,
//! and either committed back or simply dropped. The old
//! `fork_for_trial`/`TrialSession` shim is gone as of 0.7; branch code
//! reads like this:
//!
//! ```
//! use vartol::liberty::Library;
//! use vartol::netlist::generators::ripple_carry_adder;
//! use vartol::ssta::{SstaConfig, TimingSession};
//!
//! let lib = Library::synthetic_90nm();
//! let mut session =
//!     TimingSession::new(&lib, SstaConfig::default(), ripple_carry_adder(8, &lib));
//! let baseline = session.refresh();
//! let gates: Vec<_> = session.netlist().gate_ids().collect();
//!
//! // Speculate on two alternatives at once. Neither touches the
//! // session; unchanged state is physically shared between them.
//! let mut upsize = session.fork();
//! upsize.resize(gates[0], 5);
//! let mut downsize = session.fork();
//! downsize.resize(gates[0], 1);
//! let up = upsize.refresh();
//! let down = downsize.refresh();
//! assert_ne!(up.mean.to_bits(), down.mean.to_bits());
//! assert_eq!(session.circuit_moments(), baseline); // parent untouched
//!
//! // Only the divergent cone was recomputed, not the whole circuit.
//! assert!(upsize.recompute_count() > 0);
//! assert!((upsize.recompute_count() as usize) < session.netlist().node_count());
//!
//! // Keep the winner: commit adopts its state without recomputing.
//! let committed = session.commit(upsize).expect("parent unchanged since fork");
//! assert_eq!(committed, up);
//! assert_eq!(session.netlist().gate(gates[0]).size(), Some(5));
//! drop(downsize); // the loser just goes away
//! ```
//!
//! Through the [`Workspace`] the same lifecycle is the
//! `Fork`/`BranchResize`/`BranchAnalyze`/`Commit`/`DropBranch` requests
//! (branches are named, per circuit), and `WhatIfBatch` evaluates N
//! anonymous trials in parallel with answers in trial order —
//! bit-identical at every pool width. `vartol-serve` speaks all six
//! verbs on the wire (protocol v2).
//!
//! # Correlated process variation
//!
//! Every engine historically sampled gates independently; that is still
//! the default, bit for bit. [`ssta::variation`] adds die-to-die and
//! spatially-correlated components on top — configure them with
//! [`SstaConfig::with_model`](ssta::SstaConfig::with_model) and every
//! layer (engines, sessions, sizer, workspace, `vartol-suite` corners)
//! becomes correlation-aware; see the module docs for the math:
//!
//! ```
//! use vartol::liberty::Library;
//! use vartol::netlist::generators::ripple_carry_adder;
//! use vartol::ssta::{SstaConfig, TimingSession, VariationModel};
//!
//! let lib = Library::synthetic_90nm();
//! let independent = TimingSession::new(
//!     &lib,
//!     SstaConfig::default(),
//!     ripple_carry_adder(8, &lib),
//! )
//! .circuit_moments();
//!
//! // 60% of each gate's delay variance moves with the die; per-gate
//! // marginals are unchanged, but the circuit sigma grows because a
//! // shared shift cannot average down along a path.
//! let correlated = TimingSession::new(
//!     &lib,
//!     SstaConfig::default().with_model(VariationModel::die_to_die(0.6)),
//!     ripple_carry_adder(8, &lib),
//! )
//! .circuit_moments();
//! assert!(correlated.std() > independent.std());
//! ```
//!
//! # Benchmark-suite runner
//!
//! The `vartol-suite` binary (in `crates/bench`) is the perf-artifact
//! pipeline: it routes a scenario matrix — `data/*.bench` circuits and the
//! generator presets (`netlist::generators::presets`) — through a
//! [`Workspace`] batch (all four engines plus the full optimization flow
//! per circuit) and writes a validated `BENCH_suite.json` with per-circuit
//! wall-clock, μ/σ before/after sizing, area delta, resize count, and
//! thread count. CI runs the small tier on every push and uploads the
//! report as a workflow artifact, failing on panics or non-finite
//! statistics:
//!
//! ```text
//! cargo run --release -p vartol-bench --bin vartol-suite -- --subset small
//! cargo run --release -p vartol-bench --bin vartol-suite -- --check BENCH_suite.json
//! ```
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use vartol::liberty::Library;
//! use vartol::netlist::generators::ripple_carry_adder;
//! use vartol::ssta::{EngineKind, SstaConfig, TimingSession};
//! use vartol::core::{StatisticalGreedy, SizerConfig};
//!
//! # fn main() {
//! let library = Arc::new(Library::synthetic_90nm());
//! let mut netlist = ripple_carry_adder(8, &library);
//!
//! // Optimize for variance with alpha = 3 (the sizer is lifetime-free).
//! let sizer = StatisticalGreedy::new(Arc::clone(&library), SizerConfig::with_alpha(3.0));
//! let report = sizer.optimize(&mut netlist);
//! assert!(report.final_moments().std() <= report.initial_moments().std());
//!
//! // Inspect the result through an owned incremental session: any
//! // engine on demand, and cone-limited re-analysis after edits.
//! let mut session = TimingSession::new(Arc::clone(&library), SstaConfig::default(), netlist);
//! let optimized = session.refresh();
//! let sanity = session.report(EngineKind::Fassta).circuit_moments();
//! assert!((optimized.mean - sanity.mean).abs() / optimized.mean < 0.15);
//!
//! // What-if: resize one gate and re-analyze only its fanout cone.
//! let gate = session.netlist().gate_ids().next().unwrap();
//! session.resize(gate, 5);
//! let what_if = session.refresh();
//! # let _ = (report, what_if);
//! # }
//! ```
//!
//! # Serving many circuits
//!
//! ```
//! use vartol::liberty::Library;
//! use vartol::ssta::EngineKind;
//! use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};
//!
//! let mut ws = Workspace::new(Library::synthetic_90nm(), WorkspaceConfig::default());
//! ws.register_preset("adder_8").unwrap();
//! ws.register_preset("cmp_16").unwrap();
//!
//! let answers = ws.submit(&[
//!     Request::Analyze { circuit: "adder_8".into(), kind: EngineKind::FullSsta },
//!     Request::Yield { circuit: "cmp_16".into(), deadline: 2500.0 },
//! ]);
//! assert!(matches!(answers[0].answer, Answer::Analysis { .. }));
//! assert!(matches!(answers[1].answer, Answer::Yield { .. }));
//! ```

pub mod workspace;

pub use vartol_core as core;
pub use vartol_liberty as liberty;
pub use vartol_netlist as netlist;
pub use vartol_ssta as ssta;
pub use vartol_stats as stats;

pub use workspace::{Answer, Request, Response, Workspace, WorkspaceConfig, WorkspaceError};

/// Compiles the repo-root `README.md` code blocks as doctests, so the
/// front-door quickstart can never drift from the real API
/// (`cargo test --doc --workspace` covers it in CI).
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
