//! A concurrent multi-circuit timing/sizing query service.
//!
//! [`Workspace`] is the batched front door the owned-handle session API
//! was built for: register any number of named circuits (parsed `.bench`
//! text, generator presets, or pre-built [`Netlist`]s), then submit
//! batches of typed [`Request`]s — analyses under any engine, arrival /
//! slack / criticality queries, Monte-Carlo yield at a deadline, what-if
//! resizes, and full sizing runs — and get [`Answer`]s back **in request
//! order**.
//!
//! # Concurrency and determinism
//!
//! Each registered circuit owns one long-lived cached
//! [`TimingSession`] (the owned handle — no lifetimes, so it survives in
//! the workspace across batches). A batch fans out over a
//! [`ScopedPool`]: one task per circuit, each task working through that
//! circuit's requests sequentially on its cached session. Requests for
//! different circuits run concurrently; requests for the same circuit
//! are serialized in submission order (a later request observes an
//! earlier resize or sizing run on the same circuit — the service is a
//! sequentially-consistent per-circuit log). Because per-circuit
//! processing is sequential and the pool returns results in task order,
//! every [`Answer`] is **bit-identical for every thread count** — the
//! same frozen-snapshot discipline the parallel Monte-Carlo engine and
//! the parallel sizer ship. Wall-clock lives on [`Response`], outside
//! the deterministic payload.
//!
//! # Fault isolation
//!
//! Malformed requests (unknown circuit or node, out-of-range size,
//! non-finite targets) are rejected up front through the netlist's
//! non-panicking `try_*` accessors and answered with [`Answer::Error`].
//! A request that still panics deep inside an engine is caught, answered
//! with [`Answer::Error`], and the circuit's session is restored to its
//! last good sizes and rebuilt from scratch — one poisoned query never
//! takes down the batch, the circuit, or the service.
//!
//! # Example
//!
//! ```
//! use vartol::ssta::EngineKind;
//! use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};
//! use vartol::liberty::Library;
//!
//! let mut ws = Workspace::new(Library::synthetic_90nm(), WorkspaceConfig::default());
//! ws.register_preset("adder_8").unwrap();
//! ws.register_preset("cmp_8").unwrap();
//!
//! let answers = ws.submit(&[
//!     Request::Analyze { circuit: "adder_8".into(), kind: EngineKind::FullSsta },
//!     Request::Slack { circuit: "cmp_8".into(), t_req: 1e4, alpha: 3.0 },
//!     Request::Analyze { circuit: "nope".into(), kind: EngineKind::Dsta },
//! ]);
//! assert!(matches!(answers[0].answer, Answer::Analysis { .. }));
//! assert!(matches!(answers[1].answer, Answer::Slack { .. }));
//! assert!(matches!(answers[2].answer, Answer::Error { .. })); // isolated
//! ```

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vartol_core::{OptimizationReport, SizerConfig, StatisticalGreedy};
use vartol_liberty::Library;
use vartol_netlist::generators::preset;
use vartol_netlist::iscas::parse_bench;
use vartol_netlist::{Netlist, NetlistError};
use vartol_ssta::{
    EngineKind, MonteCarloTimer, ScopedPool, SstaConfig, TimingSession, VariationModel,
};
use vartol_stats::Moments;

/// Knobs of a [`Workspace`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkspaceConfig {
    /// Shared engine configuration used by every cached session.
    pub ssta: SstaConfig,
    /// Pool width for batch fan-out across circuits (0 = one worker per
    /// CPU). Purely a speed knob: answers are bit-identical for every
    /// width.
    pub threads: usize,
    /// Monte-Carlo sample budget for [`Request::Yield`] and
    /// [`Request::Analyze`] with [`EngineKind::MonteCarlo`].
    pub mc_samples: usize,
    /// Monte-Carlo seed (fixed so answers are reproducible).
    pub mc_seed: u64,
}

impl Default for WorkspaceConfig {
    fn default() -> Self {
        Self {
            ssta: SstaConfig::default(),
            threads: 0,
            mc_samples: 2000,
            mc_seed: 0xDA7E_2005,
        }
    }
}

impl WorkspaceConfig {
    /// Sets the batch fan-out pool width (0 = all CPUs).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shared engine configuration.
    #[must_use]
    pub fn with_ssta(mut self, ssta: SstaConfig) -> Self {
        self.ssta = ssta;
        self
    }

    /// Sets the Monte-Carlo sample budget.
    #[must_use]
    pub fn with_mc_samples(mut self, samples: usize) -> Self {
        self.mc_samples = samples;
        self
    }

    /// Sets the Monte-Carlo seed.
    #[must_use]
    pub fn with_mc_seed(mut self, seed: u64) -> Self {
        self.mc_seed = seed;
        self
    }
}

/// Errors arising while registering circuits with a [`Workspace`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkspaceError {
    /// A circuit with this name is already registered.
    DuplicateCircuit(String),
    /// No generator preset with this name exists.
    UnknownPreset(String),
    /// The netlist failed structural or library validation.
    InvalidNetlist(NetlistError),
    /// A `.bench` file could not be read.
    Io(String),
}

impl std::fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateCircuit(n) => write!(f, "circuit `{n}` is already registered"),
            Self::UnknownPreset(n) => write!(f, "unknown generator preset `{n}`"),
            Self::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            Self::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkspaceError {}

impl From<NetlistError> for WorkspaceError {
    fn from(e: NetlistError) -> Self {
        Self::InvalidNetlist(e)
    }
}

/// One typed query against a registered circuit.
///
/// All requests address circuits (and gates) **by name**, so a batch can
/// be built, serialized, or replayed without holding any handle into the
/// workspace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Run a full analysis under the given engine and report circuit
    /// moments plus the statistically-worst output.
    Analyze {
        /// Target circuit name.
        circuit: String,
        /// Engine to run. The cached incremental session serves its own
        /// flavor ([`EngineKind::FullSsta`]) without a from-scratch pass.
        kind: EngineKind,
    },
    /// Run a full analysis under an explicit correlated variation model
    /// (die-to-die sources and/or a spatial grid —
    /// [`vartol_ssta::variation`]) **without touching the circuit's
    /// cached session**: the engine runs from scratch with the model
    /// swapped into the workspace's engine configuration. This is the
    /// correlated-corner query: the same circuit can be analyzed under
    /// any number of models in one batch, and the default-model cache
    /// stays warm and bit-identical.
    AnalyzeUnder {
        /// Target circuit name.
        circuit: String,
        /// Engine to run (all four supported; Monte Carlo samples the
        /// shared sources per die under the workspace budget and seed).
        kind: EngineKind,
        /// The correlated variation model to analyze under. Validated
        /// before anything runs; an invalid model answers
        /// [`Answer::Error`].
        model: VariationModel,
    },
    /// Arrival moments at one named node.
    Arrival {
        /// Target circuit name.
        circuit: String,
        /// Node name (as in the `.bench` source or generator).
        node: String,
    },
    /// Worst statistical slack against a required time at every output.
    Slack {
        /// Target circuit name.
        circuit: String,
        /// Required time imposed on every primary output (ps).
        t_req: f64,
        /// σ weight of the `μ − α·σ` slack ranking.
        alpha: f64,
    },
    /// The most statistically critical nodes.
    Criticality {
        /// Target circuit name.
        circuit: String,
        /// How many top-ranked nodes to return (0 = all).
        top: usize,
    },
    /// Parametric yield at a deadline, by deterministic parallel Monte
    /// Carlo under the workspace's sample budget and seed.
    Yield {
        /// Target circuit name.
        circuit: String,
        /// Clock period / deadline (ps).
        deadline: f64,
    },
    /// What-if resize of one named gate; the mutation persists for later
    /// requests on the same circuit (and later batches).
    Resize {
        /// Target circuit name.
        circuit: String,
        /// Gate name.
        gate: String,
        /// New size index into the gate's library cell group.
        size: usize,
    },
    /// Full statistical sizing of the circuit; the optimized sizes
    /// persist for later requests on the same circuit.
    Size {
        /// Target circuit name.
        circuit: String,
        /// Optimizer configuration (σ weight, pass budget, threads, …).
        config: SizerConfig,
    },
}

impl Request {
    /// The name of the circuit this request addresses.
    #[must_use]
    pub fn circuit(&self) -> &str {
        match self {
            Self::Analyze { circuit, .. }
            | Self::AnalyzeUnder { circuit, .. }
            | Self::Arrival { circuit, .. }
            | Self::Slack { circuit, .. }
            | Self::Criticality { circuit, .. }
            | Self::Yield { circuit, .. }
            | Self::Resize { circuit, .. }
            | Self::Size { circuit, .. } => circuit,
        }
    }
}

/// The deterministic payload of one answered [`Request`].
///
/// Equality is exact (f64 `PartialEq`), which is what the determinism
/// contract asserts: the same batch produces `==` answers at every pool
/// width. Wall-clock lives on [`Response`], not here.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Answer {
    /// Result of [`Request::Analyze`].
    Analysis {
        /// The engine that ran.
        kind: EngineKind,
        /// Circuit-level output moments.
        moments: Moments,
        /// Name of the statistically-worst primary output.
        worst_output: String,
    },
    /// Result of [`Request::Arrival`].
    Arrival {
        /// The queried node.
        node: String,
        /// Its arrival moments.
        moments: Moments,
    },
    /// Result of [`Request::Slack`].
    Slack {
        /// The worst statistical slack `min over nodes of μ − α·σ` (ps).
        worst: f64,
        /// Name of the node realizing it.
        worst_node: String,
    },
    /// Result of [`Request::Criticality`].
    Criticality {
        /// `(node name, criticality)` pairs, most critical first.
        ranking: Vec<(String, f64)>,
    },
    /// Result of [`Request::Yield`].
    Yield {
        /// Fraction of Monte-Carlo samples meeting the deadline.
        fraction: f64,
    },
    /// Result of [`Request::Resize`].
    Resized {
        /// Circuit moments after the incremental cone refresh.
        moments: Moments,
        /// Total cell area after the resize.
        area: f64,
    },
    /// Result of [`Request::Size`].
    Sized {
        /// The optimizer's full report (equality ignores its runtime).
        report: OptimizationReport,
        /// Total cell area after sizing.
        area: f64,
    },
    /// The request was malformed or its evaluation panicked; the rest of
    /// the batch (and the circuit's session) is unaffected.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Answer {
    fn error(message: impl Into<String>) -> Self {
        Self::Error {
            message: message.into(),
        }
    }
}

/// One answered request: the deterministic [`Answer`] plus the wall-clock
/// the evaluation took (excluded from equality and from the determinism
/// contract).
#[derive(Debug, Clone)]
pub struct Response {
    /// The deterministic payload.
    pub answer: Answer,
    /// Evaluation wall-clock.
    pub wall: Duration,
}

/// One registered circuit: its cached owned-handle session.
#[derive(Debug)]
struct CircuitEntry {
    name: String,
    session: TimingSession,
}

/// A registry of named circuits serving concurrent timing and sizing
/// query batches (see the [module docs](self)).
#[derive(Debug)]
pub struct Workspace {
    library: Arc<Library>,
    config: WorkspaceConfig,
    entries: Vec<CircuitEntry>,
    index: BTreeMap<String, usize>,
}

impl Workspace {
    /// Creates an empty workspace over a library. Accepts an
    /// `Arc<Library>`, an owned `Library`, or a `&Library` (cloned once).
    #[must_use]
    pub fn new(library: impl Into<Arc<Library>>, config: WorkspaceConfig) -> Self {
        Self {
            library: library.into(),
            config,
            entries: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// The workspace configuration.
    #[must_use]
    pub fn config(&self) -> &WorkspaceConfig {
        &self.config
    }

    /// A shared handle to the workspace's library.
    #[must_use]
    pub fn library(&self) -> Arc<Library> {
        Arc::clone(&self.library)
    }

    /// Number of registered circuits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no circuits are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered circuit names, in registration order.
    pub fn circuit_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// The current netlist of a registered circuit (reflecting any
    /// committed resizes and sizing runs).
    #[must_use]
    pub fn netlist(&self, name: &str) -> Option<&Netlist> {
        let &i = self.index.get(name)?;
        Some(self.entries[i].session.netlist())
    }

    /// The level count of a registered circuit's propagation schedule —
    /// the serial depth of the level-ordered arena, whose per-level
    /// width is what parallel propagation fans out over (see
    /// [`TimingSession::propagation_levels`]).
    #[must_use]
    pub fn propagation_levels(&self, name: &str) -> Option<usize> {
        let &i = self.index.get(name)?;
        Some(self.entries[i].session.propagation_levels())
    }

    /// Registers a pre-built netlist under a name. This is the expensive
    /// step — the circuit's cached session runs its initial full
    /// analysis here — so that queries against it are cheap.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and netlists that fail structural or
    /// library validation (the non-panicking counterpart of the
    /// panics engines raise on unknown cells).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        netlist: Netlist,
    ) -> Result<(), WorkspaceError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(WorkspaceError::DuplicateCircuit(name));
        }
        netlist.check_invariants()?;
        netlist.validate_against_library(&self.library)?;
        let session = TimingSession::with_kind(
            Arc::clone(&self.library),
            self.config.ssta.clone(),
            netlist,
            EngineKind::FullSsta,
        );
        self.index.insert(name.clone(), self.entries.len());
        self.entries.push(CircuitEntry { name, session });
        Ok(())
    }

    /// Registers a generator preset (see
    /// [`vartol_netlist::generators::presets`]) under its preset name.
    ///
    /// # Errors
    ///
    /// Rejects unknown preset names and duplicates.
    pub fn register_preset(&mut self, name: &str) -> Result<(), WorkspaceError> {
        let netlist = preset(name, &self.library)
            .ok_or_else(|| WorkspaceError::UnknownPreset(name.into()))?;
        self.register(name, netlist)
    }

    /// Parses ISCAS-85 `.bench` text and registers it under `name`.
    ///
    /// # Errors
    ///
    /// Rejects parse failures, validation failures, and duplicates.
    pub fn register_bench_str(&mut self, name: &str, text: &str) -> Result<(), WorkspaceError> {
        let netlist = parse_bench(text, name)?;
        self.register(name, netlist)
    }

    /// Loads a `.bench` file and registers it under its file stem.
    ///
    /// # Errors
    ///
    /// Rejects unreadable paths, parse failures, validation failures,
    /// and duplicates.
    pub fn register_bench_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), WorkspaceError> {
        let path = path.as_ref();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| WorkspaceError::Io(format!("{}: unreadable file name", path.display())))?
            .to_owned();
        let text = std::fs::read_to_string(path)
            .map_err(|e| WorkspaceError::Io(format!("{}: {e}", path.display())))?;
        self.register_bench_str(&stem, &text)
    }

    /// Answers a single request (a one-element [`Workspace::submit`]).
    pub fn query(&mut self, request: Request) -> Response {
        self.submit(std::slice::from_ref(&request))
            .pop()
            .expect("one request, one response")
    }

    /// Answers a batch of requests, returning responses **in request
    /// order**, bit-identical for every pool width (see the
    /// [module docs](self) for the concurrency and isolation contract).
    pub fn submit(&mut self, requests: &[Request]) -> Vec<Response> {
        // Route requests to circuits; unknown circuits answer here.
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); self.entries.len()];
        let mut responses: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        for (ri, request) in requests.iter().enumerate() {
            match self.index.get(request.circuit()) {
                Some(&ci) => routed[ci].push(ri),
                None => {
                    responses[ri] = Some(Response {
                        answer: Answer::error(format!("unknown circuit `{}`", request.circuit())),
                        wall: Duration::ZERO,
                    });
                }
            }
        }

        // Take the sessions out of the workspace and fan out: one task
        // per circuit with work, each processing its requests in
        // submission order on the circuit's cached session.
        let mut slots: Vec<Option<CircuitEntry>> = std::mem::take(&mut self.entries)
            .into_iter()
            .map(Some)
            .collect();
        let work: Vec<(usize, CircuitEntry, Vec<usize>)> = routed
            .into_iter()
            .enumerate()
            .filter(|(_, reqs)| !reqs.is_empty())
            .map(|(ci, reqs)| {
                let entry = slots[ci].take().expect("each circuit taken once");
                (ci, entry, reqs)
            })
            .collect();

        let library = Arc::clone(&self.library);
        let config = self.config.clone();
        let pool = ScopedPool::new(self.config.threads);
        let done = pool.map_items(work, |_, (ci, mut entry, reqs)| {
            let answered: Vec<(usize, Response)> = reqs
                .into_iter()
                .map(|ri| (ri, process(&library, &config, &mut entry, &requests[ri])))
                .collect();
            (ci, entry, answered)
        });

        for (ci, entry, answered) in done {
            slots[ci] = Some(entry);
            for (ri, response) in answered {
                responses[ri] = Some(response);
            }
        }
        self.entries = slots
            .into_iter()
            .map(|s| s.expect("every circuit restored"))
            .collect();
        responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }
}

/// Evaluates one request on one circuit entry, timing it and containing
/// panics: a panicking evaluation yields [`Answer::Error`] and the
/// session is restored to the sizes it had before the request and
/// rebuilt from scratch, so the entry stays serviceable.
fn process(
    library: &Arc<Library>,
    config: &WorkspaceConfig,
    entry: &mut CircuitEntry,
    request: &Request,
) -> Response {
    let t0 = Instant::now();
    let sizes_before = entry.session.sizes();
    let result = catch_unwind(AssertUnwindSafe(|| answer(library, config, entry, request)));
    let answer = result.unwrap_or_else(|payload| {
        // The session may hold half-updated analysis state; roll the
        // netlist back to its last good sizes and rebuild. Those sizes
        // analyzed fine before this request, so the rebuild succeeds.
        let _ = entry.session.try_restore_sizes(&sizes_before);
        entry.session.rebuild();
        Answer::error(format!(
            "request panicked (circuit `{}` recovered): {}",
            entry.name,
            panic_message(payload.as_ref())
        ))
    });
    Response {
        answer,
        wall: t0.elapsed(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `kind` from scratch over the entry's netlist under an explicit
/// engine configuration — Monte Carlo honoring the workspace's sample
/// budget and seed. Shared by [`Request::Analyze`] (cold kinds) and
/// [`Request::AnalyzeUnder`] so the two arms cannot drift.
fn scratch_report(
    library: &Arc<Library>,
    config: &WorkspaceConfig,
    ssta: &SstaConfig,
    netlist: &Netlist,
    kind: EngineKind,
) -> vartol_ssta::TimingReport {
    match kind {
        EngineKind::MonteCarlo => {
            let timer = MonteCarloTimer::new(library, ssta)
                .with_samples(config.mc_samples)
                .with_seed(config.mc_seed);
            vartol_ssta::TimingEngine::analyze(&timer, netlist)
        }
        _ => kind.engine(library, ssta).analyze(netlist),
    }
}

/// Packages a report as the [`Answer::Analysis`] payload (worst output
/// resolved to its name).
fn analysis_answer(
    entry: &CircuitEntry,
    kind: EngineKind,
    report: &vartol_ssta::TimingReport,
) -> Answer {
    let worst = report.worst_output();
    Answer::Analysis {
        kind,
        moments: report.circuit_moments(),
        worst_output: entry.session.netlist().gate(worst).name().to_owned(),
    }
}

/// The request dispatcher. Validation failures return [`Answer::Error`]
/// without touching the session (malformed input must not poison the
/// cached state — routed through the netlist's `try_*` accessors).
fn answer(
    library: &Arc<Library>,
    config: &WorkspaceConfig,
    entry: &mut CircuitEntry,
    request: &Request,
) -> Answer {
    match request {
        Request::Analyze { kind, .. } => {
            let report = match kind {
                // The cached session *is* the FULLSSTA state: serve it
                // incrementally instead of a from-scratch pass.
                EngineKind::FullSsta => entry.session.current_report(),
                _ => scratch_report(
                    library,
                    config,
                    &entry.session.config().clone(),
                    entry.session.netlist(),
                    *kind,
                ),
            };
            analysis_answer(entry, *kind, &report)
        }
        Request::AnalyzeUnder { kind, model, .. } => {
            if let Err(e) = model.validate() {
                return Answer::error(format!("invalid variation model: {e}"));
            }
            let mut conditioned = entry.session.config().clone();
            conditioned.model = model.clone();
            let report = scratch_report(
                library,
                config,
                &conditioned,
                entry.session.netlist(),
                *kind,
            );
            analysis_answer(entry, *kind, &report)
        }
        Request::Arrival { node, .. } => {
            let Some(id) = entry.session.netlist().gate_by_name(node) else {
                return Answer::error(format!("circuit `{}` has no node `{node}`", entry.name));
            };
            entry.session.refresh();
            Answer::Arrival {
                node: node.clone(),
                moments: entry.session.arrival(id),
            }
        }
        Request::Slack { t_req, alpha, .. } => {
            if !t_req.is_finite() {
                return Answer::error(format!("slack t_req must be finite, got {t_req}"));
            }
            if !alpha.is_finite() || *alpha < 0.0 {
                return Answer::error(format!("slack alpha must be non-negative, got {alpha}"));
            }
            let slacks = entry.session.slacks(*t_req);
            let worst_node = slacks.worst_node(*alpha);
            Answer::Slack {
                worst: slacks.worst_statistical_slack(*alpha),
                worst_node: entry.session.netlist().gate(worst_node).name().to_owned(),
            }
        }
        Request::Criticality { top, .. } => {
            let criticality = entry.session.criticality();
            let take = if *top == 0 { usize::MAX } else { *top };
            let ranking = criticality
                .ranking()
                .into_iter()
                .take(take)
                .map(|id| {
                    (
                        entry.session.netlist().gate(id).name().to_owned(),
                        criticality.of(id),
                    )
                })
                .collect();
            Answer::Criticality { ranking }
        }
        Request::Yield { deadline, .. } => {
            if !deadline.is_finite() {
                return Answer::error(format!("yield deadline must be finite, got {deadline}"));
            }
            let timer = MonteCarloTimer::new(library, entry.session.config())
                .with_samples(config.mc_samples)
                .with_seed(config.mc_seed);
            let mc = timer.sample_parallel(entry.session.netlist(), config.mc_samples);
            Answer::Yield {
                fraction: mc.yield_at(*deadline),
            }
        }
        Request::Resize { gate, size, .. } => {
            let Some(id) = entry.session.netlist().gate_by_name(gate) else {
                return Answer::error(format!("circuit `{}` has no gate `{gate}`", entry.name));
            };
            // Validate the size against the library *before* mutating
            // anything: an accepted-but-unanalyzable size would poison
            // the cached session.
            let g = match entry.session.netlist().try_gate(id) {
                Ok(g) => g,
                Err(e) => return Answer::error(e.to_string()),
            };
            let Some(function) = g.function() else {
                return Answer::error(format!("`{gate}` is a primary input, not a sizable gate"));
            };
            let arity = g.fanins().len();
            match library.group(function, arity) {
                Some(group) if *size < group.len() => {}
                Some(group) => {
                    return Answer::error(format!(
                        "size {size} out of range for `{gate}` ({function}/{arity} has {} sizes)",
                        group.len()
                    ));
                }
                None => {
                    return Answer::error(format!(
                        "library has no cell group for `{gate}` ({function}/{arity})"
                    ));
                }
            }
            if let Err(e) = entry.session.try_resize(id, *size) {
                return Answer::error(e.to_string());
            }
            let moments = entry.session.refresh();
            Answer::Resized {
                moments,
                area: entry.session.total_area(),
            }
        }
        Request::Size { config: sizer, .. } => {
            if !sizer.alpha.is_finite() || sizer.alpha < 0.0 {
                return Answer::error(format!(
                    "sizer alpha must be non-negative, got {}",
                    sizer.alpha
                ));
            }
            // The optimizer runs on a working copy; the resulting sizes
            // are committed back into the cached session through the
            // non-panicking restore path and an incremental refresh.
            let mut netlist = entry.session.netlist().clone();
            let report =
                StatisticalGreedy::new(Arc::clone(library), sizer.clone()).optimize(&mut netlist);
            if let Err(e) = entry.session.try_restore_sizes(&netlist.sizes()) {
                return Answer::error(e.to_string());
            }
            entry.session.refresh();
            Answer::Sized {
                report,
                area: entry.session.total_area(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(threads: usize) -> Workspace {
        let mut ws = Workspace::new(
            Library::synthetic_90nm(),
            WorkspaceConfig::default()
                .with_threads(threads)
                .with_mc_samples(400),
        );
        ws.register_preset("adder_8").expect("preset");
        ws.register_preset("cmp_8").expect("preset");
        ws
    }

    #[test]
    fn registration_rejects_duplicates_and_unknown_presets() {
        let mut ws = workspace(1);
        assert_eq!(
            ws.register_preset("adder_8").expect_err("duplicate"),
            WorkspaceError::DuplicateCircuit("adder_8".into())
        );
        assert_eq!(
            ws.register_preset("nope").expect_err("unknown"),
            WorkspaceError::UnknownPreset("nope".into())
        );
        assert_eq!(ws.len(), 2);
        assert_eq!(
            ws.circuit_names().collect::<Vec<_>>(),
            vec!["adder_8", "cmp_8"]
        );
    }

    #[test]
    fn registration_validates_against_the_library() {
        let mut ws = workspace(1);
        let mut bad = preset("adder_8", &ws.library()).expect("preset");
        let g = bad.gate_ids().next().expect("gates");
        bad.set_size(g, 999);
        assert!(matches!(
            ws.register("bad", bad),
            Err(WorkspaceError::InvalidNetlist(
                NetlistError::MissingCell { .. }
            ))
        ));
    }

    #[test]
    fn bench_text_registration_and_query() {
        let mut ws = workspace(1);
        ws.register_bench_str("tiny", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
            .expect("parses");
        let response = ws.query(Request::Analyze {
            circuit: "tiny".into(),
            kind: EngineKind::Dsta,
        });
        let Answer::Analysis { moments, .. } = response.answer else {
            panic!("expected analysis, got {:?}", response.answer);
        };
        assert!(moments.mean > 0.0);
    }

    #[test]
    fn unknown_circuit_and_node_yield_error_answers() {
        let mut ws = workspace(1);
        let answers = ws.submit(&[
            Request::Analyze {
                circuit: "ghost".into(),
                kind: EngineKind::Dsta,
            },
            Request::Arrival {
                circuit: "adder_8".into(),
                node: "no_such_node".into(),
            },
            Request::Resize {
                circuit: "adder_8".into(),
                gate: "no_such_gate".into(),
                size: 1,
            },
        ]);
        for response in &answers {
            assert!(
                matches!(response.answer, Answer::Error { .. }),
                "{:?}",
                response.answer
            );
        }
    }

    #[test]
    fn resize_validation_rejects_out_of_range_sizes_without_poisoning() {
        let mut ws = workspace(1);
        let gate = ws
            .netlist("adder_8")
            .expect("registered")
            .gate_ids()
            .next()
            .map(|id| ws.netlist("adder_8").unwrap().gate(id).name().to_owned())
            .expect("gates");
        let before = ws.netlist("adder_8").expect("registered").sizes();
        let response = ws.query(Request::Resize {
            circuit: "adder_8".into(),
            gate: gate.clone(),
            size: 999,
        });
        let Answer::Error { message } = &response.answer else {
            panic!("expected error, got {:?}", response.answer);
        };
        assert!(message.contains("out of range"), "{message}");
        assert_eq!(
            ws.netlist("adder_8").expect("registered").sizes(),
            before,
            "rejected resize must not mutate"
        );
        // The circuit still answers follow-up queries normally.
        let ok = ws.query(Request::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert!(matches!(ok.answer, Answer::Analysis { .. }));
    }

    #[test]
    fn analyze_under_serves_correlated_corners_without_touching_the_cache() {
        let mut ws = workspace(1);
        let answers = ws.submit(&[
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
            Request::AnalyzeUnder {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
                model: VariationModel::die_to_die(0.6),
            },
            Request::AnalyzeUnder {
                circuit: "adder_8".into(),
                kind: EngineKind::MonteCarlo,
                model: VariationModel::die_to_die(0.6),
            },
            // The cached independent-model session must be unaffected.
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
        ]);
        let Answer::Analysis {
            moments: independent,
            ..
        } = answers[0].answer
        else {
            panic!("analysis: {:?}", answers[0].answer);
        };
        let Answer::Analysis {
            moments: corner, ..
        } = answers[1].answer
        else {
            panic!("corner analysis: {:?}", answers[1].answer);
        };
        let Answer::Analysis { moments: mc, .. } = answers[2].answer else {
            panic!("MC corner: {:?}", answers[2].answer);
        };
        assert!(
            corner.std() > independent.std(),
            "a die-to-die source widens the circuit distribution: {} vs {}",
            corner.std(),
            independent.std()
        );
        assert!(
            (mc.mean - corner.mean).abs() / corner.mean < 0.05,
            "engines agree on the corner: MC {} vs FULLSSTA {}",
            mc.mean,
            corner.mean
        );
        assert_eq!(
            answers[3].answer, answers[0].answer,
            "corner queries must not perturb the cached session"
        );
    }

    #[test]
    fn analyze_under_rejects_invalid_models() {
        let mut ws = workspace(1);
        let mut bad = VariationModel::die_to_die(0.5);
        bad.global[0].sigma_scale = f64::NAN;
        let response = ws.query(Request::AnalyzeUnder {
            circuit: "adder_8".into(),
            kind: EngineKind::Dsta,
            model: bad,
        });
        let Answer::Error { message } = &response.answer else {
            panic!("expected error, got {:?}", response.answer);
        };
        assert!(message.contains("variation model"), "{message}");
        // The circuit still answers normally afterwards.
        let ok = ws.query(Request::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert!(matches!(ok.answer, Answer::Analysis { .. }));
    }

    #[test]
    fn resize_persists_for_later_requests_on_the_same_circuit() {
        let mut ws = workspace(1);
        let netlist = ws.netlist("adder_8").expect("registered");
        let id = netlist.gate_ids().next().expect("gates");
        let gate = netlist.gate(id).name().to_owned();
        let answers = ws.submit(&[
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
            Request::Resize {
                circuit: "adder_8".into(),
                gate,
                size: 4,
            },
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
        ]);
        let Answer::Analysis {
            moments: before, ..
        } = answers[0].answer
        else {
            panic!("analysis");
        };
        let Answer::Resized {
            moments: resized, ..
        } = answers[1].answer
        else {
            panic!("resized: {:?}", answers[1].answer);
        };
        let Answer::Analysis { moments: after, .. } = answers[2].answer else {
            panic!("analysis");
        };
        assert_ne!(before, after, "the resize is visible downstream");
        assert_eq!(resized, after, "incremental refresh equals re-analysis");
        assert_eq!(
            ws.netlist("adder_8").expect("registered").gate(id).size(),
            Some(4),
            "mutation persists across batches"
        );
    }
}
