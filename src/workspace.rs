//! A concurrent multi-circuit timing/sizing query service.
//!
//! [`Workspace`] is the batched front door the owned-handle session API
//! was built for: register any number of named circuits (parsed `.bench`
//! text, generator presets, or pre-built [`Netlist`]s), then submit
//! batches of typed [`Request`]s — analyses under any engine, arrival /
//! slack / criticality queries, Monte-Carlo yield at a deadline, what-if
//! resizes, and full sizing runs — and get [`Answer`]s back **in request
//! order**.
//!
//! # Concurrency and determinism
//!
//! Each registered circuit owns one long-lived cached
//! [`TimingSession`] (the owned handle — no lifetimes, so it survives in
//! the workspace across batches). A batch fans out over a
//! [`ScopedPool`]: one task per circuit, each task working through that
//! circuit's requests sequentially on its cached session. Requests for
//! different circuits run concurrently; requests for the same circuit
//! are serialized in submission order (a later request observes an
//! earlier resize or sizing run on the same circuit — the service is a
//! sequentially-consistent per-circuit log). Because per-circuit
//! processing is sequential and the pool returns results in task order,
//! every [`Answer`] is **bit-identical for every thread count** — the
//! same frozen-snapshot discipline the parallel Monte-Carlo engine and
//! the parallel sizer ship. Wall-clock lives on [`Response`], outside
//! the deterministic payload.
//!
//! # Fault isolation
//!
//! Malformed requests (unknown circuit or node, out-of-range size,
//! non-finite targets) are rejected up front through the netlist's
//! non-panicking `try_*` accessors and answered with [`Answer::Error`].
//! A request that still panics deep inside an engine is caught, answered
//! with [`Answer::Error`], and the circuit's session is restored to its
//! last good sizes and rebuilt from scratch — one poisoned query never
//! takes down the batch, the circuit, or the service.
//!
//! # Example
//!
//! ```
//! use vartol::ssta::EngineKind;
//! use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};
//! use vartol::liberty::Library;
//!
//! let mut ws = Workspace::new(Library::synthetic_90nm(), WorkspaceConfig::default());
//! ws.register_preset("adder_8").unwrap();
//! ws.register_preset("cmp_8").unwrap();
//!
//! let answers = ws.submit(&[
//!     Request::Analyze { circuit: "adder_8".into(), kind: EngineKind::FullSsta },
//!     Request::Slack { circuit: "cmp_8".into(), t_req: 1e4, alpha: 3.0 },
//!     Request::Analyze { circuit: "nope".into(), kind: EngineKind::Dsta },
//! ]);
//! assert!(matches!(answers[0].answer, Answer::Analysis { .. }));
//! assert!(matches!(answers[1].answer, Answer::Slack { .. }));
//! assert!(matches!(answers[2].answer, Answer::Error { .. })); // isolated
//! ```

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vartol_core::{MeanDelaySizer, OptimizationReport, PassStats, SizerConfig, StatisticalGreedy};
use vartol_liberty::Library;
use vartol_netlist::edif::parse_edif;
use vartol_netlist::generators::preset;
use vartol_netlist::iscas::parse_bench;
use vartol_netlist::{Netlist, NetlistError};
use vartol_ssta::{
    AnnealingConfig, AnnealingSizer, ClockConstraint, EngineKind, LagrangianConfig,
    LagrangianSizer, MonteCarloTimer, Objective, OptimizerKind, ScopedPool, SequentialTiming,
    SessionBranch, Sizer, SizingOutcome, SstaConfig, TimingSession, VariationModel,
};
use vartol_stats::Moments;

/// Knobs of a [`Workspace`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkspaceConfig {
    /// Shared engine configuration used by every cached session.
    pub ssta: SstaConfig,
    /// Pool width for batch fan-out across circuits (0 = one worker per
    /// CPU). Purely a speed knob: answers are bit-identical for every
    /// width.
    pub threads: usize,
    /// Monte-Carlo sample budget for [`Request::Yield`] and
    /// [`Request::Analyze`] with [`EngineKind::MonteCarlo`].
    pub mc_samples: usize,
    /// Monte-Carlo seed (fixed so answers are reproducible).
    pub mc_seed: u64,
}

impl Default for WorkspaceConfig {
    fn default() -> Self {
        Self {
            ssta: SstaConfig::default(),
            threads: 0,
            mc_samples: 2000,
            mc_seed: 0xDA7E_2005,
        }
    }
}

impl WorkspaceConfig {
    /// Sets the batch fan-out pool width (0 = all CPUs).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shared engine configuration.
    #[must_use]
    pub fn with_ssta(mut self, ssta: SstaConfig) -> Self {
        self.ssta = ssta;
        self
    }

    /// Sets the Monte-Carlo sample budget.
    #[must_use]
    pub fn with_mc_samples(mut self, samples: usize) -> Self {
        self.mc_samples = samples;
        self
    }

    /// Sets the Monte-Carlo seed.
    #[must_use]
    pub fn with_mc_seed(mut self, seed: u64) -> Self {
        self.mc_seed = seed;
        self
    }
}

/// Errors arising while registering circuits with a [`Workspace`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkspaceError {
    /// A circuit with this name is already registered.
    DuplicateCircuit(String),
    /// No generator preset with this name exists.
    UnknownPreset(String),
    /// The netlist failed structural or library validation.
    InvalidNetlist(NetlistError),
    /// A `.bench` file could not be read.
    Io(String),
}

impl std::fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateCircuit(n) => write!(f, "circuit `{n}` is already registered"),
            Self::UnknownPreset(n) => write!(f, "unknown generator preset `{n}`"),
            Self::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            Self::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkspaceError {}

impl From<NetlistError> for WorkspaceError {
    fn from(e: NetlistError) -> Self {
        Self::InvalidNetlist(e)
    }
}

impl WorkspaceError {
    /// The stable machine-readable code for this error (the same code
    /// the serve wire protocol carries).
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            Self::DuplicateCircuit(_) => ErrorCode::DuplicateCircuit,
            Self::UnknownPreset(_) => ErrorCode::UnknownPreset,
            Self::InvalidNetlist(_) => ErrorCode::InvalidNetlist,
            Self::Io(_) => ErrorCode::Io,
        }
    }
}

/// Stable machine-readable failure codes carried by [`Answer::Error`]
/// (and, through it, by the serve wire protocol's typed error payload).
///
/// Every boundary-validation failure maps to a distinct code; the
/// human-readable message travels next to the code, never instead of it.
/// The kebab-case wire form comes from [`ErrorCode::as_str`] and is part
/// of the protocol contract — codes may be added, never renamed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request addressed a circuit name that is not registered.
    UnknownCircuit,
    /// The circuit has no node with the requested name.
    UnknownNode,
    /// The circuit has no gate with the requested name.
    UnknownGate,
    /// The named node is a primary input, which has no size to change.
    InputNotSizable,
    /// The size index falls outside the gate's library cell group.
    SizeOutOfRange,
    /// The library has no cell group for the gate's function/arity.
    NoCellGroup,
    /// A numeric parameter was non-finite or out of domain.
    InvalidParameter,
    /// The correlated variation model failed validation.
    InvalidModel,
    /// The netlist rejected the mutation (structural/library validation).
    InvalidNetlist,
    /// A circuit with this name is already registered.
    DuplicateCircuit,
    /// No generator preset with this name exists.
    UnknownPreset,
    /// A `.bench` file could not be read.
    Io,
    /// The circuit has no branch with the requested name.
    UnknownBranch,
    /// A branch with this name already exists on the circuit.
    DuplicateBranch,
    /// The branch could not be committed (parent diverged since fork,
    /// pending parent resizes, or a foreign circuit).
    BranchConflict,
    /// Evaluation panicked; the circuit's session was recovered.
    Panic,
    /// The request itself was malformed at the protocol boundary.
    BadRequest,
    /// A sequential query needs a clock, but the circuit has none set.
    NoClock,
}

impl ErrorCode {
    /// The stable kebab-case wire form of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::UnknownCircuit => "unknown-circuit",
            Self::UnknownNode => "unknown-node",
            Self::UnknownGate => "unknown-gate",
            Self::InputNotSizable => "input-not-sizable",
            Self::SizeOutOfRange => "size-out-of-range",
            Self::NoCellGroup => "no-cell-group",
            Self::InvalidParameter => "invalid-parameter",
            Self::InvalidModel => "invalid-model",
            Self::InvalidNetlist => "invalid-netlist",
            Self::DuplicateCircuit => "duplicate-circuit",
            Self::UnknownPreset => "unknown-preset",
            Self::Io => "io",
            Self::UnknownBranch => "unknown-branch",
            Self::DuplicateBranch => "duplicate-branch",
            Self::BranchConflict => "branch-conflict",
            Self::Panic => "panic",
            Self::BadRequest => "bad-request",
            Self::NoClock => "no-clock",
        }
    }

    /// Parses the kebab-case wire form back into a code.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "unknown-circuit" => Self::UnknownCircuit,
            "unknown-node" => Self::UnknownNode,
            "unknown-gate" => Self::UnknownGate,
            "input-not-sizable" => Self::InputNotSizable,
            "size-out-of-range" => Self::SizeOutOfRange,
            "no-cell-group" => Self::NoCellGroup,
            "invalid-parameter" => Self::InvalidParameter,
            "invalid-model" => Self::InvalidModel,
            "invalid-netlist" => Self::InvalidNetlist,
            "duplicate-circuit" => Self::DuplicateCircuit,
            "unknown-preset" => Self::UnknownPreset,
            "io" => Self::Io,
            "unknown-branch" => Self::UnknownBranch,
            "duplicate-branch" => Self::DuplicateBranch,
            "branch-conflict" => Self::BranchConflict,
            "panic" => Self::Panic,
            "bad-request" => Self::BadRequest,
            "no-clock" => Self::NoClock,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed query against a registered circuit.
///
/// All requests address circuits (and gates) **by name**, so a batch can
/// be built, serialized, or replayed without holding any handle into the
/// workspace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Run a full analysis under the given engine and report circuit
    /// moments plus the statistically-worst output.
    Analyze {
        /// Target circuit name.
        circuit: String,
        /// Engine to run. The cached incremental session serves its own
        /// flavor ([`EngineKind::FullSsta`]) without a from-scratch pass.
        kind: EngineKind,
    },
    /// Run a full analysis under an explicit correlated variation model
    /// (die-to-die sources and/or a spatial grid —
    /// [`vartol_ssta::variation`]) **without touching the circuit's
    /// cached session**: the engine runs from scratch with the model
    /// swapped into the workspace's engine configuration. This is the
    /// correlated-corner query: the same circuit can be analyzed under
    /// any number of models in one batch, and the default-model cache
    /// stays warm and bit-identical.
    AnalyzeUnder {
        /// Target circuit name.
        circuit: String,
        /// Engine to run (all four supported; Monte Carlo samples the
        /// shared sources per die under the workspace budget and seed).
        kind: EngineKind,
        /// The correlated variation model to analyze under. Validated
        /// before anything runs; an invalid model answers
        /// [`Answer::Error`].
        model: VariationModel,
    },
    /// Arrival moments at one named node.
    Arrival {
        /// Target circuit name.
        circuit: String,
        /// Node name (as in the `.bench` source or generator).
        node: String,
    },
    /// Worst statistical slack against a required time at every output.
    Slack {
        /// Target circuit name.
        circuit: String,
        /// Required time imposed on every primary output (ps).
        t_req: f64,
        /// σ weight of the `μ − α·σ` slack ranking.
        alpha: f64,
    },
    /// The most statistically critical nodes.
    Criticality {
        /// Target circuit name.
        circuit: String,
        /// How many top-ranked nodes to return (0 = all).
        top: usize,
    },
    /// Parametric yield at a deadline, by deterministic parallel Monte
    /// Carlo under the workspace's sample budget and seed.
    Yield {
        /// Target circuit name.
        circuit: String,
        /// Clock period / deadline (ps).
        deadline: f64,
    },
    /// What-if resize of one named gate; the mutation persists for later
    /// requests on the same circuit (and later batches).
    Resize {
        /// Target circuit name.
        circuit: String,
        /// Gate name.
        gate: String,
        /// New size index into the gate's library cell group.
        size: usize,
    },
    /// Full statistical sizing of the circuit; the optimized sizes
    /// persist for later requests on the same circuit.
    Size {
        /// Target circuit name.
        circuit: String,
        /// Optimizer configuration (σ weight, pass budget, threads, …).
        config: SizerConfig,
        /// Which sizing method runs the request
        /// ([`OptimizerKind::Greedy`] reproduces the pre-selector
        /// behavior). `config.max_passes` bounds the greedy and
        /// Lagrangian outer loops; the annealing schedule comes from
        /// [`vartol_ssta::AnnealingConfig`] defaults.
        optimizer: OptimizerKind,
        /// Optimize the timing yield `P(delay ≤ deadline)` under the
        /// configured variation model instead of `μ + α·σ`. Only the
        /// global optimizers (`lagrangian`, `annealing`) accept this.
        yield_deadline: Option<f64>,
    },
    /// Fork a named copy-on-write branch of the circuit. The branch
    /// shares all unchanged state with the circuit's cached session and
    /// persists across batches until committed or dropped.
    Fork {
        /// Target circuit name.
        circuit: String,
        /// Name for the new branch (unique per circuit).
        branch: String,
    },
    /// What-if resize of one gate **on a named branch**: the circuit's
    /// cached session (and every other branch) is untouched.
    BranchResize {
        /// Target circuit name.
        circuit: String,
        /// Branch name (from [`Request::Fork`]).
        branch: String,
        /// Gate name.
        gate: String,
        /// New size index into the gate's library cell group.
        size: usize,
    },
    /// Analyze a named branch: recomputes only the branch's divergent
    /// fanout cone (memoized and shared with sibling branches at the
    /// same sizes), bit-identical to a from-scratch analysis.
    BranchAnalyze {
        /// Target circuit name.
        circuit: String,
        /// Branch name.
        branch: String,
    },
    /// Commit a named branch back into the circuit: the session adopts
    /// the branch's sizes and its memoized analysis without recomputing.
    /// Remaining sibling branches stay readable but can no longer commit
    /// (their frozen base is stale).
    Commit {
        /// Target circuit name.
        circuit: String,
        /// Branch name; consumed on success.
        branch: String,
    },
    /// Discard a named branch. The circuit is untouched.
    DropBranch {
        /// Target circuit name.
        circuit: String,
        /// Branch name.
        branch: String,
    },
    /// Evaluate N independent what-if trials as anonymous branches of
    /// one circuit, fanned out in parallel over the workspace pool —
    /// answers in trial order, bit-identical at every pool width. The
    /// circuit is left untouched; trials share memoized cones when they
    /// land on the same sizes.
    WhatIfBatch {
        /// Target circuit name.
        circuit: String,
        /// The divergent trials to evaluate.
        trials: Vec<WhatIfTrial>,
    },
    /// Constrain the circuit under a clock. Persists for later requests
    /// on the same circuit (and later batches); re-issuing replaces the
    /// constraint. Required before any [`Request::GroupSlack`],
    /// [`Request::Wns`], or [`Request::Tns`] query.
    SetClock {
        /// Target circuit name.
        circuit: String,
        /// Clock period (ps). Must be finite and positive.
        period: f64,
        /// Clock uncertainty subtracted from the period (ps). Must be
        /// finite, non-negative, and below the period.
        uncertainty: f64,
    },
    /// Per-path-group setup slack (in→reg, reg→reg, reg→out, in→out)
    /// under the circuit's clock, from any engine's report.
    GroupSlack {
        /// Target circuit name.
        circuit: String,
        /// Engine whose arrival report the slack folds over.
        kind: EngineKind,
    },
    /// Worst negative setup slack over every endpoint (registers' D pins
    /// and primary outputs) under the circuit's clock.
    Wns {
        /// Target circuit name.
        circuit: String,
        /// Engine whose arrival report the slack folds over.
        kind: EngineKind,
    },
    /// Total negative setup slack (sum of negative endpoint slacks)
    /// under the circuit's clock.
    Tns {
        /// Target circuit name.
        circuit: String,
        /// Engine whose arrival report the slack folds over.
        kind: EngineKind,
    },
}

/// One speculative trial of [`Request::WhatIfBatch`]: a set of gate
/// resizes applied to a fresh branch of the circuit's current state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WhatIfTrial {
    /// Gate resizes defining the trial's divergence, applied in order.
    pub resizes: Vec<GateResize>,
}

/// One `(gate, size)` element of a [`WhatIfTrial`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GateResize {
    /// Gate name.
    pub gate: String,
    /// New size index into the gate's library cell group.
    pub size: usize,
}

impl Request {
    /// The name of the circuit this request addresses.
    #[must_use]
    pub fn circuit(&self) -> &str {
        match self {
            Self::Analyze { circuit, .. }
            | Self::AnalyzeUnder { circuit, .. }
            | Self::Arrival { circuit, .. }
            | Self::Slack { circuit, .. }
            | Self::Criticality { circuit, .. }
            | Self::Yield { circuit, .. }
            | Self::Resize { circuit, .. }
            | Self::Size { circuit, .. }
            | Self::Fork { circuit, .. }
            | Self::BranchResize { circuit, .. }
            | Self::BranchAnalyze { circuit, .. }
            | Self::Commit { circuit, .. }
            | Self::DropBranch { circuit, .. }
            | Self::WhatIfBatch { circuit, .. }
            | Self::SetClock { circuit, .. }
            | Self::GroupSlack { circuit, .. }
            | Self::Wns { circuit, .. }
            | Self::Tns { circuit, .. } => circuit,
        }
    }
}

/// The deterministic payload of one answered [`Request`].
///
/// Equality is exact (f64 `PartialEq`), which is what the determinism
/// contract asserts: the same batch produces `==` answers at every pool
/// width. Wall-clock lives on [`Response`], not here.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Answer {
    /// Result of [`Request::Analyze`].
    Analysis {
        /// The engine that ran.
        kind: EngineKind,
        /// Circuit-level output moments.
        moments: Moments,
        /// Name of the statistically-worst primary output.
        worst_output: String,
    },
    /// Result of [`Request::Arrival`].
    Arrival {
        /// The queried node.
        node: String,
        /// Its arrival moments.
        moments: Moments,
    },
    /// Result of [`Request::Slack`].
    Slack {
        /// The worst statistical slack `min over nodes of μ − α·σ` (ps).
        worst: f64,
        /// Name of the node realizing it.
        worst_node: String,
    },
    /// Result of [`Request::Criticality`].
    Criticality {
        /// `(node name, criticality)` pairs, most critical first.
        ranking: Vec<(String, f64)>,
    },
    /// Result of [`Request::Yield`].
    Yield {
        /// Fraction of Monte-Carlo samples meeting the deadline.
        fraction: f64,
    },
    /// Result of [`Request::Resize`].
    Resized {
        /// Circuit moments after the incremental cone refresh.
        moments: Moments,
        /// Total cell area after the resize.
        area: f64,
    },
    /// Result of [`Request::Size`].
    Sized {
        /// The optimizer's full report (equality ignores its runtime).
        /// For the global optimizers each pass row is one outer
        /// iteration (Lagrangian) or one restart (annealing), and its
        /// `cost` column is the optimizer's own objective value.
        report: OptimizationReport,
        /// Total cell area after sizing.
        area: f64,
        /// The optimizer that ran.
        optimizer: OptimizerKind,
    },
    /// Result of [`Request::Fork`].
    Forked {
        /// The new branch's name.
        branch: String,
        /// Size fingerprint of the frozen base the branch forked from.
        fingerprint: u64,
    },
    /// Result of [`Request::BranchResize`] — deliberately cheap: no
    /// timing runs until [`Request::BranchAnalyze`].
    BranchResized {
        /// The branch.
        branch: String,
        /// How many gates now differ from the frozen base.
        diverged: usize,
    },
    /// Result of [`Request::BranchAnalyze`] (and each successful
    /// [`Request::WhatIfBatch`] trial).
    BranchAnalysis {
        /// The branch (or `trial-<i>` for what-if trials).
        branch: String,
        /// Circuit moments at the branch's sizes — bit-identical to a
        /// from-scratch analysis of the same sizes.
        moments: Moments,
        /// Total cell area at the branch's sizes.
        area: f64,
    },
    /// Result of [`Request::Commit`].
    Committed {
        /// The committed (consumed) branch.
        branch: String,
        /// Circuit moments after adoption.
        moments: Moments,
        /// Total cell area after adoption.
        area: f64,
    },
    /// Result of [`Request::DropBranch`].
    Dropped {
        /// The discarded branch.
        branch: String,
    },
    /// Result of [`Request::WhatIfBatch`]: one entry per trial, in trial
    /// order — [`Answer::BranchAnalysis`] on success, [`Answer::Error`]
    /// for a trial that failed validation or panicked (other trials are
    /// unaffected).
    WhatIf {
        /// Per-trial outcomes.
        outcomes: Vec<Answer>,
    },
    /// Result of [`Request::SetClock`].
    ClockSet {
        /// The accepted clock period (ps).
        period: f64,
        /// The accepted clock uncertainty (ps).
        uncertainty: f64,
    },
    /// Result of [`Request::GroupSlack`]: one row per path group, in
    /// the canonical [`PathGroup::ALL`](vartol_ssta::PathGroup::ALL)
    /// order.
    GroupSlack {
        /// The engine that produced the arrival report.
        kind: EngineKind,
        /// Per-group setup-slack rows (always all four groups).
        groups: Vec<GroupSlackRow>,
    },
    /// Result of [`Request::Wns`].
    Wns {
        /// The engine that produced the arrival report.
        kind: EngineKind,
        /// Worst (minimum) mean setup slack over every endpoint (ps).
        wns: f64,
    },
    /// Result of [`Request::Tns`].
    Tns {
        /// The engine that produced the arrival report.
        kind: EngineKind,
        /// Sum of negative mean endpoint slacks (ps, `<= 0`).
        tns: f64,
    },
    /// The request was malformed or its evaluation panicked; the rest of
    /// the batch (and the circuit's session) is unaffected.
    Error {
        /// Stable machine-readable failure code.
        code: ErrorCode,
        /// Human-readable cause.
        message: String,
    },
}

/// One path group's setup-slack summary inside [`Answer::GroupSlack`] —
/// the wire-friendly (name-resolved, null-free) projection of
/// [`vartol_ssta::GroupTiming`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroupSlackRow {
    /// Stable group name (`in2reg`, `reg2reg`, `reg2out`, `in2out`).
    pub group: String,
    /// Number of endpoints classified into the group.
    pub endpoints: usize,
    /// Worst (minimum) mean setup slack over the group's endpoints; an
    /// empty group reports the full clock budget.
    pub wns: f64,
    /// Sum of negative mean slacks (0 when every endpoint meets timing).
    pub tns: f64,
    /// Minimum over endpoints of `P(arrival ≤ required)`; deterministic
    /// engines degrade to a 0/1 step, empty groups report 1.
    pub prob_met: f64,
    /// Name of the endpoint realizing `wns` (empty for an empty group).
    pub worst: String,
}

impl Answer {
    fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Self::Error {
            code,
            message: message.into(),
        }
    }
}

/// One answered request: the deterministic [`Answer`] plus the wall-clock
/// the evaluation took (excluded from equality and from the determinism
/// contract).
#[derive(Debug, Clone)]
pub struct Response {
    /// The deterministic payload.
    pub answer: Answer,
    /// Evaluation wall-clock.
    pub wall: Duration,
}

/// One registered circuit: its cached owned-handle session plus its
/// live named branches and lifetime branch counters.
#[derive(Debug)]
struct CircuitEntry {
    name: String,
    session: TimingSession,
    branches: BTreeMap<String, SessionBranch>,
    committed: u64,
    dropped: u64,
    clock: Option<ClockConstraint>,
}

/// A registry of named circuits serving concurrent timing and sizing
/// query batches (see the [module docs](self)).
#[derive(Debug)]
pub struct Workspace {
    library: Arc<Library>,
    config: WorkspaceConfig,
    entries: Vec<CircuitEntry>,
    index: BTreeMap<String, usize>,
}

impl Workspace {
    /// Creates an empty workspace over a library. Accepts an
    /// `Arc<Library>`, an owned `Library`, or a `&Library` (cloned once).
    #[must_use]
    pub fn new(library: impl Into<Arc<Library>>, config: WorkspaceConfig) -> Self {
        Self {
            library: library.into(),
            config,
            entries: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// The workspace configuration.
    #[must_use]
    pub fn config(&self) -> &WorkspaceConfig {
        &self.config
    }

    /// A shared handle to the workspace's library.
    #[must_use]
    pub fn library(&self) -> Arc<Library> {
        Arc::clone(&self.library)
    }

    /// Number of registered circuits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no circuits are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered circuit names, in registration order.
    pub fn circuit_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// The current netlist of a registered circuit (reflecting any
    /// committed resizes and sizing runs).
    #[must_use]
    pub fn netlist(&self, name: &str) -> Option<&Netlist> {
        let &i = self.index.get(name)?;
        Some(self.entries[i].session.netlist())
    }

    /// The level count of a registered circuit's propagation schedule —
    /// the serial depth of the level-ordered arena, whose per-level
    /// width is what parallel propagation fans out over (see
    /// [`TimingSession::propagation_levels`]).
    #[must_use]
    pub fn propagation_levels(&self, name: &str) -> Option<usize> {
        let &i = self.index.get(name)?;
        Some(self.entries[i].session.propagation_levels())
    }

    /// The size fingerprint of a named branch of a registered circuit —
    /// the key speculative results are cached under (a branch's answers
    /// depend only on library, configuration, structure, and its own
    /// sizes, never on the parent it forked from).
    #[must_use]
    pub fn branch_fingerprint(&self, circuit: &str, branch: &str) -> Option<u64> {
        let &i = self.index.get(circuit)?;
        Some(self.entries[i].branches.get(branch)?.size_fingerprint())
    }

    /// Names of the live branches of a registered circuit, sorted.
    #[must_use]
    pub fn branch_names(&self, circuit: &str) -> Option<Vec<String>> {
        let &i = self.index.get(circuit)?;
        Some(self.entries[i].branches.keys().cloned().collect())
    }

    /// Lifetime branch counters over all circuits:
    /// `(live, committed, dropped)`.
    #[must_use]
    pub fn branch_counters(&self) -> (u64, u64, u64) {
        let mut live = 0u64;
        let mut committed = 0u64;
        let mut dropped = 0u64;
        for e in &self.entries {
            live += e.branches.len() as u64;
            committed += e.committed;
            dropped += e.dropped;
        }
        (live, committed, dropped)
    }

    /// Registers a pre-built netlist under a name. This is the expensive
    /// step — the circuit's cached session runs its initial full
    /// analysis here — so that queries against it are cheap.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and netlists that fail structural or
    /// library validation (the non-panicking counterpart of the
    /// panics engines raise on unknown cells).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        netlist: Netlist,
    ) -> Result<(), WorkspaceError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(WorkspaceError::DuplicateCircuit(name));
        }
        netlist.check_invariants()?;
        netlist.validate_against_library(&self.library)?;
        let session = TimingSession::with_kind(
            Arc::clone(&self.library),
            self.config.ssta.clone(),
            netlist,
            EngineKind::FullSsta,
        );
        self.index.insert(name.clone(), self.entries.len());
        self.entries.push(CircuitEntry {
            name,
            session,
            branches: BTreeMap::new(),
            committed: 0,
            dropped: 0,
            clock: None,
        });
        Ok(())
    }

    /// Registers a generator preset (see
    /// [`vartol_netlist::generators::presets`]) under its preset name.
    ///
    /// # Errors
    ///
    /// Rejects unknown preset names and duplicates.
    pub fn register_preset(&mut self, name: &str) -> Result<(), WorkspaceError> {
        let netlist = preset(name, &self.library)
            .ok_or_else(|| WorkspaceError::UnknownPreset(name.into()))?;
        self.register(name, netlist)
    }

    /// Parses ISCAS-85 `.bench` text and registers it under `name`.
    ///
    /// # Errors
    ///
    /// Rejects parse failures, validation failures, and duplicates.
    pub fn register_bench_str(&mut self, name: &str, text: &str) -> Result<(), WorkspaceError> {
        let netlist = parse_bench(text, name)?;
        self.register(name, netlist)
    }

    /// Parses EDIF-lite text (see [`vartol_netlist::edif`]), flattens
    /// it, and registers the result under `name` (the design's own name
    /// is replaced, mirroring [`Workspace::register_bench_str`]).
    ///
    /// # Errors
    ///
    /// Rejects parse failures, validation failures, and duplicates.
    pub fn register_edif_str(&mut self, name: &str, text: &str) -> Result<(), WorkspaceError> {
        let netlist = parse_edif(text)?;
        self.register(name, netlist.with_name(name))
    }

    /// The clock constraint of a registered circuit, if one has been
    /// set via [`Request::SetClock`].
    #[must_use]
    pub fn clock(&self, circuit: &str) -> Option<ClockConstraint> {
        let &i = self.index.get(circuit)?;
        self.entries[i].clock
    }

    /// Loads a `.bench` file and registers it under its file stem.
    ///
    /// # Errors
    ///
    /// Rejects unreadable paths, parse failures, validation failures,
    /// and duplicates.
    pub fn register_bench_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), WorkspaceError> {
        let path = path.as_ref();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| WorkspaceError::Io(format!("{}: unreadable file name", path.display())))?
            .to_owned();
        let text = std::fs::read_to_string(path)
            .map_err(|e| WorkspaceError::Io(format!("{}: {e}", path.display())))?;
        self.register_bench_str(&stem, &text)
    }

    /// Answers a single request (a one-element [`Workspace::submit`]).
    pub fn query(&mut self, request: Request) -> Response {
        self.submit(std::slice::from_ref(&request))
            .pop()
            .expect("one request, one response")
    }

    /// Answers a batch of requests, returning responses **in request
    /// order**, bit-identical for every pool width (see the
    /// [module docs](self) for the concurrency and isolation contract).
    pub fn submit(&mut self, requests: &[Request]) -> Vec<Response> {
        // Route requests to circuits; unknown circuits answer here.
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); self.entries.len()];
        let mut responses: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        for (ri, request) in requests.iter().enumerate() {
            match self.index.get(request.circuit()) {
                Some(&ci) => routed[ci].push(ri),
                None => {
                    responses[ri] = Some(Response {
                        answer: Answer::error(
                            ErrorCode::UnknownCircuit,
                            format!("unknown circuit `{}`", request.circuit()),
                        ),
                        wall: Duration::ZERO,
                    });
                }
            }
        }

        // Take the sessions out of the workspace and fan out: one task
        // per circuit with work, each processing its requests in
        // submission order on the circuit's cached session.
        let mut slots: Vec<Option<CircuitEntry>> = std::mem::take(&mut self.entries)
            .into_iter()
            .map(Some)
            .collect();
        let work: Vec<(usize, CircuitEntry, Vec<usize>)> = routed
            .into_iter()
            .enumerate()
            .filter(|(_, reqs)| !reqs.is_empty())
            .map(|(ci, reqs)| {
                let entry = slots[ci].take().expect("each circuit taken once");
                (ci, entry, reqs)
            })
            .collect();

        let library = Arc::clone(&self.library);
        let config = self.config.clone();
        let pool = ScopedPool::new(self.config.threads);
        let done = pool.map_items(work, |_, (ci, mut entry, reqs)| {
            let answered: Vec<(usize, Response)> = reqs
                .into_iter()
                .map(|ri| (ri, process(&library, &config, &mut entry, &requests[ri])))
                .collect();
            (ci, entry, answered)
        });

        for (ci, entry, answered) in done {
            slots[ci] = Some(entry);
            for (ri, response) in answered {
                responses[ri] = Some(response);
            }
        }
        self.entries = slots
            .into_iter()
            .map(|s| s.expect("every circuit restored"))
            .collect();
        responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }
}

/// Evaluates one request on one circuit entry, timing it and containing
/// panics: a panicking evaluation yields [`Answer::Error`] and the
/// session is restored to the sizes it had before the request and
/// rebuilt from scratch, so the entry stays serviceable.
fn process(
    library: &Arc<Library>,
    config: &WorkspaceConfig,
    entry: &mut CircuitEntry,
    request: &Request,
) -> Response {
    let t0 = Instant::now();
    let sizes_before = entry.session.sizes();
    let result = catch_unwind(AssertUnwindSafe(|| answer(library, config, entry, request)));
    let answer = result.unwrap_or_else(|payload| {
        // The session may hold half-updated analysis state; roll the
        // netlist back to its last good sizes and rebuild. Those sizes
        // analyzed fine before this request, so the rebuild succeeds.
        let _ = entry.session.try_restore_sizes(&sizes_before);
        entry.session.rebuild();
        Answer::error(
            ErrorCode::Panic,
            format!(
                "request panicked (circuit `{}` recovered): {}",
                entry.name,
                panic_message(payload.as_ref())
            ),
        )
    });
    Response {
        answer,
        wall: t0.elapsed(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `kind` from scratch over the entry's netlist under an explicit
/// engine configuration — Monte Carlo honoring the workspace's sample
/// budget and seed. Shared by [`Request::Analyze`] (cold kinds) and
/// [`Request::AnalyzeUnder`] so the two arms cannot drift.
fn scratch_report(
    library: &Arc<Library>,
    config: &WorkspaceConfig,
    ssta: &SstaConfig,
    netlist: &Netlist,
    kind: EngineKind,
) -> vartol_ssta::TimingReport {
    match kind {
        EngineKind::MonteCarlo => {
            let timer = MonteCarloTimer::new(library, ssta)
                .with_samples(config.mc_samples)
                .with_seed(config.mc_seed);
            vartol_ssta::TimingEngine::analyze(&timer, netlist)
        }
        _ => kind.engine(library, ssta).analyze(netlist),
    }
}

/// Packages a report as the [`Answer::Analysis`] payload (worst output
/// resolved to its name).
fn analysis_answer(
    entry: &CircuitEntry,
    kind: EngineKind,
    report: &vartol_ssta::TimingReport,
) -> Answer {
    let worst = report.worst_output();
    Answer::Analysis {
        kind,
        moments: report.circuit_moments(),
        worst_output: entry.session.netlist().gate(worst).name().to_owned(),
    }
}

/// The request dispatcher. Validation failures return [`Answer::Error`]
/// without touching the session (malformed input must not poison the
/// cached state — routed through the netlist's `try_*` accessors).
fn answer(
    library: &Arc<Library>,
    config: &WorkspaceConfig,
    entry: &mut CircuitEntry,
    request: &Request,
) -> Answer {
    match request {
        Request::Analyze { kind, .. } => {
            let report = match kind {
                // The cached session *is* the FULLSSTA state: serve it
                // incrementally instead of a from-scratch pass.
                EngineKind::FullSsta => entry.session.current_report(),
                _ => scratch_report(
                    library,
                    config,
                    &entry.session.config().clone(),
                    entry.session.netlist(),
                    *kind,
                ),
            };
            analysis_answer(entry, *kind, &report)
        }
        Request::AnalyzeUnder { kind, model, .. } => {
            if let Err(e) = model.validate() {
                return Answer::error(
                    ErrorCode::InvalidModel,
                    format!("invalid variation model: {e}"),
                );
            }
            let mut conditioned = entry.session.config().clone();
            conditioned.model = model.clone();
            let report = scratch_report(
                library,
                config,
                &conditioned,
                entry.session.netlist(),
                *kind,
            );
            analysis_answer(entry, *kind, &report)
        }
        Request::Arrival { node, .. } => {
            let Some(id) = entry.session.netlist().gate_by_name(node) else {
                return Answer::error(
                    ErrorCode::UnknownNode,
                    format!("circuit `{}` has no node `{node}`", entry.name),
                );
            };
            entry.session.refresh();
            Answer::Arrival {
                node: node.clone(),
                moments: entry.session.arrival(id),
            }
        }
        Request::Slack { t_req, alpha, .. } => {
            if !t_req.is_finite() {
                return Answer::error(
                    ErrorCode::InvalidParameter,
                    format!("slack t_req must be finite, got {t_req}"),
                );
            }
            if !alpha.is_finite() || *alpha < 0.0 {
                return Answer::error(
                    ErrorCode::InvalidParameter,
                    format!("slack alpha must be non-negative, got {alpha}"),
                );
            }
            let slacks = entry.session.slacks(*t_req);
            let worst_node = slacks.worst_node(*alpha);
            Answer::Slack {
                worst: slacks.worst_statistical_slack(*alpha),
                worst_node: entry.session.netlist().gate(worst_node).name().to_owned(),
            }
        }
        Request::Criticality { top, .. } => {
            let criticality = entry.session.criticality();
            let take = if *top == 0 { usize::MAX } else { *top };
            let ranking = criticality
                .ranking()
                .into_iter()
                .take(take)
                .map(|id| {
                    (
                        entry.session.netlist().gate(id).name().to_owned(),
                        criticality.of(id),
                    )
                })
                .collect();
            Answer::Criticality { ranking }
        }
        Request::Yield { deadline, .. } => {
            if !deadline.is_finite() {
                return Answer::error(
                    ErrorCode::InvalidParameter,
                    format!("yield deadline must be finite, got {deadline}"),
                );
            }
            let timer = MonteCarloTimer::new(library, entry.session.config())
                .with_samples(config.mc_samples)
                .with_seed(config.mc_seed);
            let mc = timer.sample_parallel(entry.session.netlist(), config.mc_samples);
            Answer::Yield {
                fraction: mc.yield_at(*deadline),
            }
        }
        Request::Resize { gate, size, .. } => {
            // Validate the size against the library *before* mutating
            // anything: an accepted-but-unanalyzable size would poison
            // the cached session.
            let id =
                match validate_resize(library, &entry.name, entry.session.netlist(), gate, *size) {
                    Ok(id) => id,
                    Err(a) => return a,
                };
            if let Err(e) = entry.session.try_resize(id, *size) {
                return Answer::error(ErrorCode::InvalidNetlist, e.to_string());
            }
            let moments = entry.session.refresh();
            Answer::Resized {
                moments,
                area: entry.session.total_area(),
            }
        }
        Request::Fork { branch, .. } => {
            if entry.branches.contains_key(branch) {
                return Answer::error(
                    ErrorCode::DuplicateBranch,
                    format!("circuit `{}` already has a branch `{branch}`", entry.name),
                );
            }
            entry.session.refresh();
            let b = entry.session.fork();
            let fingerprint = b.size_fingerprint();
            entry.branches.insert(branch.clone(), b);
            Answer::Forked {
                branch: branch.clone(),
                fingerprint,
            }
        }
        Request::BranchResize {
            branch, gate, size, ..
        } => {
            let Some(b) = entry.branches.get(branch) else {
                return unknown_branch(&entry.name, branch);
            };
            let id = match validate_resize(library, &entry.name, b.netlist(), gate, *size) {
                Ok(id) => id,
                Err(a) => return a,
            };
            let b = entry.branches.get_mut(branch).expect("present above");
            if let Err(e) = b.try_resize(id, *size) {
                return Answer::error(ErrorCode::InvalidNetlist, e.to_string());
            }
            Answer::BranchResized {
                branch: branch.clone(),
                diverged: b.diverged_gates().len(),
            }
        }
        Request::BranchAnalyze { branch, .. } => {
            let Some(b) = entry.branches.get_mut(branch) else {
                return unknown_branch(&entry.name, branch);
            };
            let moments = b.refresh();
            Answer::BranchAnalysis {
                branch: branch.clone(),
                moments,
                area: b.total_area(),
            }
        }
        Request::Commit { branch, .. } => {
            let Some(b) = entry.branches.get(branch) else {
                return unknown_branch(&entry.name, branch);
            };
            // Commit a clone so a rejected commit leaves the branch
            // readable (the clone is a chunk-shared sibling, not a copy).
            match entry.session.commit(b.clone()) {
                Ok(moments) => {
                    entry.branches.remove(branch);
                    entry.committed += 1;
                    Answer::Committed {
                        branch: branch.clone(),
                        moments,
                        area: entry.session.total_area(),
                    }
                }
                Err(e) => Answer::error(
                    ErrorCode::BranchConflict,
                    format!("cannot commit branch `{branch}`: {e}"),
                ),
            }
        }
        Request::DropBranch { branch, .. } => {
            if entry.branches.remove(branch).is_none() {
                return unknown_branch(&entry.name, branch);
            }
            entry.dropped += 1;
            Answer::Dropped {
                branch: branch.clone(),
            }
        }
        Request::WhatIfBatch { trials, .. } => {
            entry.session.refresh();
            let base_sizes = entry.session.sizes();
            let session = &entry.session;
            let name = entry.name.as_str();
            // One branch per worker (all sharing one frozen fork base
            // and one cone memo), one task per trial, outcomes in trial
            // order — the same discipline as the parallel sizer, so the
            // answers are bit-identical at every pool width.
            let pool = ScopedPool::new(config.threads);
            let outcomes = pool.map_init(
                trials.len(),
                || session.fork(),
                |branch, i| what_if_trial(library, name, branch, &base_sizes, &trials[i], i),
            );
            Answer::WhatIf { outcomes }
        }
        Request::Size {
            config: sizer,
            optimizer,
            yield_deadline,
            ..
        } => {
            if !sizer.alpha.is_finite() || sizer.alpha < 0.0 {
                return Answer::error(
                    ErrorCode::InvalidParameter,
                    format!("sizer alpha must be non-negative, got {}", sizer.alpha),
                );
            }
            if let Some(deadline) = yield_deadline {
                if !deadline.is_finite() || *deadline <= 0.0 {
                    return Answer::error(
                        ErrorCode::InvalidParameter,
                        format!("yield deadline must be finite and positive, got {deadline}"),
                    );
                }
                if matches!(optimizer, OptimizerKind::Greedy | OptimizerKind::MeanDelay) {
                    return Answer::error(
                        ErrorCode::InvalidParameter,
                        format!(
                            "optimizer '{optimizer}' sizes against its own objective; \
                             a yield deadline needs 'lagrangian' or 'annealing'"
                        ),
                    );
                }
            }
            // The optimizer runs on a working copy; the resulting sizes
            // are committed back into the cached session through the
            // non-panicking restore path and an incremental refresh.
            // Sequential circuits optimize against every timing endpoint
            // (register D pins as well as primary outputs), so a sizing
            // run improves WNS under whatever clock is later queried.
            let mut netlist = entry.session.netlist().clone();
            let objective = match yield_deadline {
                Some(deadline) => Objective::Yield {
                    deadline: *deadline,
                },
                None => Objective::Statistical { alpha: sizer.alpha },
            };
            let report = match optimizer {
                OptimizerKind::Greedy => StatisticalGreedy::new(Arc::clone(library), sizer.clone())
                    .optimize_clocked(&mut netlist),
                OptimizerKind::MeanDelay => outcome_to_report(
                    MeanDelaySizer::new(Arc::clone(library), &sizer.ssta)
                        .with_max_passes(sizer.max_passes)
                        .size_clocked(&mut netlist),
                ),
                OptimizerKind::Lagrangian => outcome_to_report(
                    LagrangianSizer::new(
                        Arc::clone(library),
                        LagrangianConfig {
                            objective,
                            max_iters: sizer.max_passes,
                            subcircuit_depth: sizer.subcircuit_depth,
                            ssta: sizer.ssta.clone(),
                            ..LagrangianConfig::default()
                        },
                    )
                    .size_clocked(&mut netlist),
                ),
                OptimizerKind::Annealing => outcome_to_report(
                    AnnealingSizer::new(
                        Arc::clone(library),
                        AnnealingConfig {
                            objective,
                            ssta: sizer.ssta.clone(),
                            ..AnnealingConfig::default()
                        },
                    )
                    .size_clocked(&mut netlist),
                ),
            };
            if let Err(e) = entry.session.try_restore_sizes(&netlist.sizes()) {
                return Answer::error(ErrorCode::InvalidNetlist, e.to_string());
            }
            entry.session.refresh();
            Answer::Sized {
                report,
                area: entry.session.total_area(),
                optimizer: *optimizer,
            }
        }
        Request::SetClock {
            period,
            uncertainty,
            ..
        } => {
            if !period.is_finite() || *period <= 0.0 {
                return Answer::error(
                    ErrorCode::InvalidParameter,
                    format!("clock period must be finite and positive, got {period}"),
                );
            }
            if !uncertainty.is_finite() || *uncertainty < 0.0 || *uncertainty >= *period {
                return Answer::error(
                    ErrorCode::InvalidParameter,
                    format!(
                        "clock uncertainty must be in [0, period), got {uncertainty} \
                         against period {period}"
                    ),
                );
            }
            entry.clock = Some(ClockConstraint::new(*period, *uncertainty));
            Answer::ClockSet {
                period: *period,
                uncertainty: *uncertainty,
            }
        }
        Request::GroupSlack { kind, .. } => {
            match sequential_timing(library, config, entry, *kind) {
                Err(a) => a,
                Ok(seq) => Answer::GroupSlack {
                    kind: *kind,
                    groups: seq
                        .groups()
                        .iter()
                        .map(|g| GroupSlackRow {
                            group: g.group().name().to_owned(),
                            endpoints: g.endpoints(),
                            wns: g.wns(),
                            tns: g.tns(),
                            prob_met: g.prob_met(),
                            worst: g
                                .worst_endpoint()
                                .map(|id| entry.session.netlist().gate(id).name().to_owned())
                                .unwrap_or_default(),
                        })
                        .collect(),
                },
            }
        }
        Request::Wns { kind, .. } => match sequential_timing(library, config, entry, *kind) {
            Err(a) => a,
            Ok(seq) => Answer::Wns {
                kind: *kind,
                wns: seq.wns(),
            },
        },
        Request::Tns { kind, .. } => match sequential_timing(library, config, entry, *kind) {
            Err(a) => a,
            Ok(seq) => Answer::Tns {
                kind: *kind,
                tns: seq.tns(),
            },
        },
    }
}

/// Folds one engine's arrival report into per-group setup slack under
/// the entry's clock — shared by [`Request::GroupSlack`],
/// [`Request::Wns`], and [`Request::Tns`] so the three queries cannot
/// drift. FULLSSTA serves from the cached incremental session (the
/// warm path the determinism tests pin against a from-scratch run);
/// other engines run from scratch like [`Request::Analyze`].
fn sequential_timing(
    library: &Arc<Library>,
    config: &WorkspaceConfig,
    entry: &mut CircuitEntry,
    kind: EngineKind,
) -> Result<SequentialTiming, Answer> {
    let Some(clock) = entry.clock else {
        return Err(Answer::error(
            ErrorCode::NoClock,
            format!(
                "circuit `{}` has no clock constraint; send SetClock first",
                entry.name
            ),
        ));
    };
    let report = match kind {
        EngineKind::FullSsta => entry.session.current_report(),
        _ => scratch_report(
            library,
            config,
            &entry.session.config().clone(),
            entry.session.netlist(),
            kind,
        ),
    };
    Ok(SequentialTiming::analyze(
        entry.session.netlist(),
        library,
        clock,
        &report,
    ))
}

fn unknown_branch(circuit: &str, branch: &str) -> Answer {
    Answer::error(
        ErrorCode::UnknownBranch,
        format!("circuit `{circuit}` has no branch `{branch}`"),
    )
}

/// Resolves a gate name and validates the requested size against the
/// library before anything mutates — shared by [`Request::Resize`],
/// [`Request::BranchResize`], and what-if trials so session and branch
/// boundaries reject identically (and with the same [`ErrorCode`]s).
fn validate_resize(
    library: &Library,
    circuit: &str,
    netlist: &Netlist,
    gate: &str,
    size: usize,
) -> Result<vartol_netlist::GateId, Answer> {
    let Some(id) = netlist.gate_by_name(gate) else {
        return Err(Answer::error(
            ErrorCode::UnknownGate,
            format!("circuit `{circuit}` has no gate `{gate}`"),
        ));
    };
    let g = match netlist.try_gate(id) {
        Ok(g) => g,
        Err(e) => return Err(Answer::error(ErrorCode::InvalidNetlist, e.to_string())),
    };
    let Some(function) = g.function() else {
        return Err(Answer::error(
            ErrorCode::InputNotSizable,
            format!("`{gate}` is a primary input, not a sizable gate"),
        ));
    };
    let arity = g.fanins().len();
    match library.group(function, arity) {
        Some(group) if size < group.len() => Ok(id),
        Some(group) => Err(Answer::error(
            ErrorCode::SizeOutOfRange,
            format!(
                "size {size} out of range for `{gate}` ({function}/{arity} has {} sizes)",
                group.len()
            ),
        )),
        None => Err(Answer::error(
            ErrorCode::NoCellGroup,
            format!("library has no cell group for `{gate}` ({function}/{arity})"),
        )),
    }
}

/// Evaluates one [`WhatIfTrial`] on a worker's branch: rewinds the
/// branch to the base sizes, applies the trial's resizes (validated like
/// [`Request::Resize`]), and refreshes its divergent cone. A validation
/// failure or panic answers [`Answer::Error`] for this trial only; the
/// branch rewinds cleanly for the worker's next trial either way.
/// Maps a [`SizingOutcome`] from the shared optimizer vocabulary onto
/// the [`OptimizationReport`] the `Sized` answer has always carried, so
/// every optimizer speaks the same wire shape. The report's `alpha` is
/// the statistical σ weight when that is what the run minimized and
/// `0.0` for yield-targeted runs (their pass `cost` column is the
/// negated yield).
fn outcome_to_report(outcome: SizingOutcome) -> OptimizationReport {
    let alpha = match outcome.objective {
        Objective::Statistical { alpha } => alpha,
        Objective::Yield { .. } => 0.0,
    };
    OptimizationReport::new(
        alpha,
        outcome.initial_moments,
        outcome.final_moments,
        outcome.initial_area,
        outcome.final_area,
        outcome
            .passes
            .iter()
            .map(|p| PassStats {
                pass: p.pass,
                circuit: p.moments,
                cost: p.objective,
                area: p.area,
                resized: p.resized,
            })
            .collect(),
        outcome.runtime,
    )
}

fn what_if_trial(
    library: &Library,
    circuit: &str,
    branch: &mut SessionBranch,
    base_sizes: &[usize],
    trial: &WhatIfTrial,
    index: usize,
) -> Answer {
    branch
        .try_restore_sizes(base_sizes)
        .expect("base sizes come from the branch's own circuit");
    for r in &trial.resizes {
        let id = match validate_resize(library, circuit, branch.netlist(), &r.gate, r.size) {
            Ok(id) => id,
            Err(a) => return a,
        };
        if let Err(e) = branch.try_resize(id, r.size) {
            return Answer::error(ErrorCode::InvalidNetlist, e.to_string());
        }
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let moments = branch.refresh();
        (moments, branch.total_area())
    }));
    match result {
        Ok((moments, area)) => Answer::BranchAnalysis {
            branch: format!("trial-{index}"),
            moments,
            area,
        },
        Err(payload) => Answer::error(
            ErrorCode::Panic,
            format!(
                "what-if trial {index} panicked (siblings unaffected): {}",
                panic_message(payload.as_ref())
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(threads: usize) -> Workspace {
        let mut ws = Workspace::new(
            Library::synthetic_90nm(),
            WorkspaceConfig::default()
                .with_threads(threads)
                .with_mc_samples(400),
        );
        ws.register_preset("adder_8").expect("preset");
        ws.register_preset("cmp_8").expect("preset");
        ws
    }

    #[test]
    fn registration_rejects_duplicates_and_unknown_presets() {
        let mut ws = workspace(1);
        assert_eq!(
            ws.register_preset("adder_8").expect_err("duplicate"),
            WorkspaceError::DuplicateCircuit("adder_8".into())
        );
        assert_eq!(
            ws.register_preset("nope").expect_err("unknown"),
            WorkspaceError::UnknownPreset("nope".into())
        );
        assert_eq!(ws.len(), 2);
        assert_eq!(
            ws.circuit_names().collect::<Vec<_>>(),
            vec!["adder_8", "cmp_8"]
        );
    }

    #[test]
    fn registration_validates_against_the_library() {
        let mut ws = workspace(1);
        let mut bad = preset("adder_8", &ws.library()).expect("preset");
        let g = bad.gate_ids().next().expect("gates");
        bad.set_size(g, 999);
        assert!(matches!(
            ws.register("bad", bad),
            Err(WorkspaceError::InvalidNetlist(
                NetlistError::MissingCell { .. }
            ))
        ));
    }

    #[test]
    fn bench_text_registration_and_query() {
        let mut ws = workspace(1);
        ws.register_bench_str("tiny", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
            .expect("parses");
        let response = ws.query(Request::Analyze {
            circuit: "tiny".into(),
            kind: EngineKind::Dsta,
        });
        let Answer::Analysis { moments, .. } = response.answer else {
            panic!("expected analysis, got {:?}", response.answer);
        };
        assert!(moments.mean > 0.0);
    }

    #[test]
    fn unknown_circuit_and_node_yield_error_answers() {
        let mut ws = workspace(1);
        let answers = ws.submit(&[
            Request::Analyze {
                circuit: "ghost".into(),
                kind: EngineKind::Dsta,
            },
            Request::Arrival {
                circuit: "adder_8".into(),
                node: "no_such_node".into(),
            },
            Request::Resize {
                circuit: "adder_8".into(),
                gate: "no_such_gate".into(),
                size: 1,
            },
        ]);
        for response in &answers {
            assert!(
                matches!(response.answer, Answer::Error { .. }),
                "{:?}",
                response.answer
            );
        }
    }

    #[test]
    fn resize_validation_rejects_out_of_range_sizes_without_poisoning() {
        let mut ws = workspace(1);
        let gate = ws
            .netlist("adder_8")
            .expect("registered")
            .gate_ids()
            .next()
            .map(|id| ws.netlist("adder_8").unwrap().gate(id).name().to_owned())
            .expect("gates");
        let before = ws.netlist("adder_8").expect("registered").sizes();
        let response = ws.query(Request::Resize {
            circuit: "adder_8".into(),
            gate: gate.clone(),
            size: 999,
        });
        let Answer::Error { message, .. } = &response.answer else {
            panic!("expected error, got {:?}", response.answer);
        };
        assert!(message.contains("out of range"), "{message}");
        assert_eq!(
            ws.netlist("adder_8").expect("registered").sizes(),
            before,
            "rejected resize must not mutate"
        );
        // The circuit still answers follow-up queries normally.
        let ok = ws.query(Request::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert!(matches!(ok.answer, Answer::Analysis { .. }));
    }

    #[test]
    fn analyze_under_serves_correlated_corners_without_touching_the_cache() {
        let mut ws = workspace(1);
        let answers = ws.submit(&[
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
            Request::AnalyzeUnder {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
                model: VariationModel::die_to_die(0.6),
            },
            Request::AnalyzeUnder {
                circuit: "adder_8".into(),
                kind: EngineKind::MonteCarlo,
                model: VariationModel::die_to_die(0.6),
            },
            // The cached independent-model session must be unaffected.
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
        ]);
        let Answer::Analysis {
            moments: independent,
            ..
        } = answers[0].answer
        else {
            panic!("analysis: {:?}", answers[0].answer);
        };
        let Answer::Analysis {
            moments: corner, ..
        } = answers[1].answer
        else {
            panic!("corner analysis: {:?}", answers[1].answer);
        };
        let Answer::Analysis { moments: mc, .. } = answers[2].answer else {
            panic!("MC corner: {:?}", answers[2].answer);
        };
        assert!(
            corner.std() > independent.std(),
            "a die-to-die source widens the circuit distribution: {} vs {}",
            corner.std(),
            independent.std()
        );
        assert!(
            (mc.mean - corner.mean).abs() / corner.mean < 0.05,
            "engines agree on the corner: MC {} vs FULLSSTA {}",
            mc.mean,
            corner.mean
        );
        assert_eq!(
            answers[3].answer, answers[0].answer,
            "corner queries must not perturb the cached session"
        );
    }

    #[test]
    fn analyze_under_rejects_invalid_models() {
        let mut ws = workspace(1);
        let mut bad = VariationModel::die_to_die(0.5);
        bad.global[0].sigma_scale = f64::NAN;
        let response = ws.query(Request::AnalyzeUnder {
            circuit: "adder_8".into(),
            kind: EngineKind::Dsta,
            model: bad,
        });
        let Answer::Error { message, .. } = &response.answer else {
            panic!("expected error, got {:?}", response.answer);
        };
        assert!(message.contains("variation model"), "{message}");
        // The circuit still answers normally afterwards.
        let ok = ws.query(Request::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert!(matches!(ok.answer, Answer::Analysis { .. }));
    }

    #[test]
    fn resize_persists_for_later_requests_on_the_same_circuit() {
        let mut ws = workspace(1);
        let netlist = ws.netlist("adder_8").expect("registered");
        let id = netlist.gate_ids().next().expect("gates");
        let gate = netlist.gate(id).name().to_owned();
        let answers = ws.submit(&[
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
            Request::Resize {
                circuit: "adder_8".into(),
                gate,
                size: 4,
            },
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
        ]);
        let Answer::Analysis {
            moments: before, ..
        } = answers[0].answer
        else {
            panic!("analysis");
        };
        let Answer::Resized {
            moments: resized, ..
        } = answers[1].answer
        else {
            panic!("resized: {:?}", answers[1].answer);
        };
        let Answer::Analysis { moments: after, .. } = answers[2].answer else {
            panic!("analysis");
        };
        assert_ne!(before, after, "the resize is visible downstream");
        assert_eq!(resized, after, "incremental refresh equals re-analysis");
        assert_eq!(
            ws.netlist("adder_8").expect("registered").gate(id).size(),
            Some(4),
            "mutation persists across batches"
        );
    }

    fn first_gate(ws: &Workspace, circuit: &str) -> String {
        let netlist = ws.netlist(circuit).expect("registered");
        let id = netlist.gate_ids().next().expect("gates");
        netlist.gate(id).name().to_owned()
    }

    #[test]
    fn branch_lifecycle_commits_exactly_what_a_direct_resize_would() {
        let mut ws = workspace(1);
        let gate = first_gate(&ws, "adder_8");
        let answers = ws.submit(&[
            Request::Fork {
                circuit: "adder_8".into(),
                branch: "spec".into(),
            },
            Request::BranchResize {
                circuit: "adder_8".into(),
                branch: "spec".into(),
                gate: gate.clone(),
                size: 4,
            },
            Request::BranchAnalyze {
                circuit: "adder_8".into(),
                branch: "spec".into(),
            },
            Request::Commit {
                circuit: "adder_8".into(),
                branch: "spec".into(),
            },
            Request::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            },
        ]);
        assert!(
            matches!(answers[0].answer, Answer::Forked { .. }),
            "{:?}",
            answers[0].answer
        );
        let Answer::BranchResized { diverged, .. } = answers[1].answer else {
            panic!("{:?}", answers[1].answer);
        };
        assert_eq!(diverged, 1);
        let Answer::BranchAnalysis {
            moments: analyzed, ..
        } = answers[2].answer
        else {
            panic!("{:?}", answers[2].answer);
        };
        let Answer::Committed {
            moments: committed, ..
        } = answers[3].answer
        else {
            panic!("{:?}", answers[3].answer);
        };
        assert_eq!(analyzed.mean.to_bits(), committed.mean.to_bits());

        // The committed circuit answers exactly like one that applied
        // the resize directly.
        let mut control = workspace(1);
        control.query(Request::Resize {
            circuit: "adder_8".into(),
            gate,
            size: 4,
        });
        let direct = control.query(Request::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert_eq!(answers[4].answer, direct.answer);

        // A dropped branch leaves no trace beyond its lifetime counter.
        ws.query(Request::Fork {
            circuit: "adder_8".into(),
            branch: "doomed".into(),
        });
        assert_eq!(ws.branch_names("adder_8").unwrap(), vec!["doomed"]);
        ws.query(Request::DropBranch {
            circuit: "adder_8".into(),
            branch: "doomed".into(),
        });
        assert!(ws.branch_names("adder_8").unwrap().is_empty());
        assert_eq!(ws.branch_counters(), (0, 1, 1));
        let after_drop = ws.query(Request::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert_eq!(after_drop.answer, direct.answer);
    }

    #[test]
    fn branch_failures_answer_with_their_own_codes() {
        let mut ws = workspace(1);
        let gate = first_gate(&ws, "adder_8");
        ws.query(Request::Fork {
            circuit: "adder_8".into(),
            branch: "a".into(),
        });
        ws.query(Request::Fork {
            circuit: "adder_8".into(),
            branch: "b".into(),
        });
        ws.query(Request::BranchResize {
            circuit: "adder_8".into(),
            branch: "a".into(),
            gate,
            size: 4,
        });
        assert!(matches!(
            ws.query(Request::Commit {
                circuit: "adder_8".into(),
                branch: "a".into(),
            })
            .answer,
            Answer::Committed { .. }
        ));
        let failures = [
            (
                Request::Fork {
                    circuit: "adder_8".into(),
                    branch: "b".into(),
                },
                ErrorCode::DuplicateBranch,
            ),
            (
                Request::BranchAnalyze {
                    circuit: "adder_8".into(),
                    branch: "ghost".into(),
                },
                ErrorCode::UnknownBranch,
            ),
            // Sibling `b` forked from a base the commit of `a` replaced.
            (
                Request::Commit {
                    circuit: "adder_8".into(),
                    branch: "b".into(),
                },
                ErrorCode::BranchConflict,
            ),
        ];
        for (request, expected) in failures {
            let Answer::Error { code, .. } = ws.query(request.clone()).answer else {
                panic!("{request:?} must fail");
            };
            assert_eq!(code, expected, "{request:?}");
        }
        // The conflicted sibling stays readable.
        assert!(matches!(
            ws.query(Request::BranchAnalyze {
                circuit: "adder_8".into(),
                branch: "b".into(),
            })
            .answer,
            Answer::BranchAnalysis { .. }
        ));
    }

    #[test]
    fn what_if_batch_matches_branches_and_every_pool_width() {
        let probe = workspace(1);
        let gate = first_gate(&probe, "adder_8");
        let trials = vec![
            WhatIfTrial {
                resizes: vec![GateResize {
                    gate: gate.clone(),
                    size: 4,
                }],
            },
            WhatIfTrial {
                resizes: vec![GateResize {
                    gate: "ghost".into(),
                    size: 1,
                }],
            },
            WhatIfTrial { resizes: vec![] },
        ];
        let batch = Request::WhatIfBatch {
            circuit: "adder_8".into(),
            trials: trials.clone(),
        };
        let reference = workspace(1).query(batch.clone()).answer;
        let Answer::WhatIf { outcomes } = &reference else {
            panic!("{reference:?}");
        };
        assert_eq!(outcomes.len(), 3);
        assert!(
            matches!(
                &outcomes[1],
                Answer::Error {
                    code: ErrorCode::UnknownGate,
                    ..
                }
            ),
            "a bad trial fails alone: {:?}",
            outcomes[1]
        );
        for threads in [2usize, 8] {
            assert_eq!(
                workspace(threads).query(batch.clone()).answer,
                reference,
                "what-if drift at {threads}-wide pool"
            );
        }

        // Trial 0 answers exactly what the explicit branch dance does.
        let mut ws = workspace(1);
        ws.query(Request::Fork {
            circuit: "adder_8".into(),
            branch: "t0".into(),
        });
        ws.query(Request::BranchResize {
            circuit: "adder_8".into(),
            branch: "t0".into(),
            gate,
            size: 4,
        });
        let explicit = ws
            .query(Request::BranchAnalyze {
                circuit: "adder_8".into(),
                branch: "t0".into(),
            })
            .answer;
        let (Answer::BranchAnalysis { moments: a, .. }, Answer::BranchAnalysis { moments: b, .. }) =
            (&explicit, &outcomes[0])
        else {
            panic!("{explicit:?} vs {:?}", outcomes[0]);
        };
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.var.to_bits(), b.var.to_bits());
    }

    fn sequential_workspace(threads: usize) -> Workspace {
        let mut ws = Workspace::new(
            Library::synthetic_90nm(),
            WorkspaceConfig::default()
                .with_threads(threads)
                .with_mc_samples(400),
        );
        ws.register_preset("pipeline_adder_16").expect("preset");
        ws
    }

    #[test]
    fn sequential_queries_require_a_clock_and_validate_it() {
        let mut ws = sequential_workspace(1);
        let Answer::Error { code, .. } = ws
            .query(Request::Wns {
                circuit: "pipeline_adder_16".into(),
                kind: EngineKind::Dsta,
            })
            .answer
        else {
            panic!("WNS without a clock must fail");
        };
        assert_eq!(code, ErrorCode::NoClock);
        for (period, uncertainty) in [(0.0, 0.0), (-5.0, 0.0), (f64::NAN, 0.0), (100.0, 100.0)] {
            let Answer::Error { code, .. } = ws
                .query(Request::SetClock {
                    circuit: "pipeline_adder_16".into(),
                    period,
                    uncertainty,
                })
                .answer
            else {
                panic!("clock ({period}, {uncertainty}) must be rejected");
            };
            assert_eq!(code, ErrorCode::InvalidParameter);
        }
        assert_eq!(ws.clock("pipeline_adder_16"), None);
        assert!(matches!(
            ws.query(Request::SetClock {
                circuit: "pipeline_adder_16".into(),
                period: 900.0,
                uncertainty: 25.0,
            })
            .answer,
            Answer::ClockSet { .. }
        ));
        assert_eq!(
            ws.clock("pipeline_adder_16"),
            Some(ClockConstraint::new(900.0, 25.0))
        );
    }

    #[test]
    fn group_slack_populates_all_four_groups_under_every_engine() {
        let mut ws = sequential_workspace(1);
        ws.query(Request::SetClock {
            circuit: "pipeline_adder_16".into(),
            period: 900.0,
            uncertainty: 0.0,
        });
        for kind in EngineKind::ALL {
            let response = ws.query(Request::GroupSlack {
                circuit: "pipeline_adder_16".into(),
                kind,
            });
            let Answer::GroupSlack { groups, .. } = &response.answer else {
                panic!("{kind:?}: {:?}", response.answer);
            };
            assert_eq!(groups.len(), 4);
            for row in groups {
                assert!(
                    row.endpoints > 0,
                    "{kind:?}: the pipeline has paths in every group, {row:?}"
                );
                assert!(row.wns.is_finite() && !row.worst.is_empty(), "{row:?}");
                assert!((0.0..=1.0).contains(&row.prob_met), "{row:?}");
            }
            let Answer::Wns { wns, .. } = ws
                .query(Request::Wns {
                    circuit: "pipeline_adder_16".into(),
                    kind,
                })
                .answer
            else {
                panic!("wns under {kind:?}");
            };
            let group_min = groups.iter().map(|g| g.wns).fold(f64::INFINITY, f64::min);
            assert_eq!(wns.to_bits(), group_min.to_bits(), "{kind:?}");
        }
    }

    #[test]
    fn set_clock_shifts_reg2reg_slack_by_exactly_the_period_delta() {
        let mut ws = sequential_workspace(1);
        let slack_at = |ws: &mut Workspace, period: f64| {
            ws.query(Request::SetClock {
                circuit: "pipeline_adder_16".into(),
                period,
                uncertainty: 0.0,
            });
            let Answer::GroupSlack { groups, .. } = ws
                .query(Request::GroupSlack {
                    circuit: "pipeline_adder_16".into(),
                    kind: EngineKind::FullSsta,
                })
                .answer
            else {
                panic!("group slack");
            };
            groups
                .iter()
                .find(|g| g.group == "reg2reg")
                .expect("reg2reg row")
                .wns
        };
        let tight = slack_at(&mut ws, 700.0);
        let loose = slack_at(&mut ws, 950.0);
        assert!(
            (loose - tight - 250.0).abs() < 1e-9,
            "arrival and setup are clock-independent, so Δwns == Δperiod: {tight} vs {loose}"
        );
    }

    #[test]
    fn warm_sequential_answers_match_a_fresh_workspace() {
        // A workspace that has analyzed, resized, and re-analyzed must
        // answer sequential queries bit-identically to one that starts
        // from scratch at the same sizes.
        let mut warm = sequential_workspace(1);
        let gate = first_gate(&warm, "pipeline_adder_16");
        warm.submit(&[
            Request::Analyze {
                circuit: "pipeline_adder_16".into(),
                kind: EngineKind::FullSsta,
            },
            Request::Resize {
                circuit: "pipeline_adder_16".into(),
                gate: gate.clone(),
                size: 4,
            },
            Request::SetClock {
                circuit: "pipeline_adder_16".into(),
                period: 800.0,
                uncertainty: 10.0,
            },
        ]);
        let warm_answer = warm
            .query(Request::GroupSlack {
                circuit: "pipeline_adder_16".into(),
                kind: EngineKind::FullSsta,
            })
            .answer;

        let mut fresh = sequential_workspace(1);
        fresh.submit(&[
            Request::Resize {
                circuit: "pipeline_adder_16".into(),
                gate,
                size: 4,
            },
            Request::SetClock {
                circuit: "pipeline_adder_16".into(),
                period: 800.0,
                uncertainty: 10.0,
            },
        ]);
        let fresh_answer = fresh
            .query(Request::GroupSlack {
                circuit: "pipeline_adder_16".into(),
                kind: EngineKind::FullSsta,
            })
            .answer;
        assert_eq!(warm_answer, fresh_answer);
    }

    #[test]
    fn sizing_a_sequential_circuit_improves_wns() {
        let mut ws = sequential_workspace(1);
        ws.query(Request::SetClock {
            circuit: "pipeline_adder_16".into(),
            period: 800.0,
            uncertainty: 0.0,
        });
        let wns = |ws: &mut Workspace| {
            let Answer::Wns { wns, .. } = ws
                .query(Request::Wns {
                    circuit: "pipeline_adder_16".into(),
                    kind: EngineKind::FullSsta,
                })
                .answer
            else {
                panic!("wns");
            };
            wns
        };
        let before = wns(&mut ws);
        let response = ws.query(Request::Size {
            circuit: "pipeline_adder_16".into(),
            config: SizerConfig::default(),
            optimizer: OptimizerKind::Greedy,
            yield_deadline: None,
        });
        assert!(matches!(response.answer, Answer::Sized { .. }));
        let after = wns(&mut ws);
        assert!(
            after > before,
            "sizing must improve sequential WNS: {before} -> {after}"
        );
    }

    #[test]
    fn combinational_circuits_answer_sequential_queries_with_empty_reg_groups() {
        let mut ws = workspace(1);
        ws.query(Request::SetClock {
            circuit: "adder_8".into(),
            period: 2000.0,
            uncertainty: 0.0,
        });
        let Answer::GroupSlack { groups, .. } = ws
            .query(Request::GroupSlack {
                circuit: "adder_8".into(),
                kind: EngineKind::FullSsta,
            })
            .answer
        else {
            panic!("group slack");
        };
        for row in &groups {
            if row.group == "in2out" {
                assert!(row.endpoints > 0 && !row.worst.is_empty(), "{row:?}");
            } else {
                assert_eq!(row.endpoints, 0, "{row:?}");
                assert_eq!(row.wns, 2000.0, "empty groups report the clock budget");
                assert!(row.worst.is_empty(), "{row:?}");
            }
        }
    }

    #[test]
    fn edif_registration_flattens_and_serves_sequential_queries() {
        let mut ws = workspace(1);
        ws.register_edif_str(
            "toggler",
            "(edif toggler\n\
             \x20 (cell toggler\n\
             \x20   (interface (input d) (output q))\n\
             \x20   (contents\n\
             \x20     (instance ff (cellref DFF))\n\
             \x20     (instance inv (cellref NOT))\n\
             \x20     (net nd (joined (port d) (portref ff d)))\n\
             \x20     (net nq (joined (portref ff q) (portref inv i0)))\n\
             \x20     (net ny (joined (portref inv o) (port q))))))",
        )
        .expect("EDIF parses and registers");
        assert!(ws.netlist("toggler").expect("registered").is_sequential());
        ws.query(Request::SetClock {
            circuit: "toggler".into(),
            period: 200.0,
            uncertainty: 0.0,
        });
        let Answer::GroupSlack { groups, .. } = ws
            .query(Request::GroupSlack {
                circuit: "toggler".into(),
                kind: EngineKind::Dsta,
            })
            .answer
        else {
            panic!("group slack");
        };
        let by_name = |n: &str| groups.iter().find(|g| g.group == n).expect("row");
        assert_eq!(by_name("in2reg").endpoints, 1, "d -> ff");
        assert_eq!(by_name("reg2out").endpoints, 1, "ff -> q");
        assert_eq!(by_name("reg2reg").endpoints, 0);
        assert_eq!(by_name("in2out").endpoints, 0);
    }
}
