//! The copy-on-write branch contracts, end to end.
//!
//! * N divergent branches of one session evaluate **bit-identically at
//!   every propagation pool width** — the width is a throughput knob,
//!   never an answer knob (CI re-runs this suite at 1/2/8 built-in
//!   widths plus a 16-wide pool via `VARTOL_SIZER_THREADS`).
//! * A branch's answer equals a from-scratch session built at the
//!   branch's sizes, bit for bit — speculation is never an
//!   approximation.
//! * Committing one branch, or dropping all of them, leaves the parent
//!   exactly where the equivalent direct operations would have put it;
//!   an untouched parent stays byte-equal to an untouched control.
//! * A panic inside one branch (a bad resize) is contained to that
//!   branch: siblings still answer correctly and the parent still
//!   commits.
//! * The acceptance number: 8 divergent single-gate branches of c7552
//!   perform **strictly fewer** total node recomputations than 8
//!   independent session rebuilds, while answering bit-identically at
//!   pool widths 1/2/8.

use std::panic::{catch_unwind, AssertUnwindSafe};

use vartol::liberty::Library;
use vartol::netlist::generators::{benchmark, preset};
use vartol::netlist::iscas::parse_bench;
use vartol::netlist::{GateId, Netlist};
use vartol::ssta::{SessionBranch, SstaConfig, TimingSession};

/// The compared pool widths: 1 (serial reference), 2, 8, plus any extra
/// width from `VARTOL_SIZER_THREADS` (the same knob the other
/// determinism suites use for the 16-wide CI rows).
fn widths() -> Vec<usize> {
    let mut widths = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("VARTOL_SIZER_THREADS") {
        widths.push(
            extra
                .parse()
                .expect("VARTOL_SIZER_THREADS must be a thread count"),
        );
    }
    widths
}

/// Builds a named circuit spanning all three front doors: the shipped
/// `.bench` file (c17), a preset generator (adder_16), and the paper's
/// benchmark suite (c7552).
fn circuit(name: &str, library: &Library) -> Netlist {
    match name {
        "c17" => {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/c17.bench");
            let text = std::fs::read_to_string(path).expect("data/c17.bench ships with the repo");
            parse_bench(&text, "c17").expect("c17 parses")
        }
        "adder_16" => preset(name, library).expect("known preset"),
        _ => benchmark(name, library).expect("known benchmark"),
    }
}

fn session(name: &str, threads: usize) -> TimingSession {
    let library = Library::synthetic_90nm();
    let netlist = circuit(name, &library);
    TimingSession::new(
        library,
        SstaConfig {
            threads,
            ..SstaConfig::default()
        },
        netlist,
    )
}

/// `n` gates spread evenly across the circuit, each paired with a valid
/// size different from its current one (every synthetic-90nm cell group
/// has at least 6 drives).
fn spread_resizes(session: &TimingSession, n: usize) -> Vec<(GateId, usize)> {
    let gates: Vec<GateId> = session.netlist().gate_ids().collect();
    assert!(gates.len() >= n, "need {n} gates, have {}", gates.len());
    (0..n)
        .map(|i| {
            let g = gates[i * gates.len() / n];
            let current = session.netlist().gate(g).size().unwrap_or(0);
            let size = if current == 3 + i % 3 { 2 } else { 3 + i % 3 };
            (g, size)
        })
        .collect()
}

/// Four bitwise observables: three summary words plus per-node
/// (mean, var) arrival bits.
type Signature = (u64, u64, u64, Vec<(u64, u64)>);

/// Everything observable about an evaluated branch, bitwise.
fn branch_signature(branch: &mut SessionBranch) -> Signature {
    let moments = branch.refresh();
    let arrivals = branch
        .arrival_snapshot()
        .to_vec()
        .iter()
        .map(|m| (m.mean.to_bits(), m.var.to_bits()))
        .collect();
    (
        moments.mean.to_bits(),
        moments.var.to_bits(),
        branch.total_area().to_bits(),
        arrivals,
    )
}

/// Everything observable about a parent session, bitwise.
fn session_signature(session: &TimingSession) -> Signature {
    let moments = session.circuit_moments();
    (
        session.size_fingerprint(),
        moments.mean.to_bits(),
        moments.var.to_bits(),
        session
            .arrivals()
            .iter()
            .map(|m| (m.mean.to_bits(), m.var.to_bits()))
            .collect(),
    )
}

#[test]
fn divergent_branches_are_bit_identical_at_every_pool_width() {
    for name in ["c17", "adder_16"] {
        let mut reference: Option<Vec<Signature>> = None;
        for threads in widths() {
            let mut parent = session(name, threads);
            parent.refresh();
            let signatures: Vec<_> = spread_resizes(&parent, 4)
                .into_iter()
                .map(|(gate, size)| {
                    let mut branch = parent.fork();
                    branch.try_resize(gate, size).expect("valid size");
                    branch_signature(&mut branch)
                })
                .collect();
            match &reference {
                None => reference = Some(signatures),
                Some(expected) => assert_eq!(
                    expected, &signatures,
                    "{name}: {threads}-wide pool diverged from the serial reference"
                ),
            }
        }
    }
}

#[test]
fn branch_answers_equal_a_from_scratch_session() {
    for name in ["c17", "adder_16"] {
        let mut parent = session(name, 1);
        parent.refresh();
        let resizes = spread_resizes(&parent, 2);

        let mut branch = parent.fork();
        for &(gate, size) in &resizes {
            branch.try_resize(gate, size).expect("valid size");
        }
        let branch_moments = branch.refresh();

        let library = Library::synthetic_90nm();
        let mut netlist = circuit(name, &library);
        for &(gate, size) in &resizes {
            netlist.set_size(gate, size);
        }
        let mut scratch = TimingSession::new(library, SstaConfig::default(), netlist);
        let scratch_moments = scratch.refresh();

        assert_eq!(
            branch_moments.mean.to_bits(),
            scratch_moments.mean.to_bits()
        );
        assert_eq!(branch_moments.var.to_bits(), scratch_moments.var.to_bits());
        assert_eq!(
            branch.arrival_snapshot().to_vec().as_slice(),
            scratch.arrivals(),
            "{name}: branch arrivals must equal the from-scratch session's"
        );
    }
}

#[test]
fn commit_and_drop_leave_the_parent_exactly_where_direct_ops_would() {
    let mut parent = session("adder_16", 1);
    parent.refresh();
    let resizes = spread_resizes(&parent, 3);
    let (commit_gate, commit_size) = resizes[0];

    // Control A: never forked, never mutated.
    let mut untouched = session("adder_16", 1);
    untouched.refresh();
    // Control B: the committed resize applied directly.
    let mut direct = session("adder_16", 1);
    direct.try_resize(commit_gate, commit_size).expect("valid");
    direct.refresh();

    // Dropping branches — diverged or not — must not move the parent.
    {
        let mut doomed = parent.fork();
        doomed
            .try_resize(resizes[1].0, resizes[1].1)
            .expect("valid");
        doomed.refresh();
        let undiverged = parent.fork();
        drop(doomed);
        drop(undiverged);
    }
    assert_eq!(
        session_signature(&parent),
        session_signature(&untouched),
        "dropped branches leaked state into the parent"
    );

    // Committing one branch moves the parent to exactly the state the
    // direct resize produces — and sizes it identically.
    let mut winner = parent.fork();
    winner.try_resize(commit_gate, commit_size).expect("valid");
    winner.refresh();
    let committed = parent.commit(winner).expect("clean commit");
    assert_eq!(
        session_signature(&parent),
        session_signature(&direct),
        "committed parent diverged from the direct-resize control"
    );
    assert_eq!(
        committed.mean.to_bits(),
        direct.circuit_moments().mean.to_bits()
    );
    assert_eq!(parent.sizes(), direct.sizes());
}

#[test]
fn panic_in_one_branch_does_not_poison_its_siblings() {
    let mut parent = session("c17", 1);
    parent.refresh();
    let resizes = spread_resizes(&parent, 2);

    let mut healthy = parent.fork();
    healthy
        .try_resize(resizes[0].0, resizes[0].1)
        .expect("valid size");

    // Sizing a primary input panics inside the doomed branch (the
    // unchecked `resize` is documented to do so).
    let input = parent.netlist().inputs()[0];
    let mut doomed = parent.fork();
    let panicked = catch_unwind(AssertUnwindSafe(|| doomed.resize(input, 3)));
    assert!(panicked.is_err(), "resizing a primary input must panic");
    drop(doomed);

    // The sibling still answers, and still bit-equal to from-scratch.
    let healthy_moments = healthy.refresh();
    let library = Library::synthetic_90nm();
    let mut netlist = circuit("c17", &library);
    netlist.set_size(resizes[0].0, resizes[0].1);
    let scratch = TimingSession::new(library, SstaConfig::default(), netlist);
    assert_eq!(
        healthy_moments.mean.to_bits(),
        scratch.circuit_moments().mean.to_bits()
    );

    // And the parent still commits the healthy branch.
    parent.commit(healthy).expect("sibling commit survives");
}

/// The PR's acceptance number, also asserted in CI at an explicit
/// 16-wide pool: 8 divergent single-gate branches of the paper's
/// largest circuit recompute strictly fewer nodes in total than 8
/// independent session rebuilds, while answering bit-identically at
/// every pool width.
#[test]
fn eight_c7552_branches_beat_eight_rebuilds_and_agree_across_widths() {
    let mut reference: Option<Vec<(u64, u64, u64)>> = None;
    let mut branch_visits_at_1 = 0u64;
    for threads in widths() {
        let mut parent = session("c7552", threads);
        parent.refresh();
        let resizes = spread_resizes(&parent, 8);
        let mut total_branch_visits = 0u64;
        let signatures: Vec<(u64, u64, u64)> = resizes
            .iter()
            .map(|&(gate, size)| {
                let mut branch = parent.fork();
                branch.try_resize(gate, size).expect("valid size");
                let moments = branch.refresh();
                total_branch_visits += branch.recompute_count();
                (
                    moments.mean.to_bits(),
                    moments.var.to_bits(),
                    branch.total_area().to_bits(),
                )
            })
            .collect();
        match &reference {
            None => {
                reference = Some(signatures);
                branch_visits_at_1 = total_branch_visits;
            }
            Some(expected) => assert_eq!(
                expected, &signatures,
                "c7552 branches: {threads}-wide pool diverged from the serial reference"
            ),
        }
    }

    // The rebuild baseline: 8 fresh sessions, each resized on one gate
    // and built from scratch. `recompute_count` on a session counts
    // every node visit including the initial full build.
    let resizes = {
        let mut p = session("c7552", 1);
        p.refresh();
        spread_resizes(&p, 8)
    };
    let mut rebuild_visits = 0u64;
    for &(gate, size) in &resizes {
        let library = Library::synthetic_90nm();
        let mut netlist = circuit("c7552", &library);
        netlist.set_size(gate, size);
        let mut fresh = TimingSession::new(library, SstaConfig::default(), netlist);
        fresh.refresh();
        rebuild_visits += fresh.recompute_count();
    }
    assert!(
        branch_visits_at_1 < rebuild_visits,
        "8 branches must recompute strictly fewer nodes than 8 rebuilds: \
         {branch_visits_at_1} vs {rebuild_visits}"
    );
    // And not marginally fewer: single-gate cones are a small fraction
    // of 8 full propagations.
    assert!(
        branch_visits_at_1 * 4 < rebuild_visits,
        "branch cones should be well under a quarter of the rebuild cost: \
         {branch_visits_at_1} vs {rebuild_visits}"
    );
}
