//! Cross-engine equivalence of the correlated variation model.
//!
//! The contract this suite pins (see `crates/ssta/src/variation.rs` for
//! the math):
//!
//! * With the **default empty model**, engines take the legacy
//!   independent code paths — analyses are bit-identical to a config
//!   that never mentions the model at all (the deeper bit-identity
//!   regressions live in `mc_determinism` / `sizing_determinism` /
//!   `workspace_determinism`, which run unmodified).
//! * With a **die-to-die global source**, the Monte-Carlo engine (which
//!   samples the shared deviate per die) and the conditioned FULLSSTA
//!   engine (which integrates over it with Gauss–Hermite lanes) must
//!   agree on circuit μ and σ within 2% on c17, adder_16, and ecc_16.

use std::sync::Arc;
use vartol::liberty::Library;
use vartol::netlist::generators::preset;
use vartol::netlist::iscas::parse_bench;
use vartol::netlist::Netlist;
use vartol::ssta::{
    EngineKind, FullSsta, MonteCarloTimer, SstaConfig, TimingSession, VariationModel,
};

fn c17() -> Netlist {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/c17.bench"))
        .expect("data/c17.bench ships with the repo");
    parse_bench(&text, "c17").expect("c17 parses")
}

fn suite_circuits(lib: &Library) -> Vec<Netlist> {
    vec![
        c17(),
        preset("adder_16", lib).expect("known preset"),
        preset("ecc_16", lib).expect("known preset"),
    ]
}

#[test]
fn mc_and_conditioned_fullssta_agree_under_a_global_source() {
    let lib = Library::synthetic_90nm();
    // 80% of each gate's delay variance moves with the die. The global
    // component is captured exactly by both engines; the residual 20%
    // carries FULLSSTA's usual (small) discretization/correlation bias,
    // which the 2% gate comfortably absorbs.
    let model = VariationModel::die_to_die(0.8);
    let config = SstaConfig::default().with_model(model);

    for netlist in suite_circuits(&lib) {
        let name = netlist.name().to_owned();
        let mc = MonteCarloTimer::new(&lib, &config)
            .with_seed(0xC0DE_2005)
            .sample_parallel(&netlist, 30_000)
            .moments();
        let full = FullSsta::new(&lib, &config)
            .analyze(&netlist)
            .circuit_moments();
        let mean_err = (full.mean - mc.mean).abs() / mc.mean;
        let sigma_err = (full.std() - mc.std()).abs() / mc.std();
        assert!(
            mean_err < 0.02,
            "{name}: conditioned μ {} vs MC μ {} ({:.2}%)",
            full.mean,
            mc.mean,
            100.0 * mean_err
        );
        assert!(
            sigma_err < 0.02,
            "{name}: conditioned σ {} vs MC σ {} ({:.2}%)",
            full.std(),
            mc.std(),
            100.0 * sigma_err
        );
    }
}

#[test]
fn empty_model_is_bit_identical_to_an_unset_model() {
    let lib = Arc::new(Library::synthetic_90nm());
    let unset = SstaConfig::default();
    let explicit = SstaConfig::default().with_model(VariationModel::none());
    for netlist in suite_circuits(&lib) {
        for kind in EngineKind::ALL {
            let a = kind.engine(&lib, &unset).analyze(&netlist);
            let b = kind.engine(&lib, &explicit).analyze(&netlist);
            assert_eq!(a, b, "{kind} on {}", netlist.name());
        }
    }
}

#[test]
fn conditioned_sessions_serve_correlated_statistics_incrementally() {
    // The service path: a session opened under a model answers what-if
    // resizes from its conditioned lanes, and the incremental answer
    // matches a conditioned from-scratch analysis exactly.
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default().with_model(VariationModel::die_to_die(0.6));
    let netlist = preset("adder_16", &lib).expect("known preset");
    let independent_sigma = TimingSession::new(&lib, SstaConfig::default(), netlist.clone())
        .circuit_moments()
        .std();

    let mut session = TimingSession::new(&lib, config, netlist);
    assert!(
        session.circuit_moments().std() > independent_sigma,
        "correlation must widen the served circuit distribution"
    );
    let g = session.netlist().gate_ids().nth(10).expect("gates");
    session.resize(g, 4);
    let incremental = session.refresh();
    let scratch = session.report(EngineKind::FullSsta).circuit_moments();
    assert_eq!(incremental, scratch, "conditioned incremental == scratch");
}
