//! The analytic-engine determinism suite for the level-ordered
//! propagation arena.
//!
//! Three contracts, in order of strictness:
//!
//! 1. **Width independence** — DSTA/FASSTA/FULLSSTA reports are
//!    bit-identical at 1/2/8/16 propagation threads
//!    ([`SstaConfig::with_threads`]), with and without a correlated
//!    [`VariationModel`]. The per-level fan-out computes every node
//!    kernel as a pure function of already-joined lower-level state and
//!    joins results in node order, so the schedule cannot leak into the
//!    numbers. `VARTOL_ENGINE_THREADS` widens the compared set (CI runs
//!    2/8/16 explicitly).
//! 2. **Incremental ≡ from-scratch** — a session `refresh()` after
//!    resizes reproduces a from-scratch analysis bit for bit under the
//!    arena layout, frontier and all.
//! 3. **Legacy equivalence** — the empty-model single-lane path is
//!    pinned byte-equal to **pre-refactor fixtures** captured from the
//!    node-at-a-time AoS implementation on c17/c880/c1908
//!    (`tests/fixtures/legacy_engine_reports.txt`). Regenerate with
//!    `cargo test --test engine_determinism -- --ignored` only when a
//!    numeric change is intended and documented.

use vartol::liberty::Library;
use vartol::netlist::generators::{
    benchmark, preset, random_dag, ripple_carry_adder, RandomDagConfig,
};
use vartol::netlist::{GateId, Netlist};
use vartol::ssta::{
    EngineKind, Fnv64, GlobalSource, SpatialGrid, SstaConfig, TimingReport, TimingSession,
    VariationModel,
};

const FIXTURE_PATH: &str = "tests/fixtures/legacy_engine_reports.txt";
const FIXTURE_CIRCUITS: [&str; 3] = ["c17", "c880", "c1908"];
const ANALYTIC: [EngineKind; 3] = [EngineKind::Dsta, EngineKind::Fassta, EngineKind::FullSsta];

/// c17 ships as a real ISCAS-85 `.bench` file; the other fixture
/// circuits are paper-suite generators.
fn fixture_circuit(name: &str, lib: &Library) -> Netlist {
    if name == "c17" {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/c17.bench");
        let text = std::fs::read_to_string(path).expect("data/c17.bench ships with the repo");
        return vartol::netlist::iscas::parse_bench(&text, "c17").expect("c17 parses");
    }
    benchmark(name, lib).expect("fixture circuits are paper benchmarks")
}

/// A stable 64-bit digest of everything a [`TimingReport`] derives its
/// deterministic payload from: per-node arrival moments, per-node PDFs
/// (support and probabilities), the circuit moments and PDF, and the
/// worst output — every f64 fed in as raw IEEE bits, so two digests are
/// equal iff the reports are bit-identical.
fn report_digest(netlist: &Netlist, report: &TimingReport) -> u64 {
    let mut h = Fnv64::new();
    for m in report.arrivals() {
        h.write_u64(m.mean.to_bits());
        h.write_u64(m.var.to_bits());
    }
    for id in netlist.node_ids() {
        if let Some(pdf) = report.arrival_pdf(id) {
            for (&v, &p) in pdf.values().iter().zip(pdf.probs()) {
                h.write_u64(v.to_bits());
                h.write_u64(p.to_bits());
            }
        }
    }
    let c = report.circuit_moments();
    h.write_u64(c.mean.to_bits());
    h.write_u64(c.var.to_bits());
    if let Some(pdf) = report.circuit_pdf() {
        for (&v, &p) in pdf.values().iter().zip(pdf.probs()) {
            h.write_u64(v.to_bits());
            h.write_u64(p.to_bits());
        }
    }
    h.write_u64(report.worst_output().index() as u64);
    h.finish()
}

fn analyze(netlist: &Netlist, library: &Library, config: &SstaConfig, kind: EngineKind) -> u64 {
    let report = kind.engine(library, config).analyze(netlist);
    report_digest(netlist, &report)
}

/// The thread widths every contract is checked over; the CI matrix adds
/// explicit 2/8/16-wide runs through `VARTOL_ENGINE_THREADS`.
fn widths() -> Vec<usize> {
    let mut widths = vec![1, 2, 8, 16];
    if let Ok(extra) = std::env::var("VARTOL_ENGINE_THREADS") {
        let w: usize = extra
            .parse()
            .expect("VARTOL_ENGINE_THREADS must be a thread count");
        if !widths.contains(&w) {
            widths.push(w);
        }
    }
    widths
}

/// A deterministic DAG with levels far wider than the arena's inline
/// threshold, so cross-width comparisons genuinely exercise the
/// parallel per-level fan-out (narrow circuits run inline at any
/// configured width by design).
fn wide_dag(lib: &Library) -> Netlist {
    random_dag(
        RandomDagConfig {
            inputs: 32,
            gates: 600,
            window: 220,
        },
        0xBEEF,
        lib,
    )
}

fn test_circuit(name: &str, lib: &Library) -> Netlist {
    if name == "wide_dag" {
        return wide_dag(lib);
    }
    benchmark(name, lib)
        .or_else(|| preset(name, lib))
        .expect("known circuit")
}

/// A correlated model exercising both conditioning lanes (a global
/// die-to-die source spreads the propagation over Gauss–Hermite lanes)
/// and a spatial residual component.
fn correlated_model() -> VariationModel {
    VariationModel::none()
        .with_global_source(GlobalSource::with_variance_share("d2d", 0.4))
        .with_spatial(SpatialGrid::with_variance_share(4, 4, 2.0, 0.2))
        .normalized()
}

#[test]
fn analytic_reports_bit_identical_at_every_thread_width() {
    let lib = Library::synthetic_90nm();
    for circuit in ["c432", "adder_16", "wide_dag"] {
        let n = test_circuit(circuit, &lib);
        for kind in ANALYTIC {
            let serial = analyze(&n, &lib, &SstaConfig::default().with_threads(1), kind);
            for threads in widths() {
                let parallel =
                    analyze(&n, &lib, &SstaConfig::default().with_threads(threads), kind);
                assert_eq!(
                    serial, parallel,
                    "{circuit}/{kind}: {threads}-thread propagation diverged"
                );
            }
        }
    }
}

#[test]
fn conditioned_reports_bit_identical_at_every_thread_width() {
    // With a correlated model the Gauss–Hermite lanes become independent
    // parallel work items — the join order must still erase the width.
    let lib = Library::synthetic_90nm();
    let model = correlated_model();
    for circuit in ["c432", "wide_dag"] {
        let n = test_circuit(circuit, &lib);
        for kind in ANALYTIC {
            let config = SstaConfig::default().with_model(model.clone());
            let serial = analyze(&n, &lib, &config.clone().with_threads(1), kind);
            for threads in widths() {
                let parallel = analyze(&n, &lib, &config.clone().with_threads(threads), kind);
                assert_eq!(
                    serial, parallel,
                    "{circuit}/{kind} (conditioned): {threads}-thread propagation diverged"
                );
            }
        }
    }
}

#[test]
fn incremental_refresh_matches_scratch_under_the_arena() {
    let lib = Library::synthetic_90nm();
    for threads in widths() {
        for (model, tag) in [
            (VariationModel::none(), "empty"),
            (correlated_model(), "correlated"),
        ] {
            let config = SstaConfig::default()
                .with_model(model)
                .with_threads(threads);
            for kind in ANALYTIC {
                let n = benchmark("c880", &lib).expect("known");
                let gates: Vec<GateId> = n.gate_ids().collect();
                let mut session = TimingSession::with_kind(&lib, config.clone(), n, kind);
                session.resize(gates[3], 4);
                session.resize(gates[gates.len() / 2], 2);
                session.resize(*gates.last().expect("gates"), 5);
                let fresh = session.current_report();
                let incremental = report_digest(session.netlist(), &fresh);
                let scratch = report_digest(session.netlist(), &session.report(kind));
                assert_eq!(
                    incremental, scratch,
                    "{kind} ({tag}, {threads} threads): frontier refresh diverged from scratch"
                );
            }
        }
    }
}

#[test]
fn incremental_refresh_stays_cone_local_at_every_width() {
    // Parallel propagation must not grow the visited set: the frontier
    // still chases only the fanout cone of the resized gates.
    let lib = Library::synthetic_90nm();
    for threads in [1, 8] {
        let config = SstaConfig::default().with_threads(threads);
        let n = benchmark("c1908", &lib).expect("known");
        let node_count = n.node_count();
        let g = n.gate_ids().last().expect("gates");
        let mut session = TimingSession::new(&lib, config, n);
        let before = session.recompute_count();
        session.resize(g, 4);
        session.refresh();
        let visited = session.recompute_count() - before;
        assert!(
            (visited as usize) < node_count / 10,
            "{threads}-thread refresh must stay cone-local: {visited} of {node_count}"
        );
    }
}

#[test]
fn sessions_agree_across_widths_after_a_resize_history() {
    // Same resize script, different propagation widths: the arenas must
    // agree bit for bit at every step, not just at the end.
    let lib = Library::synthetic_90nm();
    let build = |threads: usize| {
        TimingSession::new(
            &lib,
            SstaConfig::default().with_threads(threads),
            ripple_carry_adder(16, &lib),
        )
    };
    let mut narrow = build(1);
    let mut wide = build(8);
    let gates: Vec<GateId> = narrow.netlist().gate_ids().collect();
    for (step, &g) in gates.iter().step_by(7).enumerate() {
        let size = (step % 5) + 1;
        narrow.resize(g, size);
        wide.resize(g, size);
        let a = narrow.current_report();
        let b = wide.current_report();
        assert_eq!(
            report_digest(narrow.netlist(), &a),
            report_digest(wide.netlist(), &b),
            "step {step}: widths diverged mid-history"
        );
    }
}

fn fixture_lines(lib: &Library) -> Vec<String> {
    let config = SstaConfig::default();
    let mut lines = Vec::new();
    for circuit in FIXTURE_CIRCUITS {
        let n = fixture_circuit(circuit, lib);
        for kind in ANALYTIC {
            let report = kind.engine(lib, &config).analyze(&n);
            let c = report.circuit_moments();
            lines.push(format!(
                "{circuit} {kind} mean={:016x} var={:016x} digest={:016x}",
                c.mean.to_bits(),
                c.var.to_bits(),
                report_digest(&n, &report)
            ));
        }
    }
    lines
}

#[test]
fn empty_model_reports_match_pre_refactor_fixtures_byte_for_byte() {
    let fixture = std::fs::read_to_string(FIXTURE_PATH)
        .unwrap_or_else(|e| panic!("{FIXTURE_PATH}: {e} (run the ignored regeneration test)"));
    let want: Vec<&str> = fixture
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let lib = Library::synthetic_90nm();
    let got = fixture_lines(&lib);
    assert_eq!(
        got.len(),
        want.len(),
        "fixture row count mismatch — regenerate deliberately if the suite changed"
    );
    for (got, want) in got.iter().zip(&want) {
        assert_eq!(
            got.as_str(),
            *want,
            "single-lane arena output diverged from the pre-refactor implementation"
        );
    }
}

/// Rewrites the fixture file from the current implementation. Run only
/// when an intentional numeric change is being made, and say so in the
/// commit: the whole point of the fixture is to fail loudly when the
/// arena stops being bit-identical to the legacy propagation.
#[test]
#[ignore = "rewrites the legacy fixture; run only for an intended numeric change"]
fn regenerate_legacy_fixtures() {
    let lib = Library::synthetic_90nm();
    let mut text = String::from(
        "# Byte-exact reports of the pre-arena (node-at-a-time AoS) propagation.\n\
         # Fields are IEEE-754 bit patterns / FNV-1a digests in hex; see\n\
         # tests/engine_determinism.rs `report_digest` for the exact recipe.\n",
    );
    for line in fixture_lines(&lib) {
        text.push_str(&line);
        text.push('\n');
    }
    std::fs::create_dir_all("tests/fixtures").expect("fixture dir");
    std::fs::write(FIXTURE_PATH, text).expect("fixture write");
}
