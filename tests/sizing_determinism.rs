//! The parallel gate-sizing determinism contract.
//!
//! `StatisticalGreedy` scores `(gate, size)` candidates concurrently on
//! session forks over a `ScopedPool`; the contract (same as the parallel
//! Monte-Carlo engine's) is that the chosen resizes — and therefore the
//! final sizes, the moments, the area, and the whole pass history — are
//! **bit-identical for every thread count**. CI runs this suite with
//! `--test-threads=1` so the pool, not the test harness, owns all
//! parallelism; `VARTOL_SIZER_THREADS` widens the compared set beyond
//! the built-in 1/2/8.

use vartol::core::{OptimizationReport, SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::preset;
use vartol::netlist::iscas::parse_bench;
use vartol::netlist::Netlist;

fn c17() -> Netlist {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/c17.bench");
    let text = std::fs::read_to_string(path).expect("data/c17.bench ships with the repo");
    parse_bench(&text, "c17").expect("c17 parses")
}

/// The compared pool widths: 1 (serial reference), 2, 8, plus any extra
/// width from `VARTOL_SIZER_THREADS`.
fn widths() -> Vec<usize> {
    let mut widths = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("VARTOL_SIZER_THREADS") {
        widths.push(
            extra
                .parse()
                .expect("VARTOL_SIZER_THREADS must be a thread count"),
        );
    }
    widths
}

fn optimize_at(
    base: &Netlist,
    library: &Library,
    alpha: f64,
    threads: usize,
) -> (OptimizationReport, Vec<usize>) {
    let mut n = base.clone();
    let config = SizerConfig::with_alpha(alpha).with_threads(threads);
    let report = StatisticalGreedy::new(library, config).optimize(&mut n);
    (report, n.sizes())
}

fn assert_bit_identical(name: &str, base: &Netlist, library: &Library, alpha: f64) {
    let (serial_report, serial_sizes) = optimize_at(base, library, alpha, 1);
    assert!(
        serial_report
            .passes()
            .iter()
            .map(|p| p.resized)
            .sum::<usize>()
            > 0,
        "{name}: the run must actually resize something for the test to mean anything"
    );
    for threads in widths().into_iter().skip(1) {
        let (report, sizes) = optimize_at(base, library, alpha, threads);
        assert_eq!(
            serial_sizes, sizes,
            "{name}: {threads}-thread pool picked different resizes"
        );
        assert_eq!(
            serial_report, report,
            "{name}: {threads}-thread report diverged"
        );
        // PartialEq on f64 moments is exact, but make the bit-for-bit
        // claim explicit for the headline numbers.
        for (a, b) in [
            (
                serial_report.final_moments().mean,
                report.final_moments().mean,
            ),
            (
                serial_report.final_moments().var,
                report.final_moments().var,
            ),
            (serial_report.final_area(), report.final_area()),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: {threads}-thread bits");
        }
    }
}

#[test]
fn c17_sizing_is_bit_identical_across_pool_widths() {
    let library = Library::synthetic_90nm();
    assert_bit_identical("c17", &c17(), &library, 9.0);
}

#[test]
fn adder_sizing_is_bit_identical_across_pool_widths() {
    let library = Library::synthetic_90nm();
    let base = preset("adder_16", &library).expect("known preset");
    assert_bit_identical("adder_16", &base, &library, 3.0);
}

#[test]
fn ecc_sizing_is_bit_identical_across_pool_widths() {
    let library = Library::synthetic_90nm();
    let base = preset("ecc_16", &library).expect("known preset");
    assert_bit_identical("ecc_16", &base, &library, 3.0);
}
