//! Cross-crate integration tests: the full paper flow from circuit
//! generation through statistical optimization, independently verified
//! with Monte-Carlo timing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vartol::core::{MeanDelaySizer, SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::{benchmark, ripple_carry_adder};
use vartol::netlist::sim::random_equivalence_check;
use vartol::ssta::{Dsta, FullSsta, MonteCarloTimer, SstaConfig};

#[test]
fn full_paper_flow_on_c432() {
    let lib = Library::synthetic_90nm();
    let ssta = SstaConfig::default();

    // 1. Generate and mean-optimize (the paper's "original").
    let mut original = benchmark("c432", &lib).expect("known benchmark");
    let baseline = MeanDelaySizer::new(&lib, &ssta).minimize_delay(&mut original);
    assert!(baseline.final_delay <= baseline.initial_delay);

    // 2. Statistical optimization at alpha = 9.
    let mut optimized = original.clone();
    let report = StatisticalGreedy::new(&lib, SizerConfig::with_alpha(9.0).with_ssta(ssta.clone()))
        .optimize(&mut optimized);
    assert!(
        report.delta_sigma_pct() < -15.0,
        "meaningful sigma reduction, got {:+.1}%",
        report.delta_sigma_pct()
    );
    assert!(report.delta_area_pct() > 0.0, "variance costs area");

    // 3. Monte-Carlo confirms the reduction on the actual netlists.
    let mut rng = StdRng::seed_from_u64(99);
    let timer = MonteCarloTimer::new(&lib, &ssta);
    let mc_orig = timer.sample(&original, 8_000, &mut rng).moments();
    let mc_opt = timer.sample(&optimized, 8_000, &mut rng).moments();
    assert!(
        mc_opt.std() < mc_orig.std() * 0.85,
        "MC-verified sigma reduction: {} vs {}",
        mc_opt.std(),
        mc_orig.std()
    );
}

#[test]
fn sizing_preserves_function() {
    // Resizing must never change logic: sizes are electrically, not
    // logically, meaningful. Check random equivalence before/after.
    let lib = Library::synthetic_90nm();
    let before = ripple_carry_adder(8, &lib);
    let mut after = before.clone();
    let _ = StatisticalGreedy::new(&lib, SizerConfig::with_alpha(3.0)).optimize(&mut after);
    assert!(
        after.sizes() != before.sizes(),
        "something must have been resized"
    );
    let mut rng = StdRng::seed_from_u64(3);
    assert!(
        random_equivalence_check(&before, &after, 256, &mut rng).is_none(),
        "resizing changed the boolean function"
    );
}

#[test]
fn statistical_engines_bracket_deterministic_sta() {
    let lib = Library::synthetic_90nm();
    let ssta = SstaConfig::default();
    for name in ["alu2", "c499", "c880"] {
        let n = benchmark(name, &lib).expect("known benchmark");
        let det = Dsta::new(&lib, &ssta).analyze(&n).max_delay();
        let stat = FullSsta::new(&lib, &ssta).analyze(&n).circuit_moments();
        // Statistical mean of the max >= max of the means, and not absurdly so.
        assert!(stat.mean >= det - 1e-6, "{name}");
        assert!(stat.mean <= det + 6.0 * stat.std(), "{name}");
    }
}

#[test]
fn optimization_is_deterministic() {
    // Same inputs, same result: no hidden RNG in the optimizer.
    let lib = Library::synthetic_90nm();
    let run = || {
        let mut n = benchmark("alu2", &lib).expect("known benchmark");
        let r = StatisticalGreedy::new(&lib, SizerConfig::with_alpha(3.0)).optimize(&mut n);
        (n.sizes(), r.final_moments())
    };
    let (s1, m1) = run();
    let (s2, m2) = run();
    assert_eq!(s1, s2);
    assert_eq!(m1, m2);
}

#[test]
fn area_recovery_composes_with_statistical_sizing() {
    let lib = Library::synthetic_90nm();
    let ssta = SstaConfig::default();
    let mut n = ripple_carry_adder(8, &lib);
    let sizer = MeanDelaySizer::new(&lib, &ssta);
    let baseline = sizer.minimize_delay(&mut n);

    let _ = StatisticalGreedy::new(&lib, SizerConfig::with_alpha(9.0).with_ssta(ssta.clone()))
        .optimize(&mut n);
    let area_before_recovery = n.total_area(&lib);

    // Recover area under a relaxed delay budget; sigma should not regress
    // catastrophically (downsizing is bounded by the delay constraint).
    let det = Dsta::new(&lib, &ssta).analyze(&n).max_delay();
    let sigma_before = FullSsta::new(&lib, &ssta)
        .analyze(&n)
        .circuit_moments()
        .std();
    let changed = sizer.recover_area(&mut n, det * 1.02);
    let area_after = n.total_area(&lib);
    assert!(area_after <= area_before_recovery);
    if changed > 0 {
        assert!(area_after < area_before_recovery);
    }
    let sigma_after = FullSsta::new(&lib, &ssta)
        .analyze(&n)
        .circuit_moments()
        .std();
    assert!(
        sigma_after < sigma_before * 2.0,
        "recovery must not destroy the sigma win"
    );
    let _ = baseline;
}
