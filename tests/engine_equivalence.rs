//! Cross-engine equivalence: the unified `TimingEngine` trait, the
//! `TimingSession` front-end, and the incremental re-analysis path must
//! all agree with direct from-scratch engine runs.

use vartol::liberty::Library;
use vartol::netlist::generators::{benchmark, ripple_carry_adder};
use vartol::netlist::GateId;
use vartol::ssta::{Dsta, EngineKind, Fassta, FullSsta, SstaConfig, TimingSession};

#[test]
fn session_reports_match_direct_engine_runs() {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let n = benchmark("alu2", &lib).expect("known benchmark");
    let full = FullSsta::new(&lib, &config).analyze(&n);
    let fast = Fassta::new(&lib, &config).analyze(&n);

    let session = TimingSession::new(&lib, config.clone(), n);
    // The session's incremental FULLSSTA state equals a direct run.
    assert_eq!(session.circuit_moments(), full.circuit_moments());
    assert_eq!(session.arrivals(), full.arrivals());
    assert_eq!(session.worst_output(), full.worst_output());
    // And it hands out any other engine's report on demand.
    let via_session = session.report(EngineKind::Fassta);
    assert_eq!(via_session.circuit_moments(), fast.circuit_moments());
    assert_eq!(via_session.arrivals(), fast.arrivals());
}

#[test]
fn incremental_reanalysis_equals_from_scratch_within_1e9() {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    for kind in [EngineKind::Dsta, EngineKind::Fassta, EngineKind::FullSsta] {
        let n = ripple_carry_adder(8, &lib);
        let gates: Vec<GateId> = n.gate_ids().collect();
        let mut session = TimingSession::with_kind(&lib, config.clone(), n, kind);
        for (step, &g) in gates.iter().step_by(7).enumerate() {
            session.resize(g, 1 + step % 4);
            let incremental = session.refresh();
            let scratch = session.report(kind).circuit_moments();
            assert!(
                (incremental.mean - scratch.mean).abs() < 1e-9
                    && (incremental.var - scratch.var).abs() < 1e-9,
                "{kind} step {step}: incremental {incremental} vs scratch {scratch}"
            );
        }
    }
}

#[test]
fn trait_objects_unify_all_engines() {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let n = ripple_carry_adder(4, &lib);
    let mut means = Vec::new();
    for kind in EngineKind::ALL {
        let engine = kind.engine(&lib, &config);
        let report = engine.analyze(&n);
        assert_eq!(report.kind(), kind);
        means.push(report.circuit_moments().mean);
    }
    // All four engines see the same circuit: means within 10% of FULLSSTA.
    let reference = means[2]; // EngineKind::ALL[2] == FullSsta
    for (kind, mean) in EngineKind::ALL.iter().zip(&means) {
        assert!(
            (mean - reference).abs() / reference < 0.10,
            "{kind}: {mean} vs reference {reference}"
        );
    }
}

#[test]
fn deterministic_engine_detailed_and_unified_views_agree() {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let n = benchmark("c432", &lib).expect("known benchmark");
    let engine = Dsta::new(&lib, &config);
    let detailed = engine.detailed(&n);
    let unified = engine.analyze(&n);
    assert_eq!(unified.max_delay(), detailed.max_delay());
    assert_eq!(unified.worst_output(), detailed.worst_output());
}

#[test]
fn all_engines_are_coherent_under_a_correlated_model() {
    // Under a die-to-die source: DSTA becomes a corner sweep (pure
    // global spread), FASSTA and FULLSSTA condition, Monte Carlo
    // samples per die — their circuit statistics must line up.
    use vartol::ssta::{MonteCarloTimer, VariationModel};
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default().with_model(VariationModel::die_to_die(0.6));
    let n = ripple_carry_adder(8, &lib);

    let det = Dsta::new(&lib, &config).analyze(&n).circuit_moments();
    let fast = Fassta::new(&lib, &config).analyze(&n).circuit_moments();
    let full = FullSsta::new(&lib, &config).analyze(&n).circuit_moments();
    let mc = MonteCarloTimer::new(&lib, &config)
        .with_seed(31)
        .sample_parallel(&n, 20_000)
        .moments();

    // DSTA's variance is exactly the die-to-die corner spread: nonzero,
    // but below the statistical engines' (which add residual variance).
    assert!(det.var > 0.0, "corner sweep must spread the nominal path");
    assert!(det.std() < full.std());

    for (name, m) in [("dsta", det), ("fassta", fast), ("fullssta", full)] {
        assert!(
            (m.mean - mc.mean).abs() / mc.mean < 0.05,
            "{name} mean {} vs MC {}",
            m.mean,
            mc.mean
        );
    }
    for (name, m) in [("fassta", fast), ("fullssta", full)] {
        assert!(
            (m.std() - mc.std()).abs() / mc.std() < 0.10,
            "{name} sigma {} vs MC {}",
            m.std(),
            mc.std()
        );
    }
}
