//! The sequential timing subsystem's determinism contract, end to end.
//!
//! * Per-path-group setup slack on an ISCAS-89 circuit loaded from
//!   `data/` is **bit-identical at every pool width** for all four
//!   engines — the width is a throughput knob, never an answer knob
//!   (CI re-runs this suite at the built-in 1/2/8 widths plus a
//!   16-wide pool via `VARTOL_SIZER_THREADS`).
//! * A warm workspace — one that has already analyzed, resized, and
//!   re-clocked — answers sequential queries byte-equal to a fresh
//!   workspace at the same sizes and clock.
//! * `SetClock` is exact: moving the period by Δ moves every reg→reg
//!   slack by Δ (same uncertainty), because the clock enters the slack
//!   as a pure budget offset.
//! * The serve layer preserves all of it: `RegisterSequential` +
//!   `SetClock` + `GroupSlack`/`Wns`/`Tns` return identical payloads
//!   at every shard count, warm (cached) answers byte-equal cold ones.

use vartol::liberty::Library;
use vartol::netlist::iscas::parse_bench;
use vartol::ssta::EngineKind;
use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};
use vartol_serve::{ServeConfig, ServeRequest, ServeResponse, Service};

/// The compared pool widths: 1 (serial reference), 2, 8, plus any extra
/// width from `VARTOL_SIZER_THREADS` (the same knob the other
/// determinism suites use for the 16-wide CI rows).
fn widths() -> Vec<usize> {
    let mut widths = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("VARTOL_SIZER_THREADS") {
        widths.push(
            extra
                .parse()
                .expect("VARTOL_SIZER_THREADS must be a thread count"),
        );
    }
    widths
}

fn bench_text(name: &str) -> String {
    let path = format!("{}/data/{name}.bench", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// A workspace holding the two shipped sequential `.bench` circuits
/// plus the sequential generator preset, all clocked.
fn sequential_workspace(threads: usize) -> Workspace {
    let mut ws = Workspace::new(
        Library::synthetic_90nm(),
        WorkspaceConfig::default()
            .with_threads(threads)
            .with_mc_samples(400)
            .with_mc_seed(0xDA7E_2005),
    );
    for name in ["s27", "s344_like"] {
        let netlist = parse_bench(&bench_text(name), name).expect("shipped bench parses");
        assert!(netlist.is_sequential(), "{name} must carry registers");
        ws.register(name, netlist).expect("registers");
    }
    ws.register_preset("pipeline_adder_16")
        .expect("known preset");
    for (circuit, period) in [
        ("s27", 600.0),
        ("s344_like", 500.0),
        ("pipeline_adder_16", 700.0),
    ] {
        let response = ws.query(Request::SetClock {
            circuit: circuit.into(),
            period,
            uncertainty: 25.0,
        });
        assert!(
            matches!(response.answer, Answer::ClockSet { .. }),
            "{circuit}: {:?}",
            response.answer
        );
    }
    ws
}

/// Every sequential query on every circuit under every engine.
fn sequential_batch() -> Vec<Request> {
    let mut requests = Vec::new();
    for circuit in ["s27", "s344_like", "pipeline_adder_16"] {
        for kind in EngineKind::ALL {
            requests.push(Request::GroupSlack {
                circuit: circuit.into(),
                kind,
            });
            requests.push(Request::Wns {
                circuit: circuit.into(),
                kind,
            });
            requests.push(Request::Tns {
                circuit: circuit.into(),
                kind,
            });
        }
    }
    requests
}

fn answers(ws: &mut Workspace, requests: &[Request]) -> Vec<Answer> {
    ws.submit(requests)
        .into_iter()
        .map(|r| {
            assert!(
                !matches!(r.answer, Answer::Error { .. }),
                "sequential query failed: {:?}",
                r.answer
            );
            r.answer
        })
        .collect()
}

/// Acceptance: group slacks from a `data/` circuit are bit-identical
/// at every pool width, for all four engines. `Answer` derives
/// `PartialEq` over raw `f64`s, so equality here is bitwise up to NaN
/// (and the batch asserts no errors, so no NaNs hide behind variants).
#[test]
fn group_slacks_are_bit_identical_at_every_pool_width() {
    let requests = sequential_batch();
    let reference = answers(&mut sequential_workspace(1), &requests);
    // The serial reference must actually cover registers: the first
    // group-slack answer is s27's, whose three clocked groups all
    // carry endpoints.
    let s27_rows = reference
        .iter()
        .find_map(|a| match a {
            Answer::GroupSlack { groups, .. } => Some(groups.clone()),
            _ => None,
        })
        .expect("batch contains group-slack answers");
    assert_eq!(s27_rows.len(), 4);
    assert!(s27_rows.iter().take(3).all(|g| g.endpoints > 0));
    for width in widths().into_iter().skip(1) {
        let wide = answers(&mut sequential_workspace(width), &requests);
        assert_eq!(
            reference, wide,
            "sequential answers diverged at pool width {width}"
        );
    }
}

/// Acceptance: a warm workspace (analyses ran, a gate was resized, the
/// clock was replaced) answers sequential queries exactly like a fresh
/// workspace brought to the same sizes and clock.
#[test]
fn warm_workspace_matches_a_fresh_one() {
    let mut warm = sequential_workspace(2);
    // Warm it up: full analyses, a resize, and a clock replacement.
    for kind in EngineKind::ALL {
        let _ = warm.query(Request::Analyze {
            circuit: "s344_like".into(),
            kind,
        });
    }
    warm.netlist("s344_like")
        .expect("registered")
        .gate_by_name("A0")
        .expect("generated gate A0");
    let resized = warm.query(Request::Resize {
        circuit: "s344_like".into(),
        gate: "A0".into(),
        size: 4,
    });
    assert!(
        !matches!(resized.answer, Answer::Error { .. }),
        "{:?}",
        resized.answer
    );
    let _ = warm.query(Request::SetClock {
        circuit: "s344_like".into(),
        period: 800.0,
        uncertainty: 10.0,
    });

    let mut fresh = sequential_workspace(2);
    let _ = fresh.query(Request::Resize {
        circuit: "s344_like".into(),
        gate: "A0".into(),
        size: 4,
    });
    let _ = fresh.query(Request::SetClock {
        circuit: "s344_like".into(),
        period: 800.0,
        uncertainty: 10.0,
    });

    let requests: Vec<Request> = EngineKind::ALL
        .into_iter()
        .flat_map(|kind| {
            [
                Request::GroupSlack {
                    circuit: "s344_like".into(),
                    kind,
                },
                Request::Wns {
                    circuit: "s344_like".into(),
                    kind,
                },
                Request::Tns {
                    circuit: "s344_like".into(),
                    kind,
                },
            ]
        })
        .collect();
    assert_eq!(
        answers(&mut warm, &requests),
        answers(&mut fresh, &requests),
        "warm sequential answers must equal a from-scratch workspace"
    );
}

/// Acceptance: the clock is a pure budget offset — replacing it moves
/// every clocked group's slack by exactly the budget delta.
#[test]
fn set_clock_shifts_clocked_slack_by_the_budget_delta() {
    let mut ws = sequential_workspace(1);
    let slack_at = |ws: &mut Workspace, period: f64, uncertainty: f64| -> Vec<(String, f64)> {
        let _ = ws.query(Request::SetClock {
            circuit: "s344_like".into(),
            period,
            uncertainty,
        });
        match ws
            .query(Request::GroupSlack {
                circuit: "s344_like".into(),
                kind: EngineKind::Dsta,
            })
            .answer
        {
            Answer::GroupSlack { groups, .. } => {
                groups.into_iter().map(|g| (g.group, g.wns)).collect()
            }
            other => panic!("unexpected answer {other:?}"),
        }
    };
    let before = slack_at(&mut ws, 500.0, 25.0);
    // Same uncertainty, period +250: budget moves by exactly +250.
    let after = slack_at(&mut ws, 750.0, 25.0);
    for ((group, wns_before), (group_after, wns_after)) in before.iter().zip(&after) {
        assert_eq!(group, group_after);
        assert!(
            (wns_after - wns_before - 250.0).abs() < 1e-9,
            "{group}: {wns_before} -> {wns_after}, want an exact +250 shift"
        );
    }
}

/// Acceptance: the wire layer preserves the whole contract — identical
/// sequential payloads at every shard count, and cached (warm) answers
/// byte-equal the computed (cold) ones.
#[test]
fn serve_answers_are_identical_at_every_shard_count() {
    let library = Library::synthetic_90nm();
    let run = |shards: usize| -> Vec<ServeResponse> {
        let service = Service::new(
            &library,
            ServeConfig::default()
                .with_shards(shards)
                .with_workspace(WorkspaceConfig::default().with_mc_samples(400)),
        );
        let mut payloads = Vec::new();
        for name in ["s27", "s344_like"] {
            let frames = service.call(ServeRequest::RegisterSequential {
                circuit: name.into(),
                edif: None,
                bench: Some(bench_text(name)),
            });
            match frames.first().map(|f| &f.payload) {
                Some(ServeResponse::Registered { registers, .. }) => {
                    assert!(*registers > 0, "{name} must report its registers");
                }
                other => panic!("{name}: registration failed: {other:?}"),
            }
            let frames = service.call(ServeRequest::SetClock {
                circuit: name.into(),
                period: 650.0,
                uncertainty: 15.0,
            });
            assert!(
                matches!(
                    frames.first().map(|f| &f.payload),
                    Some(ServeResponse::ClockSet { .. })
                ),
                "{name}: SetClock failed: {frames:?}"
            );
            for kind in EngineKind::ALL {
                for request in [
                    ServeRequest::GroupSlack {
                        circuit: name.into(),
                        kind,
                    },
                    ServeRequest::Wns {
                        circuit: name.into(),
                        kind,
                    },
                    ServeRequest::Tns {
                        circuit: name.into(),
                        kind,
                    },
                ] {
                    let cold = service.call(request.clone());
                    let warm = service.call(request);
                    assert_eq!(
                        cold.first().map(|f| &f.payload),
                        warm.first().map(|f| &f.payload),
                        "{name}: cached payload diverged from the computed one"
                    );
                    payloads.push(cold.into_iter().next().expect("one frame").payload);
                }
            }
        }
        payloads
    };
    let reference = run(1);
    assert!(reference
        .iter()
        .all(|p| !matches!(p, ServeResponse::Error { .. })));
    for shards in [2, 4] {
        assert_eq!(
            reference,
            run(shards),
            "serve sequential payloads diverged at {shards} shards"
        );
    }
}
