//! The parallel Monte-Carlo determinism contract, end to end: the same
//! seed must produce an **identical** `TimingReport` — raw samples,
//! per-node moments, circuit moments, and the empirical PDF — no matter
//! how many worker threads sample it.
//!
//! Thread counts 1, 2, and 8 are always compared; CI additionally drives
//! an explicit pool width through the `VARTOL_MC_THREADS` environment
//! variable (run with `--test-threads=1` there so the pool, not the test
//! harness, owns the parallelism).

use vartol::liberty::Library;
use vartol::netlist::generators::{benchmark, ripple_carry_adder};
use vartol::netlist::Netlist;
use vartol::ssta::{MonteCarloTimer, SstaConfig, TimingEngine, MC_CHUNK_SAMPLES};

/// Thread counts under test: 1, 2, 8, plus any `VARTOL_MC_THREADS`
/// width from the environment (deduplicated). An unparseable value is a
/// misconfigured CI step and fails loudly rather than passing as a no-op.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Ok(raw) = std::env::var("VARTOL_MC_THREADS") {
        let extra: usize = raw
            .parse()
            .unwrap_or_else(|_| panic!("VARTOL_MC_THREADS must be a thread count, got `{raw}`"));
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn assert_reports_thread_invariant(netlist: &Netlist, samples: usize, seed: u64) {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let timer = MonteCarloTimer::new(&lib, &config)
        .with_samples(samples)
        .with_seed(seed);

    let reference = TimingEngine::analyze(&timer.with_threads(1), netlist);
    assert_eq!(
        reference.samples().map(<[f64]>::len),
        Some(samples),
        "sample budget honored"
    );
    for threads in thread_counts() {
        let report = TimingEngine::analyze(&timer.with_threads(threads), netlist);
        // Full structural equality: samples, arrivals, circuit moments,
        // PDF, worst output, electrical snapshot.
        assert_eq!(
            report,
            reference,
            "{threads}-thread report differs on {}",
            netlist.name()
        );
    }
}

#[test]
fn suite_circuit_reports_identical_across_thread_counts() {
    let lib = Library::synthetic_90nm();
    let n = benchmark("c880", &lib).expect("known benchmark");
    // A few full chunks plus a ragged tail chunk.
    assert_reports_thread_invariant(&n, 2 * MC_CHUNK_SAMPLES + 191, 42);
}

#[test]
fn generator_circuit_reports_identical_across_thread_counts() {
    let lib = Library::synthetic_90nm();
    let n = ripple_carry_adder(16, &lib);
    assert_reports_thread_invariant(&n, 3 * MC_CHUNK_SAMPLES, 7);
}

#[test]
fn explicit_sampling_entry_points_are_thread_invariant() {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let n = benchmark("c432", &lib).expect("known benchmark");
    let timer = MonteCarloTimer::new(&lib, &config).with_seed(11);
    let samples = MC_CHUNK_SAMPLES + 57;

    let reference = timer
        .with_threads(1)
        .sample_parallel_with_arrivals(&n, samples);
    for threads in thread_counts() {
        let got = timer
            .with_threads(threads)
            .sample_parallel_with_arrivals(&n, samples);
        assert_eq!(got, reference, "{threads} threads");
    }
    // The arrival-free path draws the identical delay stream.
    let plain = timer.with_threads(8).sample_parallel(&n, samples);
    assert_eq!(plain.samples(), reference.samples());
    assert_eq!(plain.moments(), reference.moments());
}

#[test]
fn seed_changes_the_stream_thread_count_does_not() {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let n = ripple_carry_adder(4, &lib);
    let timer = MonteCarloTimer::new(&lib, &config);
    let a = timer.with_seed(1).sample_parallel(&n, 600);
    let b = timer.with_seed(2).sample_parallel(&n, 600);
    assert_ne!(a.samples(), b.samples(), "different seeds, different draws");
    let a8 = timer.with_seed(1).with_threads(8).sample_parallel(&n, 600);
    assert_eq!(a, a8, "thread count is purely a speed knob");
}
