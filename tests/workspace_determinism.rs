//! The `Workspace` concurrency contract.
//!
//! A mixed batch — all four engine kinds, a slack query, arrival and
//! criticality lookups, a Monte-Carlo yield, a what-if resize, and a
//! full sizing run — over several circuits must return **bit-identical
//! answers for every pool width**, because per-circuit processing is
//! sequential (in submission order) and circuits fan out over the
//! index-ordered `ScopedPool`. CI runs this suite with
//! `--test-threads=1` so the pool, not the test harness, owns all
//! parallelism; `VARTOL_SIZER_THREADS` widens the compared set beyond
//! the built-in 1/2/8.
//!
//! The second half covers fault isolation: a request that panics deep
//! inside an engine must be contained to its own `Answer::Error`, with
//! the circuit's session rebuilt and every other answer unaffected.

use vartol::core::SizerConfig;
use vartol::liberty::Library;
use vartol::ssta::{EngineKind, OptimizerKind, SstaConfig};
use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};

/// The compared pool widths: 1 (serial reference), 2, 8, plus any extra
/// width from `VARTOL_SIZER_THREADS` (the same knob CI uses for the
/// sizing determinism suite).
fn widths() -> Vec<usize> {
    let mut widths = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("VARTOL_SIZER_THREADS") {
        widths.push(
            extra
                .parse()
                .expect("VARTOL_SIZER_THREADS must be a thread count"),
        );
    }
    widths
}

/// Three small circuits spanning a `.bench` file and two generator
/// families.
fn build_workspace(threads: usize) -> Workspace {
    let mut ws = Workspace::new(
        Library::synthetic_90nm(),
        WorkspaceConfig::default()
            .with_threads(threads)
            .with_mc_samples(600)
            .with_mc_seed(0xDA7E_2005),
    );
    let c17 = concat!(env!("CARGO_MANIFEST_DIR"), "/data/c17.bench");
    ws.register_bench_file(c17)
        .expect("c17 ships with the repo");
    ws.register_preset("adder_8").expect("known preset");
    ws.register_preset("cmp_8").expect("known preset");
    assert_eq!(ws.len(), 3);
    ws
}

/// The mixed batch of the issue's acceptance criteria: every engine
/// kind, slack, arrival, criticality, yield, a resize, and one sizing
/// run, spread over all three circuits — including several requests on
/// one circuit to pin the in-order-per-circuit guarantee.
fn mixed_batch() -> Vec<Request> {
    // A deterministic sizable gate name from the adder generator.
    let lib = Library::synthetic_90nm();
    let adder = vartol::netlist::generators::preset("adder_8", &lib).expect("known preset");
    let adder_gate = adder
        .gate_ids()
        .next()
        .map(|id| adder.gate(id).name().to_owned())
        .expect("adders have gates");

    let mut requests = Vec::new();
    for circuit in ["c17", "adder_8", "cmp_8"] {
        for kind in [
            EngineKind::Dsta,
            EngineKind::Fassta,
            EngineKind::FullSsta,
            EngineKind::MonteCarlo,
        ] {
            requests.push(Request::Analyze {
                circuit: circuit.into(),
                kind,
            });
        }
        requests.push(Request::Slack {
            circuit: circuit.into(),
            t_req: 1.0e4,
            alpha: 3.0,
        });
    }
    requests.push(Request::Arrival {
        circuit: "c17".into(),
        node: "G22".into(),
    });
    requests.push(Request::Criticality {
        circuit: "adder_8".into(),
        top: 5,
    });
    requests.push(Request::Yield {
        circuit: "cmp_8".into(),
        deadline: 3.0e3,
    });
    // A mutation mid-batch: later requests on adder_8 must observe it
    // identically at every width.
    requests.push(Request::Resize {
        circuit: "adder_8".into(),
        gate: adder_gate,
        size: 3,
    });
    requests.push(Request::Analyze {
        circuit: "adder_8".into(),
        kind: EngineKind::FullSsta,
    });
    // One full sizing run rides along (threads pinned so the *sizer's*
    // inner pool is not part of what this test varies — its own
    // determinism is covered by tests/sizing_determinism.rs).
    requests.push(Request::Size {
        circuit: "c17".into(),
        config: SizerConfig::with_alpha(3.0).with_threads(1),
        optimizer: OptimizerKind::Greedy,
        yield_deadline: None,
    });
    requests.push(Request::Analyze {
        circuit: "c17".into(),
        kind: EngineKind::FullSsta,
    });
    requests
}

#[test]
fn mixed_batch_answers_are_bit_identical_across_pool_widths() {
    let requests = mixed_batch();
    let reference: Vec<Answer> = build_workspace(1)
        .submit(&requests)
        .into_iter()
        .map(|r| r.answer)
        .collect();

    // The batch must have exercised every answer shape, with no errors.
    assert!(
        reference.iter().all(|a| !matches!(a, Answer::Error { .. })),
        "{reference:?}"
    );
    for probe in [
        "Analysis",
        "Slack",
        "Arrival",
        "Criticality",
        "Yield",
        "Resized",
        "Sized",
    ] {
        assert!(
            reference
                .iter()
                .any(|a| format!("{a:?}").starts_with(probe)),
            "batch exercises {probe}"
        );
    }

    for threads in widths().into_iter().skip(1) {
        let answers: Vec<Answer> = build_workspace(threads)
            .submit(&requests)
            .into_iter()
            .map(|r| r.answer)
            .collect();
        assert_eq!(
            reference, answers,
            "{threads}-thread pool diverged from the serial reference"
        );
        // PartialEq on f64 payloads is exact, but make the bit-for-bit
        // claim explicit for a couple of headline numbers.
        for (a, b) in reference.iter().zip(&answers) {
            if let (Answer::Analysis { moments: ma, .. }, Answer::Analysis { moments: mb, .. }) =
                (a, b)
            {
                assert_eq!(ma.mean.to_bits(), mb.mean.to_bits());
                assert_eq!(ma.var.to_bits(), mb.var.to_bits());
            }
            if let (Answer::Yield { fraction: fa }, Answer::Yield { fraction: fb }) = (a, b) {
                assert_eq!(fa.to_bits(), fb.to_bits());
            }
        }
    }
}

#[test]
fn repeated_batches_on_one_workspace_stay_deterministic() {
    // The cached sessions persist across submissions; a second identical
    // read-only batch must reproduce the first one's answers exactly.
    let mut ws = build_workspace(8);
    let reads: Vec<Request> = mixed_batch()
        .into_iter()
        .filter(|r| !matches!(r, Request::Resize { .. } | Request::Size { .. }))
        .collect();
    let first: Vec<Answer> = ws.submit(&reads).into_iter().map(|r| r.answer).collect();
    let second: Vec<Answer> = ws.submit(&reads).into_iter().map(|r| r.answer).collect();
    assert_eq!(first, second);
}

#[test]
fn panicking_request_is_isolated_to_its_answer() {
    // `pdf_samples: 0` passes the workspace's surface validation (it is
    // a deep engine precondition, reachable because SizerConfig's fields
    // are public) and panics inside FULLSSTA — the exact class of fault
    // the catch-unwind + session-rebuild path exists for.
    let poisoned = Request::Size {
        circuit: "adder_8".into(),
        config: SizerConfig::with_alpha(3.0)
            .with_threads(1)
            .with_ssta(SstaConfig {
                pdf_samples: 0,
                ..SstaConfig::default()
            }),
        optimizer: OptimizerKind::Greedy,
        yield_deadline: None,
    };
    let batch = [
        Request::Analyze {
            circuit: "c17".into(),
            kind: EngineKind::FullSsta,
        },
        poisoned,
        Request::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        },
        Request::Analyze {
            circuit: "cmp_8".into(),
            kind: EngineKind::Fassta,
        },
    ];

    let mut ws = build_workspace(2);
    let baseline_sizes = ws.netlist("adder_8").expect("registered").sizes();
    let answers = ws.submit(&batch);

    let Answer::Error { code, message } = &answers[1].answer else {
        panic!("poisoned request must error, got {:?}", answers[1].answer);
    };
    assert_eq!(*code, vartol::workspace::ErrorCode::Panic);
    assert!(message.contains("panicked"), "{message}");
    assert!(message.contains("recovered"), "{message}");

    // Every other request answered normally — including the one on the
    // same circuit *after* the panic.
    for (i, response) in answers.iter().enumerate() {
        if i != 1 {
            assert!(
                matches!(response.answer, Answer::Analysis { .. }),
                "request {i}: {:?}",
                response.answer
            );
        }
    }

    // The panicking sizing run must not have half-committed anything.
    assert_eq!(
        ws.netlist("adder_8").expect("registered").sizes(),
        baseline_sizes,
        "panic rollback restores the pre-request sizes"
    );

    // And the recovered session still serves correct incremental state:
    // its answers match a fresh workspace bit for bit.
    let check = Request::Analyze {
        circuit: "adder_8".into(),
        kind: EngineKind::FullSsta,
    };
    let recovered = ws.query(check.clone()).answer;
    let fresh = build_workspace(1).query(check).answer;
    assert_eq!(recovered, fresh);
}
