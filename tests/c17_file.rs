//! End-to-end test on a *real* ISCAS-85 netlist file: c17, the smallest
//! benchmark of the suite, shipped in `data/c17.bench`. Exercises the
//! file-based workflow users with original ISCAS netlists would follow.

use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::iscas::{parse_bench, write_bench};
use vartol::netlist::sim::simulate;
use vartol::ssta::{Criticality, FullSsta, SstaConfig};

fn load_c17() -> vartol::netlist::Netlist {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/c17.bench");
    let text = std::fs::read_to_string(path).expect("data/c17.bench ships with the repo");
    parse_bench(&text, "c17").expect("c17 parses")
}

#[test]
fn c17_structure_matches_the_iscas_description() {
    let n = load_c17();
    assert_eq!(n.input_count(), 5);
    assert_eq!(n.output_count(), 2);
    assert_eq!(n.gate_count(), 6, "c17 is six NAND2 gates");
    assert_eq!(n.depth(), 3);
    assert!(n.check_invariants().is_ok());
}

#[test]
fn c17_function_spot_checks() {
    // c17: G22 = !(G10 & G16), with G10 = !(G1&G3), G11 = !(G3&G6),
    // G16 = !(G2&G11), G19 = !(G11&G7), G23 = !(G16&G19).
    let n = load_c17();
    let golden = |v: [bool; 5]| -> [bool; 2] {
        let (g1, g2, g3, g6, g7) = (v[0], v[1], v[2], v[3], v[4]);
        let g10 = !(g1 && g3);
        let g11 = !(g3 && g6);
        let g16 = !(g2 && g11);
        let g19 = !(g11 && g7);
        [!(g10 && g16), !(g16 && g19)]
    };
    for pattern in 0u32..32 {
        let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
        let out = simulate(&n, &bits);
        let want = golden([bits[0], bits[1], bits[2], bits[3], bits[4]]);
        assert_eq!(out, want, "pattern {pattern:05b}");
    }
}

#[test]
fn c17_full_statistical_flow() {
    let lib = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let mut n = load_c17();

    let before = FullSsta::new(&lib, &config).analyze(&n);
    let crit = Criticality::compute(&n, &lib, &config, before.arrivals());
    // Some gate must be strongly critical in such a tiny circuit.
    assert!(n.gate_ids().any(|id| crit.of(id) > 0.5));

    let report = StatisticalGreedy::new(&lib, SizerConfig::with_alpha(9.0)).optimize(&mut n);
    assert!(report.final_moments().std() <= report.initial_moments().std());

    // Round-trip the optimized circuit back to .bench (sizes are not part
    // of the format, but topology survives).
    let text = write_bench(&n);
    let again = parse_bench(&text, "c17rt").expect("round trip");
    assert_eq!(again.gate_count(), 6);
}
