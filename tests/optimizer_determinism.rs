//! The global-optimizer determinism contract.
//!
//! Every optimizer behind the `Sizer` trait — greedy, mean-delay,
//! Lagrangian relaxation, and multi-start annealing — scores, probes,
//! or walks on session forks over a `ScopedPool`; the contract is that
//! the final sizes, moments, area, and the whole pass history are
//! **bit-identical at every pool width**. CI runs this suite with
//! `--test-threads=1` so the pool, not the test harness, owns all
//! parallelism; `VARTOL_SIZER_THREADS` widens the compared set beyond
//! the built-in 1/2/8/16.
//!
//! Two further contracts ride along:
//!
//! * **Restart chunking.** Annealing restarts are keyed by
//!   `restart_offset + r`, so a 4-restart run must equal the
//!   concatenation of two 2-restart runs at offsets 0 and 2 — the
//!   distribution story for the search.
//! * **No drift.** Every optimizer's reported final moments must equal
//!   a from-scratch conditioned FULLSSTA analysis of the final netlist,
//!   bit for bit — the incremental repairs inside the optimizers may
//!   not leave the session in a state a clean rebuild wouldn't reach.

use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::preset;
use vartol::netlist::iscas::parse_bench;
use vartol::netlist::Netlist;
use vartol::ssta::{
    AnnealingConfig, AnnealingSizer, FullSsta, LagrangianConfig, LagrangianSizer, Objective, Sizer,
    SizingOutcome, SstaConfig, VariationModel,
};

fn data_bench(name: &str) -> Netlist {
    let path = format!("{}/data/{name}.bench", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_bench(&text, name).expect("shipped bench parses")
}

/// The compared pool widths: 1 (serial reference), 2, 8, 16, plus any
/// extra width from `VARTOL_SIZER_THREADS` (the same knob CI uses).
fn widths() -> Vec<usize> {
    let mut widths = vec![1, 2, 8, 16];
    if let Ok(extra) = std::env::var("VARTOL_SIZER_THREADS") {
        widths.push(
            extra
                .parse()
                .expect("VARTOL_SIZER_THREADS must be a thread count"),
        );
    }
    widths
}

/// The conditioned engine configuration every run here uses: a 60%
/// die-to-die variation share, so the revalidation leg exercises the
/// Gauss–Hermite conditioned FULLSSTA path, not just the independent
/// one.
fn ssta_at(threads: usize) -> SstaConfig {
    SstaConfig::default()
        .with_model(VariationModel::die_to_die(0.6))
        .with_threads(threads)
}

/// Light but non-trivial configurations: enough iterations/moves that
/// the parallel stages (gradient probes, restarts, candidate scoring)
/// all run with real work, small enough for CI.
fn lagrangian_at(threads: usize) -> LagrangianSizer {
    let config = LagrangianConfig::default()
        .with_max_iters(6)
        .with_ssta(ssta_at(threads));
    LagrangianSizer::new(Library::synthetic_90nm(), config)
}

fn annealing_at(threads: usize) -> AnnealingSizer {
    let config = AnnealingConfig::default()
        .with_restarts(4)
        .with_moves(60)
        .with_ssta(ssta_at(threads));
    AnnealingSizer::new(Library::synthetic_90nm(), config)
}

/// Runs one sizer over a fresh copy and returns the outcome plus the
/// final size vector.
fn run_sizer(sizer: &dyn Sizer, base: &Netlist) -> (SizingOutcome, Vec<usize>) {
    let mut netlist = base.clone();
    let outcome = sizer.size_clocked(&mut netlist);
    let sizes = netlist.sizes();
    (outcome, sizes)
}

/// Asserts two outcomes are bit-identical (moments compared on their
/// bit patterns — determinism means *equal floats*, not close ones).
fn assert_outcomes_identical(
    tag: &str,
    a: &(SizingOutcome, Vec<usize>),
    b: &(SizingOutcome, Vec<usize>),
) {
    assert_eq!(a.1, b.1, "{tag}: final sizes diverged");
    let (a, b) = (&a.0, &b.0);
    assert_eq!(
        a.final_moments.mean.to_bits(),
        b.final_moments.mean.to_bits(),
        "{tag}: final mean diverged"
    );
    assert_eq!(
        a.final_moments.var.to_bits(),
        b.final_moments.var.to_bits(),
        "{tag}: final variance diverged"
    );
    assert_eq!(
        a.final_area.to_bits(),
        b.final_area.to_bits(),
        "{tag}: final area diverged"
    );
    assert_eq!(
        a.passes.len(),
        b.passes.len(),
        "{tag}: pass counts diverged"
    );
    for (pa, pb) in a.passes.iter().zip(&b.passes) {
        assert_eq!(pa.pass, pb.pass, "{tag}: pass numbering diverged");
        assert_eq!(
            pa.objective.to_bits(),
            pb.objective.to_bits(),
            "{tag}: pass {} objective diverged",
            pa.pass
        );
        assert_eq!(
            pa.area.to_bits(),
            pb.area.to_bits(),
            "{tag}: pass {} area diverged",
            pa.pass
        );
        assert_eq!(
            pa.resized, pb.resized,
            "{tag}: pass {} resized diverged",
            pa.pass
        );
    }
}

/// Re-analyzes the final netlist from scratch under the same
/// conditioned configuration and asserts the optimizer's reported final
/// moments match bit for bit.
fn assert_revalidates(tag: &str, base: &Netlist, sizes: &[usize], outcome: &SizingOutcome) {
    let library = Library::synthetic_90nm();
    let mut final_netlist = base.clone();
    final_netlist.restore_sizes(sizes);
    let marked = if final_netlist.is_sequential() {
        final_netlist.endpoint_marked()
    } else {
        final_netlist
    };
    let config = ssta_at(1);
    let fresh = FullSsta::new(&library, &config)
        .analyze(&marked)
        .circuit_moments();
    assert_eq!(
        fresh.mean.to_bits(),
        outcome.final_moments.mean.to_bits(),
        "{tag}: reported mean drifted from a from-scratch FULLSSTA rebuild"
    );
    assert_eq!(
        fresh.var.to_bits(),
        outcome.final_moments.var.to_bits(),
        "{tag}: reported variance drifted from a from-scratch FULLSSTA rebuild"
    );
}

/// The circuit matrix: a combinational preset, a file-shipped
/// combinational circuit, and the two ISCAS-89-shaped sequential
/// stand-ins (small and mid) so `size_clocked`'s endpoint-marked path
/// is covered at every width.
fn matrix() -> Vec<Netlist> {
    let library = Library::synthetic_90nm();
    vec![
        preset("cmp_8", &library).expect("known preset"),
        data_bench("c17"),
        data_bench("s27"),
        data_bench("s386_like"),
    ]
}

#[test]
fn greedy_is_bit_identical_at_every_width() {
    for base in matrix() {
        let reference = run_sizer(
            &StatisticalGreedy::new(
                Library::synthetic_90nm(),
                SizerConfig::with_alpha(3.0).with_ssta(ssta_at(1)),
            ),
            &base,
        );
        assert_revalidates(base.name(), &base, &reference.1, &reference.0);
        for threads in widths() {
            let candidate = run_sizer(
                &StatisticalGreedy::new(
                    Library::synthetic_90nm(),
                    SizerConfig::with_alpha(3.0).with_ssta(ssta_at(threads)),
                ),
                &base,
            );
            assert_outcomes_identical(
                &format!("greedy/{}/{threads}t", base.name()),
                &reference,
                &candidate,
            );
        }
    }
}

#[test]
fn lagrangian_is_bit_identical_at_every_width() {
    for base in matrix() {
        let reference = run_sizer(&lagrangian_at(1), &base);
        assert_revalidates(base.name(), &base, &reference.1, &reference.0);
        for threads in widths() {
            let candidate = run_sizer(&lagrangian_at(threads), &base);
            assert_outcomes_identical(
                &format!("lagrangian/{}/{threads}t", base.name()),
                &reference,
                &candidate,
            );
        }
    }
}

#[test]
fn annealing_is_bit_identical_at_every_width() {
    for base in matrix() {
        let reference = run_sizer(&annealing_at(1), &base);
        assert_revalidates(base.name(), &base, &reference.1, &reference.0);
        for threads in widths() {
            let candidate = run_sizer(&annealing_at(threads), &base);
            assert_outcomes_identical(
                &format!("annealing/{}/{threads}t", base.name()),
                &reference,
                &candidate,
            );
        }
    }
}

#[test]
fn yield_objective_is_bit_identical_at_every_width() {
    // One representative per optimizer family on the mid-size
    // sequential circuit, optimizing P(meet deadline) instead of μ+3σ.
    let base = data_bench("s386_like");
    let deadline = {
        let library = Library::synthetic_90nm();
        let m = FullSsta::new(&library, &ssta_at(1))
            .analyze(&base.endpoint_marked())
            .circuit_moments();
        m.mean + m.std()
    };
    let lagr = |threads: usize| {
        LagrangianSizer::new(
            Library::synthetic_90nm(),
            LagrangianConfig::default()
                .with_objective(Objective::Yield { deadline })
                .with_max_iters(4)
                .with_ssta(ssta_at(threads)),
        )
    };
    let anneal = |threads: usize| {
        AnnealingSizer::new(
            Library::synthetic_90nm(),
            AnnealingConfig::default()
                .with_objective(Objective::Yield { deadline })
                .with_restarts(2)
                .with_moves(40)
                .with_ssta(ssta_at(threads)),
        )
    };
    let lagr_reference = run_sizer(&lagr(1), &base);
    let anneal_reference = run_sizer(&anneal(1), &base);
    assert_revalidates(
        "lagrangian_yield",
        &base,
        &lagr_reference.1,
        &lagr_reference.0,
    );
    assert_revalidates(
        "annealing_yield",
        &base,
        &anneal_reference.1,
        &anneal_reference.0,
    );
    for threads in widths() {
        assert_outcomes_identical(
            &format!("lagrangian_yield/{threads}t"),
            &lagr_reference,
            &run_sizer(&lagr(threads), &base),
        );
        assert_outcomes_identical(
            &format!("annealing_yield/{threads}t"),
            &anneal_reference,
            &run_sizer(&anneal(threads), &base),
        );
    }
}

#[test]
fn annealing_restarts_are_chunk_invariant() {
    // A 4-restart run must decompose into two 2-restart runs at
    // offsets 0 and 2: identical per-restart pass rows, and a final
    // netlist equal to the better chunk's (energy-min, earliest-restart
    // tie-break — recomputed here from the recorded rows).
    let base = data_bench("s27");
    let config = |restarts: usize, offset: u64, threads: usize| {
        AnnealingConfig::default()
            .with_restarts(restarts)
            .with_moves(60)
            .with_restart_offset(offset)
            .with_ssta(ssta_at(threads))
    };
    for threads in [1, 8] {
        let full = run_sizer(
            &AnnealingSizer::new(Library::synthetic_90nm(), config(4, 0, threads)),
            &base,
        );
        let lo = run_sizer(
            &AnnealingSizer::new(Library::synthetic_90nm(), config(2, 0, threads)),
            &base,
        );
        let hi = run_sizer(
            &AnnealingSizer::new(Library::synthetic_90nm(), config(2, 2, threads)),
            &base,
        );
        // Pass rows (one per restart, numbered by offset + r) must
        // concatenate exactly.
        let mut chunked: Vec<_> = lo.0.passes.iter().chain(&hi.0.passes).collect();
        chunked.sort_by_key(|p| p.pass);
        assert_eq!(
            full.0.passes.len(),
            chunked.len(),
            "{threads}t: restart count"
        );
        for (f, c) in full.0.passes.iter().zip(chunked) {
            assert_eq!(f.pass, c.pass, "{threads}t: restart numbering");
            assert_eq!(
                f.objective.to_bits(),
                c.objective.to_bits(),
                "{threads}t: restart {} objective diverged across chunking",
                f.pass
            );
            assert_eq!(
                f.area.to_bits(),
                c.area.to_bits(),
                "{threads}t: restart {} area diverged across chunking",
                f.pass
            );
            assert_eq!(
                f.resized, c.resized,
                "{threads}t: restart {} resized",
                f.pass
            );
        }
        // The full run's winner must be one of the chunk winners: its
        // final sizes equal the lo-chunk's or the hi-chunk's.
        assert!(
            full.1 == lo.1 || full.1 == hi.1,
            "{threads}t: the 4-restart winner matches neither 2-restart chunk winner"
        );
    }
}
