//! Offline shim for `criterion`: runs each benchmark closure for a fixed
//! wall-clock budget and prints a plain-text median time per iteration.
//! No statistics engine, plots, or baselines — just honest timings with
//! the upstream API shape so benches compile and run offline.
//!
//! Like upstream, a positional command-line argument acts as a substring
//! filter over `group/benchmark` ids (`cargo bench --bench ssta_engines
//! -- mc_parallel` runs only the `mc_parallel` group), and
//! `BenchmarkGroup::sample_size` bounds the minimum iteration count.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: format!("{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Drives timing of one benchmark body.
pub struct Bencher {
    measurement: Duration,
    min_samples: usize,
    /// Median nanoseconds per iteration, recorded by `iter*`.
    result_ns: f64,
    iterations: u64,
}

impl Bencher {
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // Warm up briefly, then estimate iteration cost and collect
        // timed passes until the measurement budget is spent.
        let mut samples: Vec<f64> = Vec::new();
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measurement || samples.len() < self.min_samples {
            let d = timed_pass();
            samples.push(d.as_nanos() as f64);
            iters += 1;
            if samples.len() >= 1_000_000 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        self.result_ns = samples[samples.len() / 2];
        self.iterations = iters;
    }

    /// Times a closure per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        self.run(|| {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        });
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of related benchmarks. Measurement settings are
/// group-local (upstream semantics): they start from the driver's
/// defaults and never leak into later groups.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target (and minimum) sample count per benchmark in this
    /// group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement time budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.criterion.matches(&self.name, id) {
            return;
        }
        let mut b = Bencher {
            measurement: self.measurement,
            min_samples: self.sample_size,
            result_ns: 0.0,
            iterations: 0,
        };
        f(&mut b);
        println!(
            "{:<50} {:>12} /iter   ({} iterations)",
            format!("{}/{}", self.name, id),
            human_time(b.result_ns),
            b.iterations
        );
    }

    /// Benchmarks a closure.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, f);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The shim's benchmark driver.
pub struct Criterion {
    measurement: Duration,
    sample_size: usize,
    /// Substring filter over `group/benchmark` ids, from the first
    /// positional CLI argument (cargo's own `--bench`-style flags are
    /// skipped).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(500),
            sample_size: 10,
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    fn matches(&self, group: &str, id: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|f| format!("{group}/{id}").contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        let (measurement, sample_size) = (self.measurement, self.sample_size);
        BenchmarkGroup {
            criterion: self,
            name,
            measurement,
            sample_size,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (measurement, sample_size) = (self.measurement, self.sample_size);
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            measurement,
            sample_size,
        };
        group.run_one(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_settings_do_not_leak_into_later_groups() {
        let mut c = Criterion {
            measurement: Duration::from_millis(1),
            sample_size: 2,
            filter: None,
        };
        let mut g1 = c.benchmark_group("g1");
        g1.sample_size(50)
            .measurement_time(Duration::from_millis(9));
        g1.finish();
        let g2 = c.benchmark_group("g2");
        assert_eq!(g2.sample_size, 2);
        assert_eq!(g2.measurement, Duration::from_millis(1));
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            measurement: Duration::from_millis(1),
            sample_size: 2,
            filter: Some("keep".to_owned()),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("dropped", |_b| panic!("must be filtered out"));
        group.bench_function("keep", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn timings_are_positive() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            sample_size: 10,
            filter: None,
        };
        let mut group = c.benchmark_group("demo");
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter_batched(
                || vec![k; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
