//! Offline shim for `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` without `syn`/`quote`.
//!
//! `Serialize` generates a real `serde::Serialize` impl producing the
//! shim's tree-model `Value`; `Deserialize` generates an empty marker
//! impl (nothing in the workspace deserializes). Supported shapes: named
//! structs, tuple structs, unit structs, and enums with unit / named /
//! tuple variants. The only helper attribute honored is `#[serde(skip)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Unnamed(usize),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("serde shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde shim: generated impl must parse")
}

/// Consumes a `#[...]` attribute if `tokens[*pos]` starts one; returns
/// whether it was `#[serde(skip)]`.
fn eat_attribute(tokens: &[TokenTree], pos: &mut usize) -> Option<bool> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
        _ => return None,
    }
    let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
        return None;
    };
    let mut skip = false;
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if let Some(TokenTree::Ident(i)) = inner.first() {
        if i.to_string() == "serde" {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                skip = args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"));
            }
        }
    }
    *pos += 2;
    Some(skip)
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while let Some(s) = eat_attribute(tokens, pos) {
        skip |= s;
    }
    skip
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = tokens.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Advances past a type (or any token run) up to a top-level `,`,
/// respecting `<...>` nesting.
fn skip_to_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth: i64 = 0;
    while let Some(t) = tokens.get(*pos) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1; // field name
        pos += 1; // `:`
        skip_to_top_level_comma(&tokens, &mut pos);
        pos += 1; // `,` (or past the end)
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        skip_to_top_level_comma(&tokens, &mut pos);
        pos += 1;
        count += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Unnamed(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // Skip to the variant separator (handles discriminants defensively).
        skip_to_top_level_comma(&tokens, &mut pos);
        pos += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim: expected struct/enum, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim: expected item name, found {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        assert!(
            p.as_char() != '<',
            "serde shim: generic type `{name}` is not supported"
        );
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g))
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g))
            }
            other => panic!("serde shim: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn named_fields_object(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{0}\"), \
                 ::serde::Serialize::to_value(&{access_prefix}{0}))",
                f.name
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => named_fields_object(fields, "self."),
        ItemKind::TupleStruct(0) | ItemKind::UnitStruct => {
            format!("::serde::Value::String(::std::string::String::from(\"{name}\"))")
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantFields::Named(fields) => {
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let object = named_fields_object(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 {object})]),",
                                binders.join(", ")
                            )
                        }
                        VariantFields::Unnamed(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                            let entries: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binders.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}
