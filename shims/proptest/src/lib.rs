//! Offline shim for `proptest`: the subset this workspace's property
//! tests use. Cases are generated from a deterministic per-test seed; on
//! failure the case index and seed are reported instead of shrinking.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// Error carried out of a failing property body (a rendered message).
pub type TestCaseError = String;

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying up to an internal limit.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "proptest shim: filter `{}` rejected 1000 samples",
            self.reason
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategies for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*
    };
}

impl_arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Deterministic per-test seed from the test's name (FNV-1a).
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`", left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}", left, right,
                ::std::format!($($fmt)*)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(::std::stringify!($name));
                for case in 0..config.cases {
                    let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                        seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(
                            let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                        )*
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "property `{}` failed at case {case}/{} (seed {seed:#x}): {message}",
                            ::std::stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        ((0.0f64..10.0), (5.0f64..6.0))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(x in -3.0f64..3.0, k in 1usize..5) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..5).contains(&k));
        }

        #[test]
        fn tuples_and_map((a, b) in pair().prop_map(|(a, b)| (a + 1.0, b))) {
            prop_assert!((1.0..11.0).contains(&a), "a = {a}");
            prop_assert!((5.0..6.0).contains(&b));
        }

        #[test]
        fn filters_hold(v in (0u64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn any_integers_cover_high_bits(s in any::<u64>()) {
            // Not a real distribution test; just exercise the path.
            let _ = s;
        }
    }

    #[test]
    fn filters_give_up_eventually() {
        use rand::SeedableRng;
        let strat = (0u64..10).prop_filter("impossible", |_| false);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| strat.sample(&mut rng)));
        assert!(outcome.is_err(), "impossible filter must panic");
    }
}
