//! Offline shim for `serde_json`: renders the serde shim's [`Value`] tree
//! as JSON text. Serialization never fails (non-finite numbers become
//! `null`, mirroring what serde_json rejects but tooling tolerates).

use serde::{Serialize, Value};

/// Error type kept for API compatibility; the shim never produces one.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(items.iter(), ('[', ']'), indent, depth, out, write_value),
        Value::Object(fields) => write_seq(
            fields.iter(),
            ('{', '}'),
            indent,
            depth,
            out,
            |(name, item), indent, depth, out| {
                write_string(name, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth, out);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    brackets: (char, char),
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, Option<usize>, usize, &mut String),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        newline_indent(indent, depth + 1, out);
        write_item(item, indent, depth + 1, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        newline_indent(indent, depth, out);
    }
    out.push(brackets.1);
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_out() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
    }

    #[test]
    fn floats_keep_fractions() {
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
    }
}
