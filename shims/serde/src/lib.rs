//! Offline shim for `serde`.
//!
//! Provides just enough of the serde surface for this workspace:
//! `#[derive(Serialize, Deserialize)]` (re-exported from the shim derive
//! crate), a [`Serialize`] trait that renders into a JSON-ish [`Value`]
//! tree, and a no-op [`Deserialize`] marker trait. `serde_json` (also a
//! shim) renders [`Value`] as real JSON text.

// Lets the generated `::serde::...` paths resolve when this crate's own
// tests use the derives.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-ish tree value — the serialization target of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (rendered `null` when non-finite).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved field order.
    Object(Vec<(String, Value)>),
}

/// Tree-model serialization: types render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim's JSON-ish tree model.
    fn to_value(&self) -> Value;
}

/// Marker trait backing `#[derive(Deserialize)]`; the workspace never
/// deserializes, so no methods are required.
pub trait Deserialize {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    #[allow(clippy::cast_precision_loss)]
                    Value::Number(*self as f64)
                }
            }
        )*
    };
}

impl_serialize_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Demo {
        x: f64,
        name: String,
        #[serde(skip)]
        #[allow(dead_code)] // present to prove skip works
        hidden: u32,
        items: Vec<u32>,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        Unit,
        Pair { a: u32, b: u32 },
        Wrap(u32),
    }

    #[derive(Serialize, Deserialize)]
    struct Newtype(u32);

    #[test]
    fn named_struct_skips_marked_fields() {
        let d = Demo {
            x: 1.5,
            name: "n".into(),
            hidden: 7,
            items: vec![1, 2],
        };
        let Value::Object(fields) = d.to_value() else {
            panic!("expected object");
        };
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["x", "name", "items"]);
    }

    #[test]
    fn enum_variants_render_externally_tagged() {
        assert_eq!(Kind::Unit.to_value(), Value::String("Unit".into()));
        let Value::Object(tagged) = (Kind::Pair { a: 1, b: 2 }).to_value() else {
            panic!("expected object");
        };
        assert_eq!(tagged[0].0, "Pair");
        let Value::Object(inner) = &tagged[0].1 else {
            panic!("expected inner object");
        };
        assert_eq!(inner.len(), 2);
        let Value::Object(wrapped) = Kind::Wrap(5).to_value() else {
            panic!("expected object");
        };
        assert_eq!(wrapped[0].0, "Wrap");
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Newtype(9).to_value(), Value::Number(9.0));
    }
}
