//! Offline shim for `rand` 0.8: the subset this workspace uses.
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, and `fill` left out of
//!   scope except for what the workspace calls;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] backed by xoshiro256++ (seeded via SplitMix64) — a
//!   small, fast, statistically solid generator; deterministic across
//!   platforms, which is all the tests and experiments need.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(
            impl Standard for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly; mirrors `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = uniform_below(rng, span);
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = uniform_below(rng, span);
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` (`span == 0` means the full 2^128 wrap,
/// which the range impls never request beyond u64 spans). Uses rejection
/// sampling to avoid modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u128::from(u64::MAX) {
        // Spans wider than u64 need two words; bias is negligible but
        // handled the same way via rejection on the high word.
        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        return wide % span;
    }
    let span64 = span as u64;
    if span64.is_power_of_two() {
        return u128::from(rng.next_u64() & (span64 - 1));
    }
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return u128::from(x % span64);
        }
    }
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Draws a standard sample of `T` (uniform `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=u64::from(u16::MAX));
            assert!(y <= u64::from(u16::MAX));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
