//! A real TCP round-trip against `vartol-serve`: start the service
//! in-process on an ephemeral port, talk newline-delimited JSON over a
//! socket exactly as an external client would, and show the result
//! cache at work (warm repeat vs cold first analysis).
//!
//! Run with: `cargo run --release --example serve_client`
//!
//! The same conversation works against a standalone daemon:
//!
//! ```text
//! $ vartol-serve --addr 127.0.0.1:7425 --shards 4 &
//! $ printf '%s\n' '{"Register":{"circuit":"adder_16","preset":"adder_16","bench":null}}' \
//!     | nc 127.0.0.1 7425
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use vartol::liberty::Library;
use vartol_serve::{json, ServeConfig, Server, Service};

fn main() {
    // Boot the service: 2 shards, default bounded queues and caches.
    let service = Arc::new(Service::new(
        Library::synthetic_90nm(),
        ServeConfig::default().with_shards(2),
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let acceptor = std::thread::spawn(move || server.run().expect("accept loop"));
    println!("serving on {addr}\n");

    // Connect like any external client: a TCP stream and a line buffer.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut exchange = |line: &str| -> String {
        writeln!(&stream, "{line}").expect("send request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        println!("> {line}");
        println!("< {}", response.trim_end());
        response
    };

    exchange(r#"{"Register":{"circuit":"adder_16","preset":"adder_16","bench":null}}"#);

    // Cold: the first FULLSSTA analysis computes. Warm: the repeat is
    // answered from the result cache with a byte-identical payload.
    let analyze = r#"{"Analyze":{"circuit":"adder_16","kind":"FullSsta"}}"#;
    let t0 = Instant::now();
    let cold = exchange(analyze);
    let cold_wall = t0.elapsed();
    let t1 = Instant::now();
    let warm = exchange(analyze);
    let warm_wall = t1.elapsed();
    assert_eq!(
        vartol_serve::protocol::deterministic_part(cold.trim_end()),
        vartol_serve::protocol::deterministic_part(warm.trim_end()),
        "cached payload must be byte-identical"
    );
    println!(
        "\ncold {:.2?} vs warm {:.2?} (round-trip, cache hit)\n",
        cold_wall, warm_wall
    );

    // Pull the statistics and assert the cache actually hit.
    let stats_line = exchange(r#""Stats""#);
    let hits = sum_field(&stats_line, "cache_hits");
    let misses = sum_field(&stats_line, "cache_misses");
    #[allow(clippy::cast_precision_loss)]
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    println!("\ncache: {hits} hits / {misses} misses (hit rate {rate:.2})");
    assert!(hits >= 1, "the warm analysis must be a cache hit");

    exchange(r#""Shutdown""#);
    acceptor.join().expect("server thread");
    println!("\nserver stopped cleanly");
}

/// Sums an integer field across the per-shard stats rows by walking the
/// parsed JSON tree (no typed response decoding needed client-side).
fn sum_field(frame_line: &str, field: &str) -> u64 {
    fn walk(value: &serde::Value, field: &str, total: &mut u64) {
        match value {
            serde::Value::Object(fields) => {
                for (name, v) in fields {
                    if name == field {
                        if let serde::Value::Number(x) = v {
                            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                            {
                                *total += *x as u64;
                            }
                        }
                    }
                    walk(v, field, total);
                }
            }
            serde::Value::Array(items) => {
                for v in items {
                    walk(v, field, total);
                }
            }
            _ => {}
        }
    }
    let parsed = json::parse(frame_line.trim_end()).expect("frame is valid JSON");
    let mut total = 0;
    walk(&parsed, field, &mut total);
    total
}
