//! Correlated process variation end to end: independent vs die-to-die
//! vs spatially-correlated models on c17 and a 16-bit adder.
//!
//! Run with `cargo run --release --example correlated_variation`.
//!
//! Demonstrates the three ways the correlated [`VariationModel`] is
//! served:
//!
//! 1. direct engines (`FullSsta` conditions with Gauss–Hermite lanes,
//!    `MonteCarloTimer` samples the shared sources once per die),
//! 2. an incremental [`TimingSession`] opened under a model (what-if
//!    resizes refresh only the fanout cone, in every lane at once),
//! 3. the [`Workspace`] service's `AnalyzeUnder` request (correlated
//!    corners on demand, without touching the cached default session).

use vartol::liberty::Library;
use vartol::netlist::generators::preset;
use vartol::netlist::iscas::parse_bench;
use vartol::ssta::{
    EngineKind, FullSsta, GlobalSource, MonteCarloTimer, SpatialGrid, SstaConfig, TimingSession,
    VariationModel,
};
use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};

fn main() {
    let lib = Library::synthetic_90nm();
    let c17 = parse_bench(
        &std::fs::read_to_string("data/c17.bench").expect("run from the repo root"),
        "c17",
    )
    .expect("c17 parses");
    let adder = preset("adder_16", &lib).expect("known preset");

    // Three models with *identical per-gate marginals* (all normalized):
    // only the correlation structure differs.
    let models: Vec<(&str, VariationModel)> = vec![
        ("independent", VariationModel::none()),
        ("die-to-die 60%", VariationModel::die_to_die(0.6)),
        (
            "d2d 40% + spatial 20%",
            VariationModel::none()
                .with_global_source(GlobalSource::with_variance_share("d2d", 0.4))
                .with_spatial(SpatialGrid::with_variance_share(4, 4, 2.0, 0.2))
                .normalized(),
        ),
    ];

    println!("== engines under each model ==");
    for circuit in [&c17, &adder] {
        for (label, model) in &models {
            let config = SstaConfig::default().with_model(model.clone());
            let full = FullSsta::new(&lib, &config)
                .analyze(circuit)
                .circuit_moments();
            let mc = MonteCarloTimer::new(&lib, &config)
                .with_seed(0xDA7E_2005)
                .sample_parallel(circuit, 20_000)
                .moments();
            println!(
                "{:9} {label:22} fullssta mu {:8.2} sig {:6.2} | mc mu {:8.2} sig {:6.2}",
                circuit.name(),
                full.mean,
                full.std(),
                mc.mean,
                mc.std()
            );
        }
    }

    // An incremental session under a model: correlated what-if analysis.
    println!("\n== conditioned incremental session (adder_16) ==");
    let config = SstaConfig::default().with_model(VariationModel::die_to_die(0.6));
    let mut session = TimingSession::new(&lib, config, adder.clone());
    let before = session.circuit_moments();
    let gate = session.netlist().gate_ids().next().expect("gates");
    session.resize(gate, 5);
    let after = session.refresh();
    println!("before resize: {before}");
    println!("after resize:  {after} (only the fanout cone recomputed)");

    // The service front door: correlated corners on demand.
    println!("\n== workspace AnalyzeUnder ==");
    let mut ws = Workspace::new(&lib, WorkspaceConfig::default().with_mc_samples(2_000));
    ws.register("adder_16", adder).expect("registers");
    let answers = ws.submit(&[
        Request::Analyze {
            circuit: "adder_16".into(),
            kind: EngineKind::FullSsta,
        },
        Request::AnalyzeUnder {
            circuit: "adder_16".into(),
            kind: EngineKind::FullSsta,
            model: VariationModel::die_to_die(0.6),
        },
    ]);
    for response in &answers {
        match &response.answer {
            Answer::Analysis { kind, moments, .. } => {
                println!("{kind}: mu {:8.2} sig {:6.2}", moments.mean, moments.std());
            }
            other => panic!("unexpected answer {other:?}"),
        }
    }
}
