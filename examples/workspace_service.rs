//! A multi-circuit timing/sizing query service in a few dozen lines.
//!
//! The `Workspace` is the batched front door over the owned-handle
//! session API: register named circuits once (each gets a long-lived
//! cached session), then submit batches of typed requests. Circuits fan
//! out across the worker pool; requests on one circuit run in
//! submission order; answers come back in request order and are
//! bit-identical at every thread count. Malformed requests answer with
//! an error instead of taking down the service.
//!
//! Run with: `cargo run --release --example workspace_service`

use vartol::core::SizerConfig;
use vartol::liberty::Library;
use vartol::netlist::generators::preset;
use vartol::ssta::{EngineKind, OptimizerKind};
use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};

fn main() {
    // One service over one shared library, all CPUs.
    let library = Library::synthetic_90nm();
    let mut service = Workspace::new(&library, WorkspaceConfig::default().with_mc_samples(2000));

    // Register a fleet of circuits: presets by name, plus inline .bench
    // text (files work too, via register_bench_file).
    for name in ["adder_16", "mult_8", "ecc_16"] {
        service.register_preset(name).expect("known preset");
    }
    service
        .register_bench_str(
            "mux_tree",
            "INPUT(a)\nINPUT(b)\nINPUT(s)\nOUTPUT(y)\n\
             ns = NOT(s)\nt1 = AND(a, ns)\nt2 = AND(b, s)\ny = OR(t1, t2)\n",
        )
        .expect("valid .bench text");
    println!(
        "service: {} circuits registered: {}",
        service.len(),
        service.circuit_names().collect::<Vec<_>>().join(", ")
    );

    // A mixed batch: analyses, a yield query, a what-if resize, a full
    // sizing run, and one deliberately bad request.
    let deadline = 2.5e3;
    let resize_gate = preset("adder_16", &library)
        .expect("preset")
        .gate_ids()
        .next()
        .map(|id| {
            preset("adder_16", &library)
                .expect("preset")
                .gate(id)
                .name()
                .to_owned()
        })
        .expect("gates");
    let batch = vec![
        Request::Analyze {
            circuit: "adder_16".into(),
            kind: EngineKind::FullSsta,
        },
        Request::Yield {
            circuit: "mult_8".into(),
            deadline,
        },
        Request::Resize {
            circuit: "adder_16".into(),
            gate: resize_gate,
            size: 4,
        },
        Request::Size {
            circuit: "ecc_16".into(),
            config: SizerConfig::with_alpha(3.0),
            optimizer: OptimizerKind::Greedy,
            yield_deadline: None,
        },
        Request::Analyze {
            circuit: "mux_tree".into(),
            kind: EngineKind::Dsta,
        },
        // Typo'd circuit: answered with an error, everything else fine.
        Request::Analyze {
            circuit: "adder_61".into(),
            kind: EngineKind::Dsta,
        },
    ];

    println!();
    for (request, response) in batch.iter().zip(service.submit(&batch)) {
        let wall = response.wall.as_secs_f64() * 1e3;
        match response.answer {
            Answer::Analysis {
                kind,
                moments,
                worst_output,
            } => println!(
                "{:<9} {:<9} mu = {:>7.1} ps  sigma = {:>6.2} ps  worst out {}  [{wall:.1} ms]",
                request.circuit(),
                kind.to_string(),
                moments.mean,
                moments.std(),
                worst_output
            ),
            Answer::Yield { fraction } => println!(
                "{:<9} yield     {:>5.1}% of dies meet {deadline:.0} ps  [{wall:.1} ms]",
                request.circuit(),
                100.0 * fraction
            ),
            Answer::Resized { moments, area } => println!(
                "{:<9} resized   mu = {:>7.1} ps  area = {area:.0}  [{wall:.1} ms]",
                request.circuit(),
                moments.mean
            ),
            Answer::Sized { report, .. } => println!(
                "{:<9} sized     sigma {:+.1}% for area {:+.1}% over {} passes  [{wall:.1} ms]",
                request.circuit(),
                report.delta_sigma_pct(),
                report.delta_area_pct(),
                report.passes().len()
            ),
            Answer::Error {
                code, ref message, ..
            } => println!(
                "{:<9} ERROR     [{code}] {message}  [{wall:.1} ms]",
                request.circuit()
            ),
            ref other => println!("{:<9} {other:?}", request.circuit()),
        }
    }

    // The service keeps its sessions warm across batches: the resize
    // above persists, and follow-up queries are incremental.
    let followup = service.query(Request::Analyze {
        circuit: "adder_16".into(),
        kind: EngineKind::FullSsta,
    });
    if let Answer::Analysis { moments, .. } = followup.answer {
        println!();
        println!(
            "follow-up batch sees the committed resize: adder_16 mu = {:.1} ps  [{:.1} ms]",
            moments.mean,
            followup.wall.as_secs_f64() * 1e3
        );
    }
}
