//! Sequential timing end to end: ISCAS-89 `.bench` ingestion with
//! registers, clock constraints, and per-path-group setup slack from
//! every engine.
//!
//! Run with `cargo run --release --example sequential_timing`.
//!
//! Demonstrates the clocked layer of the stack:
//!
//! 1. `DFF(...)` statements in the `.bench` dialect — `data/s27.bench`
//!    and `data/s344_like.bench` load with their registers cutting the
//!    graph (D pins are endpoints, Q pins launch at clk→Q),
//! 2. the [`Workspace`] sequential verbs (`SetClock`, `GroupSlack`,
//!    `Wns`, `Tns`) answering per-group setup slack under all four
//!    engines, and
//! 3. how `reg→reg` slack tracks a clock-period change exactly.

use vartol::liberty::Library;
use vartol::netlist::iscas::parse_bench;
use vartol::ssta::EngineKind;
use vartol::workspace::{Answer, Request, Workspace, WorkspaceConfig};

fn group_rows(ws: &mut Workspace, circuit: &str, kind: EngineKind) -> Vec<(String, f64, f64)> {
    let response = ws.query(Request::GroupSlack {
        circuit: circuit.into(),
        kind,
    });
    match response.answer {
        Answer::GroupSlack { groups, .. } => groups
            .into_iter()
            .map(|g| (g.group, g.wns, g.prob_met))
            .collect(),
        other => panic!("unexpected answer {other:?}"),
    }
}

fn main() {
    let lib = Library::synthetic_90nm();
    let mut ws = Workspace::new(&lib, WorkspaceConfig::default().with_mc_samples(2_000));
    for name in ["s27", "s344_like"] {
        let text =
            std::fs::read_to_string(format!("data/{name}.bench")).expect("run from the repo root");
        let netlist = parse_bench(&text, name).expect("valid sequential bench");
        println!(
            "{name}: {} gates, {} registers, depth {}",
            netlist.gate_count(),
            netlist.register_count(),
            netlist.depth()
        );
        ws.register(name, netlist).expect("registers");
    }

    // Pick each circuit's clock from its nominal delay: comfortable for
    // s27, deliberately tight for s344_like so some slack goes negative.
    for (name, stretch) in [("s27", 1.5), ("s344_like", 0.9)] {
        let mu = match ws
            .query(Request::Analyze {
                circuit: name.into(),
                kind: EngineKind::Dsta,
            })
            .answer
        {
            Answer::Analysis { moments, .. } => moments.mean,
            other => panic!("unexpected answer {other:?}"),
        };
        let period = stretch * mu;
        ws.query(Request::SetClock {
            circuit: name.into(),
            period,
            uncertainty: 0.0,
        });
        println!("\n== {name} @ period {period:.1} ps ==");
        for kind in EngineKind::ALL {
            print!("{kind:>10}:");
            for (group, wns, prob) in group_rows(&mut ws, name, kind) {
                print!("  {group} wns {wns:8.1} (p {prob:.3})");
            }
            println!();
        }
        for (label, kind) in [("wns", EngineKind::FullSsta)] {
            if let Answer::Wns { wns, .. } = ws
                .query(Request::Wns {
                    circuit: name.into(),
                    kind,
                })
                .answer
            {
                println!("{label} (fullssta): {wns:.2} ps");
            }
        }
    }

    // Relaxing the clock moves reg→reg slack by exactly the delta.
    println!("\n== s344_like: slack tracks the clock ==");
    let before = group_rows(&mut ws, "s344_like", EngineKind::Dsta);
    let reg2reg_before = before.iter().find(|(g, ..)| g == "reg2reg").unwrap().1;
    ws.query(Request::SetClock {
        circuit: "s344_like".into(),
        period: 2_000.0,
        uncertainty: 50.0,
    });
    let after = group_rows(&mut ws, "s344_like", EngineKind::Dsta);
    let reg2reg_after = after.iter().find(|(g, ..)| g == "reg2reg").unwrap().1;
    println!("reg2reg wns: {reg2reg_before:.1} -> {reg2reg_after:.1} ps");
}
