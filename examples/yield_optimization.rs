//! Yield optimization: the Fig. 1 story of the paper.
//!
//! A circuit optimized purely for mean delay has the widest performance
//! spread; trading a little mean for a lot of variance raises the fraction
//! of manufactured parts that meet a clock period T (parametric yield).
//!
//! Run with: `cargo run --release --example yield_optimization`

use std::sync::Arc;
use vartol::core::{MeanDelaySizer, SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::alu;
use vartol::ssta::{MonteCarloTimer, SstaConfig};

fn main() {
    // One shared library handle feeds both lifetime-free sizers and the
    // Monte-Carlo engine.
    let library = Arc::new(Library::synthetic_90nm());
    let config = SstaConfig::default();

    // The "original": a 12-bit ALU sized for minimum nominal delay.
    let mut original = alu(12, &library);
    let baseline = MeanDelaySizer::new(Arc::clone(&library), &config).minimize_delay(&mut original);
    println!(
        "mean-delay baseline: {:.0} ps -> {:.0} ps ({} passes)",
        baseline.initial_delay, baseline.final_delay, baseline.passes
    );

    // A variance-optimized variant (alpha = 9, the aggressive point).
    let mut robust = original.clone();
    let report = StatisticalGreedy::new(Arc::clone(&library), SizerConfig::with_alpha(9.0))
        .optimize(&mut robust);
    println!("statistical sizing: {report}");

    // Compare parametric yield across candidate clock periods. The
    // parallel sampler uses every CPU but stays deterministic: the same
    // seed gives bit-identical samples for any thread count.
    let timer = MonteCarloTimer::new(&library, &config).with_seed(42);
    let mc_original = timer.sample_parallel(&original, 30_000);
    let mc_robust = timer.sample_parallel(&robust, 30_000);

    let m = mc_original.moments();
    println!();
    println!(
        "{:>12} {:>16} {:>16}",
        "period (ps)", "yield original", "yield robust"
    );
    for k in [-1.0, -0.5, 0.0, 0.5, 1.0, 2.0] {
        let t = m.mean + k * m.std();
        println!(
            "{t:>12.0} {:>15.1}% {:>15.1}%",
            100.0 * mc_original.yield_at(t),
            100.0 * mc_robust.yield_at(t)
        );
    }
    println!();
    println!(
        "area cost of robustness: {:+.1}% (the paper's Fig. 1 tradeoff)",
        report.delta_area_pct()
    );
}
