//! Statistical slack analysis and delay-constrained variance optimization.
//!
//! Shows the machinery behind the paper's "worst negative statistical
//! slack" terminology: required times propagate backward with the
//! statistical min, slack is a random variable per node, and the optimizer
//! can be run in the constrained mode of §2.1 (improve variance without
//! exceeding a mean-delay budget, then recover area).
//!
//! Run with: `cargo run --release --example slack_analysis`

use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::alu_with_flags;
use vartol::ssta::{FullSsta, SstaConfig, StatisticalSlacks};

fn main() {
    let library = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let mut netlist = alu_with_flags(8, &library);

    // Forward arrivals, then backward statistical required times against a
    // target of mean + 2 sigma.
    let analysis = FullSsta::new(&library, config.clone()).analyze(&netlist);
    let m = analysis.circuit_moments();
    let target = m.mean + 2.0 * m.std();
    println!("circuit: {netlist}");
    println!(
        "delay: mu = {:.1} ps, sigma = {:.2} ps, target T = {target:.1} ps",
        m.mean,
        m.std()
    );

    let slacks =
        StatisticalSlacks::compute(&netlist, &library, &config, analysis.arrivals(), target);
    println!();
    println!(
        "worst statistical slack (alpha=3): {:.2} ps",
        slacks.worst_statistical_slack(3.0)
    );
    let worst = slacks.worst_node(3.0);
    let ws = slacks.slack(worst);
    println!(
        "worst node: {}  slack mu = {:.1} ps, sigma = {:.2} ps",
        netlist.gate(worst).name(),
        ws.mean,
        ws.std()
    );

    // Constrained optimization: cut variance without slowing the mean past
    // its current value, then recover area within a 2% cost budget.
    let budget = m.mean;
    let sizer_config = SizerConfig::with_alpha(9.0)
        .with_ssta(config.clone())
        .with_max_mean_delay(budget);
    let sizer = StatisticalGreedy::new(&library, sizer_config);
    let report = sizer.optimize(&mut netlist);
    println!();
    println!("constrained optimization (mean budget {budget:.1} ps):");
    println!("  {report}");
    assert!(report.final_moments().mean <= budget + 1e-9);

    let recovered = sizer.recover_area(&mut netlist, report.final_moments().cost(9.0) * 1.02);
    let after = FullSsta::new(&library, config)
        .analyze(&netlist)
        .circuit_moments();
    println!(
        "  area recovery: {recovered} gates downsized; final mu = {:.1} ps, sigma = {:.2} ps",
        after.mean,
        after.std()
    );
}
