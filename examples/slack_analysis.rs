//! Statistical slack analysis and delay-constrained variance optimization.
//!
//! Shows the machinery behind the paper's "worst negative statistical
//! slack" terminology: required times propagate backward with the
//! statistical min, slack is a random variable per node, and the optimizer
//! can be run in the constrained mode of §2.1 (improve variance without
//! exceeding a mean-delay budget, then recover area).
//!
//! Run with: `cargo run --release --example slack_analysis`

use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::alu_with_flags;
use vartol::ssta::{SstaConfig, StatisticalSlacks, TimingSession};

fn main() {
    let library = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let mut netlist = alu_with_flags(8, &library);

    // Forward arrivals through a session, then backward statistical
    // required times against a target of mean + 2 sigma.
    let (m, slack_report) = {
        let mut session = TimingSession::new(&library, config.clone(), &mut netlist);
        let m = session.refresh();
        let target = m.mean + 2.0 * m.std();
        let slacks = StatisticalSlacks::compute_with_timing(
            session.netlist(),
            session.timing(),
            session.arrivals(),
            target,
        );
        let worst = slacks.worst_node(3.0);
        (
            m,
            (
                target,
                slacks.worst_statistical_slack(3.0),
                session.netlist().gate(worst).name().to_owned(),
                slacks.slack(worst),
            ),
        )
    };
    let (target, worst_slack, worst_name, ws) = slack_report;
    println!("circuit: {netlist}");
    println!(
        "delay: mu = {:.1} ps, sigma = {:.2} ps, target T = {target:.1} ps",
        m.mean,
        m.std()
    );
    println!();
    println!("worst statistical slack (alpha=3): {worst_slack:.2} ps");
    println!(
        "worst node: {worst_name}  slack mu = {:.1} ps, sigma = {:.2} ps",
        ws.mean,
        ws.std()
    );

    // Constrained optimization: cut variance without slowing the mean past
    // its current value, then recover area within a 2% cost budget.
    let budget = m.mean;
    let sizer_config = SizerConfig::with_alpha(9.0)
        .with_ssta(config.clone())
        .with_max_mean_delay(budget);
    let sizer = StatisticalGreedy::new(&library, sizer_config);
    let report = sizer.optimize(&mut netlist);
    println!();
    println!("constrained optimization (mean budget {budget:.1} ps):");
    println!("  {report}");
    assert!(report.final_moments().mean <= budget + 1e-9);

    let recovered = sizer.recover_area(&mut netlist, report.final_moments().cost(9.0) * 1.02);
    let mut session = TimingSession::new(&library, config, &mut netlist);
    let after = session.refresh();
    println!(
        "  area recovery: {recovered} gates downsized; final mu = {:.1} ps, sigma = {:.2} ps",
        after.mean,
        after.std()
    );
}
