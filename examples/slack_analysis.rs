//! Statistical slack analysis and delay-constrained variance optimization.
//!
//! Shows the machinery behind the paper's "worst negative statistical
//! slack" terminology: required times propagate backward with the
//! statistical min, slack is a random variable per node, and the optimizer
//! can be run in the constrained mode of §2.1 (improve variance without
//! exceeding a mean-delay budget, then recover area).
//!
//! The timing session is an owned handle now — it keeps the netlist and a
//! shared library handle inside, so slack and criticality queries come
//! straight off the session with no lifetime juggling.
//!
//! Run with: `cargo run --release --example slack_analysis`

use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::alu_with_flags;
use vartol::ssta::{SstaConfig, TimingSession};

fn main() {
    let library = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let netlist = alu_with_flags(8, &library);

    // Forward arrivals through an owned session, then backward statistical
    // required times against a target of mean + 2 sigma — both straight
    // off the session.
    let mut session = TimingSession::new(&library, config.clone(), netlist);
    let m = session.refresh();
    let target = m.mean + 2.0 * m.std();
    let slacks = session.slacks(target);
    let worst = slacks.worst_node(3.0);
    let worst_name = session.netlist().gate(worst).name().to_owned();
    let ws = slacks.slack(worst);

    println!("circuit: {}", session.netlist());
    println!(
        "delay: mu = {:.1} ps, sigma = {:.2} ps, target T = {target:.1} ps",
        m.mean,
        m.std()
    );
    println!();
    println!(
        "worst statistical slack (alpha=3): {:.2} ps",
        slacks.worst_statistical_slack(3.0)
    );
    println!(
        "worst node: {worst_name}  slack mu = {:.1} ps, sigma = {:.2} ps",
        ws.mean,
        ws.std()
    );

    // Hand the circuit back out of the session for optimization.
    let mut netlist = session.into_netlist();

    // Constrained optimization: cut variance without slowing the mean past
    // its current value, then recover area within a 2% cost budget.
    let budget = m.mean;
    let sizer_config = SizerConfig::with_alpha(9.0)
        .with_ssta(config.clone())
        .with_max_mean_delay(budget);
    let sizer = StatisticalGreedy::new(&library, sizer_config);
    let report = sizer.optimize(&mut netlist);
    println!();
    println!("constrained optimization (mean budget {budget:.1} ps):");
    println!("  {report}");
    assert!(report.final_moments().mean <= budget + 1e-9);

    let recovered = sizer.recover_area(&mut netlist, report.final_moments().cost(9.0) * 1.02);
    let mut session = TimingSession::new(&library, config, netlist);
    let after = session.refresh();
    println!(
        "  area recovery: {recovered} gates downsized; final mu = {:.1} ps, sigma = {:.2} ps",
        after.mean,
        after.std()
    );
}
