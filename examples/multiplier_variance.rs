//! Depth and variance: why the paper's 16x16 multiplier (c6288) is the
//! hardest circuit to improve.
//!
//! The number of gates along a timing path is inversely proportional to
//! the *relative* variance along it (independent contributions average
//! out), so deep circuits start with a low sigma/mu and leave little for
//! the optimizer — exactly the paper's observation about c6288.
//!
//! Run with: `cargo run --release --example multiplier_variance`

use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::{array_multiplier, parity_tree};
use vartol::ssta::{FullSsta, SstaConfig};

fn main() {
    let library = Library::synthetic_90nm();
    let config = SstaConfig::default();
    let engine = FullSsta::new(&library, &config);

    println!(
        "{:>22} {:>7} {:>7} {:>10}",
        "circuit", "gates", "depth", "sigma/mu"
    );
    let mut circuits = vec![
        ("parity tree (shallow)", parity_tree(16, &library)),
        ("4x4 multiplier", array_multiplier(4, &library)),
        ("8x8 multiplier", array_multiplier(8, &library)),
        ("12x12 multiplier", array_multiplier(12, &library)),
        ("16x16 multiplier", array_multiplier(16, &library)),
    ];
    for (label, n) in &circuits {
        let m = engine.analyze(n).circuit_moments();
        println!(
            "{label:>22} {:>7} {:>7} {:>10.4}",
            n.gate_count(),
            n.depth(),
            m.sigma_over_mu()
        );
    }

    // Optimize the shallowest and the deepest at the same alpha and compare
    // the improvement headroom.
    println!();
    // The sizer is an owned handle (the `&Library` converts into a
    // shared Arc by cloning once), so it could just as well be stored or
    // sent to a worker thread between these two runs.
    let sizer = StatisticalGreedy::new(&library, SizerConfig::with_alpha(9.0));
    let shallow = sizer.optimize(&mut circuits[0].1);
    let deep = sizer.optimize(&mut circuits[4].1);
    println!(
        "shallow circuit: sigma {:+.1}% for area {:+.1}%",
        shallow.delta_sigma_pct(),
        shallow.delta_area_pct()
    );
    println!(
        "deep multiplier: sigma {:+.1}% for area {:+.1}%",
        deep.delta_sigma_pct(),
        deep.delta_area_pct()
    );
    println!();
    println!("paper: c6288 shows the lowest improvement due to its already low sigma/mu ratio");
}
