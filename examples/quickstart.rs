//! Quickstart: size a circuit for process-variation tolerance.
//!
//! Builds an 8-bit ripple-carry adder, measures its delay distribution
//! through an **owned** timing session (no lifetimes — the session holds
//! a shared library handle and the netlist itself), optimizes it with
//! StatisticalGreedy at α = 3, and verifies the variance reduction with
//! Monte Carlo — all through the unified engine API.
//!
//! For serving many circuits and mixed query batches concurrently, see
//! `examples/workspace_service.rs`.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::ripple_carry_adder;
use vartol::ssta::{EngineKind, SstaConfig, TimingSession};

fn main() {
    // 1. A synthetic 90nm standard-cell library (6-8 sizes per gate type),
    //    behind a shared handle: sessions, sizers, and services all hold
    //    the same Arc instead of borrowing.
    let library = Arc::new(Library::synthetic_90nm());

    // 2. A technology-mapped combinational circuit.
    let netlist = ripple_carry_adder(8, &library);
    println!("circuit: {netlist}");

    // 3. Statistical timing before optimization, through a session that
    //    owns the netlist. The session is a plain value: store it, move
    //    it, keep it for the next thousand queries.
    let config = SstaConfig::default();
    let mut session = TimingSession::new(Arc::clone(&library), config.clone(), netlist);
    let before = session.refresh();
    println!(
        "before: mu = {:.1} ps, sigma = {:.2} ps  (sigma/mu = {:.4})",
        before.mean,
        before.std(),
        before.sigma_over_mu()
    );

    // 4. Optimize the sigma/mu tradeoff with the paper's algorithm. The
    //    sizer is lifetime-free too; take the circuit back out of the
    //    session, optimize it, and open a fresh session on the result.
    let mut netlist = session.into_netlist();
    let sizer = StatisticalGreedy::new(Arc::clone(&library), SizerConfig::with_alpha(3.0));
    let report = sizer.optimize(&mut netlist);
    println!("optimizer: {report}");

    // 5. After optimization: the session hands out any engine's view.
    let mut session = TimingSession::new(library, config, netlist);
    let after = session.refresh();
    println!(
        "after:  mu = {:.1} ps, sigma = {:.2} ps  (sigma/mu = {:.4})",
        after.mean,
        after.std(),
        after.sigma_over_mu()
    );

    // 6. Independent verification with the Monte-Carlo engine behind the
    //    same unified report interface.
    let mc = session.report(EngineKind::MonteCarlo);
    println!(
        "monte carlo check: mu = {:.1} ps, sigma = {:.2} ps ({} samples)",
        mc.circuit_moments().mean,
        mc.circuit_moments().std(),
        mc.samples().map_or(0, <[f64]>::len),
    );
    assert!(after.std() < before.std(), "variance must shrink");
}
