//! Quickstart: size a circuit for process-variation tolerance.
//!
//! Builds an 8-bit ripple-carry adder, measures its delay distribution
//! through a timing session, optimizes it with StatisticalGreedy at
//! α = 3, and verifies the variance reduction with Monte Carlo — all
//! through the unified engine API.
//!
//! Run with: `cargo run --release --example quickstart`

use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::ripple_carry_adder;
use vartol::ssta::{EngineKind, SstaConfig, TimingSession};

fn main() {
    // 1. A synthetic 90nm standard-cell library (6-8 sizes per gate type).
    let library = Library::synthetic_90nm();

    // 2. A technology-mapped combinational circuit.
    let mut netlist = ripple_carry_adder(8, &library);
    println!("circuit: {netlist}");

    // 3. Statistical timing before optimization, through a session.
    let config = SstaConfig::default();
    let before = {
        let mut session = TimingSession::new(&library, config.clone(), &mut netlist);
        session.refresh()
    };
    println!(
        "before: mu = {:.1} ps, sigma = {:.2} ps  (sigma/mu = {:.4})",
        before.mean,
        before.std(),
        before.sigma_over_mu()
    );

    // 4. Optimize the sigma/mu tradeoff with the paper's algorithm. The
    //    optimizer runs on the same session machinery internally, so each
    //    candidate resize is an incremental cone re-analysis.
    let sizer = StatisticalGreedy::new(&library, SizerConfig::with_alpha(3.0));
    let report = sizer.optimize(&mut netlist);
    println!("optimizer: {report}");

    // 5. After optimization: the session hands out any engine's view.
    let mut session = TimingSession::new(&library, config, &mut netlist);
    let after = session.refresh();
    println!(
        "after:  mu = {:.1} ps, sigma = {:.2} ps  (sigma/mu = {:.4})",
        after.mean,
        after.std(),
        after.sigma_over_mu()
    );

    // 6. Independent verification with the Monte-Carlo engine behind the
    //    same unified report interface.
    let mc = session.report(EngineKind::MonteCarlo);
    println!(
        "monte carlo check: mu = {:.1} ps, sigma = {:.2} ps ({} samples)",
        mc.circuit_moments().mean,
        mc.circuit_moments().std(),
        mc.samples().map_or(0, <[f64]>::len),
    );
    assert!(after.std() < before.std(), "variance must shrink");
}
