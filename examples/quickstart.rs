//! Quickstart: size a circuit for process-variation tolerance.
//!
//! Builds an 8-bit ripple-carry adder, measures its delay distribution,
//! optimizes it with StatisticalGreedy at α = 3, and verifies the variance
//! reduction with Monte Carlo.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vartol::core::{SizerConfig, StatisticalGreedy};
use vartol::liberty::Library;
use vartol::netlist::generators::ripple_carry_adder;
use vartol::ssta::{FullSsta, MonteCarloTimer, SstaConfig};

fn main() {
    // 1. A synthetic 90nm standard-cell library (6-8 sizes per gate type).
    let library = Library::synthetic_90nm();

    // 2. A technology-mapped combinational circuit.
    let mut netlist = ripple_carry_adder(8, &library);
    println!("circuit: {netlist}");

    // 3. Statistical timing before optimization.
    let config = SstaConfig::default();
    let engine = FullSsta::new(&library, config.clone());
    let before = engine.analyze(&netlist).circuit_moments();
    println!(
        "before: mu = {:.1} ps, sigma = {:.2} ps  (sigma/mu = {:.4})",
        before.mean,
        before.std(),
        before.sigma_over_mu()
    );

    // 4. Optimize the sigma/mu tradeoff with the paper's algorithm.
    let sizer = StatisticalGreedy::new(&library, SizerConfig::with_alpha(3.0));
    let report = sizer.optimize(&mut netlist);
    println!("optimizer: {report}");

    // 5. Statistical timing after optimization.
    let after = engine.analyze(&netlist).circuit_moments();
    println!(
        "after:  mu = {:.1} ps, sigma = {:.2} ps  (sigma/mu = {:.4})",
        after.mean,
        after.std(),
        after.sigma_over_mu()
    );

    // 6. Independent verification with Monte Carlo sampling.
    let mut rng = StdRng::seed_from_u64(7);
    let mc = MonteCarloTimer::new(&library, config).sample(&netlist, 20_000, &mut rng);
    println!(
        "monte carlo check: mu = {:.1} ps, sigma = {:.2} ps",
        mc.moments().mean,
        mc.moments().std()
    );
    assert!(after.std() < before.std(), "variance must shrink");
}
