//! Statistical vs deterministic critical paths.
//!
//! Loads a circuit from ISCAS-85 `.bench` text, runs both deterministic
//! STA and FULLSSTA through the unified engine API, and compares the
//! classic worst-slack path with the worst-negative-statistical-slack
//! (WNSS) path — they can differ when a shorter path carries more
//! variance.
//!
//! Run with: `cargo run --release --example wnss_tracing`

use vartol::liberty::Library;
use vartol::netlist::iscas::parse_bench;
use vartol::ssta::{Dsta, FullSsta, SstaConfig, WnssTracer};

const BENCH_TEXT: &str = "\
# a c17-flavoured example with an unbalanced fork
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
t1 = NAND(a, b)
t2 = NAND(b, c)
t3 = NAND(t1, t2)
t4 = XOR(c, d)
t5 = NAND(t4, d)
y  = NAND(t3, t5)
";

fn main() {
    let library = Library::synthetic_90nm();
    let netlist = parse_bench(BENCH_TEXT, "example").expect("valid .bench text");
    println!("parsed: {netlist}");

    let config = SstaConfig::default();
    let det = Dsta::new(&library, &config).detailed(&netlist);
    let stat = FullSsta::new(&library, &config).analyze(&netlist);

    println!();
    println!("deterministic longest delay: {:.1} ps", det.max_delay());
    let m = stat.circuit_moments();
    println!(
        "statistical circuit delay:   mu = {:.1} ps, sigma = {:.2} ps",
        m.mean,
        m.std()
    );

    let det_path: Vec<&str> = det
        .critical_path(&netlist)
        .iter()
        .map(|&g| netlist.gate(g).name())
        .collect();
    println!();
    println!("deterministic critical path: {}", det_path.join(" -> "));

    let tracer = WnssTracer::new(config.variation.mu_sigma_coupling());
    let wnss_path: Vec<&str> = tracer
        .trace(&netlist, stat.arrivals())
        .iter()
        .map(|&g| netlist.gate(g).name())
        .collect();
    println!("WNSS path:                   {}", wnss_path.join(" -> "));

    println!();
    println!("per-node arrival statistics:");
    for id in netlist.gate_ids() {
        let a = stat.arrival(id);
        println!(
            "  {:<4} mu = {:>6.1}  sigma = {:>5.2}",
            netlist.gate(id).name(),
            a.mean,
            a.std()
        );
    }
}
