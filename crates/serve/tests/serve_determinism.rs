//! Service-level determinism and cache-correctness contracts.
//!
//! The headline invariant: replaying the same request script serially
//! produces **byte-identical response payloads** at every shard count
//! and every pool width — sharding and threading are pure throughput
//! knobs. Only the trailing `wall_us` field is wall-clock, and
//! [`vartol_serve::protocol::deterministic_part`] strips exactly that.
//!
//! The cache contracts ride along: a cached answer is byte-identical to
//! a recomputed one (and to a cache-disabled service's), `Resize`
//! invalidates only the touched circuit, and the LRU policy evicts at
//! capacity.

use vartol::liberty::Library;
use vartol::ssta::EngineKind;
use vartol::workspace::WorkspaceConfig;
use vartol_serve::protocol::deterministic_part;
use vartol_serve::{serve_lines, ServeConfig, ServeRequest, ServeResponse, Service};

/// A tiny `.bench` circuit with known node names, so the script can
/// exercise `Arrival` and `Resize` deterministically.
const TINY_BENCH: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

/// A mixed request script covering every request kind with a
/// deterministic answer — including error paths, cache hits (repeated
/// lines), mutation + re-analysis, and comment/blank handling.
/// `Stats` is deliberately absent: its per-shard rows depend on the
/// topology by design.
fn script() -> String {
    let tiny = TINY_BENCH.replace('\n', "\\n");
    let mut lines = vec![
        "# vartol-serve determinism script".to_owned(),
        String::new(),
        r#"{"Register":{"circuit":"adder_8","preset":"adder_8","bench":null}}"#.to_owned(),
        r#"{"Register":{"circuit":"cmp_8","preset":"cmp_8","bench":null}}"#.to_owned(),
        format!(r#"{{"Register":{{"circuit":"tiny","preset":null,"bench":"{tiny}"}}}}"#),
        // Duplicate registration: a deterministic typed error.
        r#"{"Register":{"circuit":"adder_8","preset":"adder_8","bench":null}}"#.to_owned(),
        r#"{"Analyze":{"circuit":"adder_8","kind":"Dsta"}}"#.to_owned(),
        r#"{"Analyze":{"circuit":"adder_8","kind":"Fassta"}}"#.to_owned(),
        r#"{"Analyze":{"circuit":"adder_8","kind":"FullSsta"}}"#.to_owned(),
        r#"{"Analyze":{"circuit":"adder_8","kind":"MonteCarlo"}}"#.to_owned(),
        // Repeat: answered from the cache, byte-identical by contract.
        r#"{"Analyze":{"circuit":"adder_8","kind":"FullSsta"}}"#.to_owned(),
        r#"{"AnalyzeUnder":{"circuit":"cmp_8","kind":"FullSsta","d2d_share":0.6}}"#.to_owned(),
        r#"{"Arrival":{"circuit":"tiny","node":"y"}}"#.to_owned(),
        r#"{"Arrival":{"circuit":"tiny","node":"ghost"}}"#.to_owned(),
        r#"{"Slack":{"circuit":"adder_8","t_req":2500.0,"alpha":3.0}}"#.to_owned(),
        r#"{"Criticality":{"circuit":"cmp_8","top":5}}"#.to_owned(),
        r#"{"Yield":{"circuit":"cmp_8","deadline":2500.0}}"#.to_owned(),
        // Mutate, then re-analyze: the new answer must reflect the new
        // sizes at every topology.
        r#"{"Resize":{"circuit":"tiny","gate":"y","size":3}}"#.to_owned(),
        r#"{"Arrival":{"circuit":"tiny","node":"y"}}"#.to_owned(),
        r#"{"Size":{"circuit":"tiny","alpha":3.0,"max_passes":2}}"#.to_owned(),
        // Branch verbs: fork, speculate, analyze (twice — the repeat is
        // a per-branch cache hit), batch what-ifs, commit, drop.
        r#"{"Fork":{"circuit":"tiny","branch":"spec"}}"#.to_owned(),
        r#"{"BranchResize":{"circuit":"tiny","branch":"spec","gate":"y","size":1}}"#.to_owned(),
        r#"{"BranchAnalyze":{"circuit":"tiny","branch":"spec"}}"#.to_owned(),
        r#"{"BranchAnalyze":{"circuit":"tiny","branch":"spec"}}"#.to_owned(),
        r#"{"WhatIf":{"circuit":"tiny","trials":[[["y",2]],[["y",0]],[]]}}"#.to_owned(),
        r#"{"Commit":{"circuit":"tiny","branch":"spec"}}"#.to_owned(),
        r#"{"Arrival":{"circuit":"tiny","node":"y"}}"#.to_owned(),
        r#"{"Fork":{"circuit":"tiny","branch":"doomed"}}"#.to_owned(),
        r#"{"DropBranch":{"circuit":"tiny","branch":"doomed"}}"#.to_owned(),
        // Branch error paths: all typed, all deterministic.
        r#"{"BranchResize":{"circuit":"tiny","branch":"ghost","gate":"y","size":1}}"#.to_owned(),
        r#"{"Commit":{"circuit":"tiny","branch":"ghost"}}"#.to_owned(),
        // Error paths: unknown circuit, malformed parameter, bad JSON.
        r#"{"Analyze":{"circuit":"ghost","kind":"Dsta"}}"#.to_owned(),
        r#"{"AnalyzeUnder":{"circuit":"cmp_8","kind":"Dsta","d2d_share":7.0}}"#.to_owned(),
        "this is not json".to_owned(),
        r#""ListCircuits""#.to_owned(),
    ];
    lines.push(String::new());
    lines.join("\n")
}

fn run_script(shards: usize, width: usize) -> Vec<String> {
    let workspace =
        WorkspaceConfig::default()
            .with_threads(width)
            .with_ssta(vartol::ssta::SstaConfig {
                threads: width,
                ..Default::default()
            });
    let service = Service::new(
        Library::synthetic_90nm(),
        ServeConfig::default()
            .with_shards(shards)
            .with_workspace(workspace),
    );
    let mut out = Vec::new();
    serve_lines(&service, script().as_bytes(), &mut out).expect("in-memory I/O");
    String::from_utf8(out)
        .expect("frames are UTF-8")
        .lines()
        .map(|l| deterministic_part(l).to_owned())
        .collect()
}

#[test]
fn payloads_are_byte_identical_at_every_shard_count_and_pool_width() {
    let reference = run_script(1, 1);
    assert!(
        reference.iter().any(|l| l.contains("\"Analysis\""))
            && reference.iter().any(|l| l.contains("\"Sized\""))
            && reference.iter().any(|l| l.contains("\"BranchAnalysis\""))
            && reference.iter().any(|l| l.contains("\"Committed\""))
            && reference.iter().any(|l| l.contains("\"WhatIf\""))
            && reference.iter().any(|l| l.contains("\"Error\"")),
        "script must exercise analyses, sizing, branches, and errors: {reference:#?}"
    );
    for shards in [1usize, 2, 4] {
        for width in [1usize, 2, 8] {
            let replay = run_script(shards, width);
            assert_eq!(
                replay, reference,
                "payload drift at {shards} shards, width {width}"
            );
        }
    }
}

fn service_with_cache(capacity: usize) -> Service {
    Service::new(
        Library::synthetic_90nm(),
        ServeConfig::default()
            .with_shards(2)
            .with_cache_capacity(capacity),
    )
}

fn register_preset(service: &Service, name: &str) {
    let frames = service.call(ServeRequest::Register {
        circuit: name.into(),
        preset: Some(name.into()),
        bench: None,
    });
    assert!(
        matches!(frames[0].payload, ServeResponse::Registered { .. }),
        "{:?}",
        frames[0].payload
    );
}

fn analyze(circuit: &str, kind: EngineKind) -> ServeRequest {
    ServeRequest::Analyze {
        circuit: circuit.into(),
        kind,
    }
}

#[test]
fn cached_answers_equal_recomputed_answers() {
    let cached = service_with_cache(256);
    let uncached = service_with_cache(0);
    for service in [&cached, &uncached] {
        register_preset(service, "adder_8");
    }
    let request = analyze("adder_8", EngineKind::FullSsta);
    let cold = cached.call(request.clone());
    let warm = cached.call(request.clone());
    let recomputed = uncached.call(request);
    // The warm answer came from the cache…
    assert_eq!(cached.stats().hits(), 1);
    assert_eq!(uncached.stats().hits(), 0);
    // …and all three payloads are identical.
    assert_eq!(cold[0].payload, warm[0].payload);
    assert_eq!(cold[0].payload, recomputed[0].payload);
}

#[test]
fn resize_invalidates_the_cache_and_answers_track_the_mutation() {
    let service = service_with_cache(256);
    let witness = service_with_cache(0);
    for s in [&service, &witness] {
        let frames = s.call(ServeRequest::Register {
            circuit: "tiny".into(),
            preset: None,
            bench: Some(TINY_BENCH.into()),
        });
        assert!(matches!(
            frames[0].payload,
            ServeResponse::Registered { .. }
        ));
    }
    let request = ServeRequest::Arrival {
        circuit: "tiny".into(),
        node: "y".into(),
    };
    let before = service.call(request.clone());
    service.call(request.clone()); // warm the cache
    let resize = ServeRequest::Resize {
        circuit: "tiny".into(),
        gate: "y".into(),
        size: 4,
    };
    service.call(resize.clone());
    witness.call(resize);
    let after = service.call(request.clone());
    let expected = witness.call(request);
    assert_ne!(
        before[0].payload, after[0].payload,
        "resize must change the arrival"
    );
    assert_eq!(
        after[0].payload, expected[0].payload,
        "post-resize answer must be fresh"
    );
    let stats = service.stats();
    assert!(
        stats
            .shards
            .iter()
            .map(|s| s.cache_invalidations)
            .sum::<u64>()
            >= 1,
        "{stats:?}"
    );
}

#[test]
fn lru_evicts_at_capacity() {
    // Capacity 2 on the shard holding adder_8; three distinct cacheable
    // requests against one circuit force an eviction of the oldest.
    let service = Service::new(
        Library::synthetic_90nm(),
        ServeConfig::default().with_shards(1).with_cache_capacity(2),
    );
    register_preset(&service, "adder_8");
    let first = analyze("adder_8", EngineKind::Dsta);
    service.call(first.clone());
    service.call(analyze("adder_8", EngineKind::Fassta));
    service.call(analyze("adder_8", EngineKind::FullSsta));
    let stats = service.stats();
    assert_eq!(stats.shards[0].cache_evictions, 1, "{stats:?}");
    // The evicted (least recently used) entry misses again.
    let misses = service.stats().misses();
    service.call(first);
    assert_eq!(service.stats().misses(), misses + 1);
}
