//! Wire-level contracts of the branch verbs (protocol v2).
//!
//! * Every boundary-validation failure answers a **distinct** stable
//!   error code next to its human message.
//! * `BranchAnalyze` answers are cached per **branch** fingerprint, so
//!   speculative queries never collide with the parent's entries — and
//!   a `Commit` on the parent can never make a sibling's cached answer
//!   stale, in any interleaving of commits and queries.
//! * `WhatIf` fans its trials out over the shard's pool with answers
//!   bit-identical at every pool width, and each trial's answer equals
//!   the equivalent fork/resize/analyze sequence.

use vartol::liberty::Library;
use vartol::workspace::WorkspaceConfig;
use vartol_serve::{ServeConfig, ServeRequest, ServeResponse, Service, PROTOCOL_VERSION};

/// Two sizable gates deep so branches can diverge on different gates.
const TWO_GATE_BENCH: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NAND(a, b)\ny = NOR(m, a)\n";

fn service_with(shards: usize, width: usize, cache: usize) -> Service {
    let workspace =
        WorkspaceConfig::default()
            .with_threads(width)
            .with_ssta(vartol::ssta::SstaConfig {
                threads: width,
                ..Default::default()
            });
    Service::new(
        Library::synthetic_90nm(),
        ServeConfig::default()
            .with_shards(shards)
            .with_cache_capacity(cache)
            .with_workspace(workspace),
    )
}

fn register_bench(service: &Service, name: &str) {
    let frames = service.call(ServeRequest::Register {
        circuit: name.into(),
        preset: None,
        bench: Some(TWO_GATE_BENCH.into()),
    });
    assert!(
        matches!(frames[0].payload, ServeResponse::Registered { .. }),
        "{:?}",
        frames[0].payload
    );
}

fn one(service: &Service, request: ServeRequest) -> ServeResponse {
    let frames = service.call(request);
    assert_eq!(frames.len(), 1);
    frames.into_iter().next().unwrap().payload
}

fn fork(circuit: &str, branch: &str) -> ServeRequest {
    ServeRequest::Fork {
        circuit: circuit.into(),
        branch: branch.into(),
    }
}

fn branch_resize(circuit: &str, branch: &str, gate: &str, size: usize) -> ServeRequest {
    ServeRequest::BranchResize {
        circuit: circuit.into(),
        branch: branch.into(),
        gate: gate.into(),
        size,
    }
}

fn branch_analyze(circuit: &str, branch: &str) -> ServeRequest {
    ServeRequest::BranchAnalyze {
        circuit: circuit.into(),
        branch: branch.into(),
    }
}

fn error_code(payload: &ServeResponse) -> &str {
    match payload {
        ServeResponse::Error { code, .. } => code,
        other => panic!("expected an error payload, got {other:?}"),
    }
}

#[test]
fn branch_lifecycle_over_the_wire_and_stats_counters() {
    let service = service_with(1, 1, 256);
    register_bench(&service, "two");

    let forked = one(&service, fork("two", "spec"));
    let ServeResponse::Forked {
        branch,
        fingerprint,
    } = &forked
    else {
        panic!("{forked:?}");
    };
    assert_eq!(branch, "spec");
    assert_eq!(fingerprint.len(), 16, "hex u64: {fingerprint}");

    let resized = one(&service, branch_resize("two", "spec", "y", 3));
    assert!(
        matches!(resized, ServeResponse::BranchResized { diverged: 1, .. }),
        "{resized:?}"
    );

    let analyzed = one(&service, branch_analyze("two", "spec"));
    let ServeResponse::BranchAnalysis { mu, .. } = analyzed else {
        panic!("{analyzed:?}");
    };

    // Commit adopts the branch's answer: the Committed payload carries
    // the same moments the branch analysis reported.
    let committed = one(
        &service,
        ServeRequest::Commit {
            circuit: "two".into(),
            branch: "spec".into(),
        },
    );
    let ServeResponse::Committed {
        mu: committed_mu, ..
    } = committed
    else {
        panic!("{committed:?}");
    };
    assert_eq!(mu.to_bits(), committed_mu.to_bits());

    // Fork + drop, then check the lifetime counters.
    one(&service, fork("two", "doomed"));
    let dropped = one(
        &service,
        ServeRequest::DropBranch {
            circuit: "two".into(),
            branch: "doomed".into(),
        },
    );
    assert!(
        matches!(dropped, ServeResponse::Dropped { .. }),
        "{dropped:?}"
    );

    let stats = service.stats();
    assert_eq!(stats.protocol, PROTOCOL_VERSION);
    assert_eq!(stats.shards[0].branches_live, 0);
    assert_eq!(stats.shards[0].branches_committed, 1);
    assert_eq!(stats.shards[0].branches_dropped, 1);
}

#[test]
fn every_boundary_failure_maps_to_a_distinct_code() {
    let service = service_with(1, 1, 256);
    register_bench(&service, "two");
    one(&service, fork("two", "a"));
    one(&service, fork("two", "b"));
    // Commit `a` so sibling `b` is left with a stale frozen base.
    one(&service, branch_resize("two", "a", "y", 2));
    let committed = one(
        &service,
        ServeRequest::Commit {
            circuit: "two".into(),
            branch: "a".into(),
        },
    );
    assert!(matches!(committed, ServeResponse::Committed { .. }));

    let failures: Vec<(ServeRequest, &str)> = vec![
        (fork("ghost", "x"), "unknown-circuit"),
        (fork("two", "b"), "duplicate-branch"),
        (branch_resize("two", "ghost", "y", 1), "unknown-branch"),
        (branch_resize("two", "b", "ghost", 1), "unknown-gate"),
        (branch_resize("two", "b", "a", 1), "input-not-sizable"),
        (branch_resize("two", "b", "y", 999), "size-out-of-range"),
        (
            ServeRequest::Commit {
                circuit: "two".into(),
                branch: "b".into(),
            },
            "branch-conflict",
        ),
        (
            ServeRequest::AnalyzeUnder {
                circuit: "two".into(),
                kind: vartol::ssta::EngineKind::Dsta,
                d2d_share: 2.0,
            },
            "invalid-parameter",
        ),
        (
            ServeRequest::Register {
                circuit: "more".into(),
                preset: Some("no-such-preset".into()),
                bench: None,
            },
            "unknown-preset",
        ),
        (
            ServeRequest::Register {
                circuit: "two".into(),
                preset: None,
                bench: Some(TWO_GATE_BENCH.into()),
            },
            "duplicate-circuit",
        ),
        (
            ServeRequest::Arrival {
                circuit: "two".into(),
                node: "ghost".into(),
            },
            "unknown-node",
        ),
    ];
    let mut seen = std::collections::BTreeSet::new();
    for (request, expected) in failures {
        let payload = one(&service, request.clone());
        let code = error_code(&payload).to_owned();
        assert_eq!(code, expected, "{request:?} → {payload:?}");
        assert!(seen.insert(code), "code `{expected}` not distinct");
    }
    // A rejected commit leaves the branch readable.
    let still_there = one(&service, branch_analyze("two", "b"));
    assert!(
        matches!(still_there, ServeResponse::BranchAnalysis { .. }),
        "{still_there:?}"
    );
    // Malformed lines get the protocol-boundary code.
    let decoded = ServeRequest::from_line("{\"Fork\":{\"circuit\":\"two\"}}");
    assert!(decoded.is_err());
}

/// The satellite regression: interleave commits on the parent with
/// cached sibling queries in both orders. A sibling's answer depends
/// only on its own sizes, so the cached service must agree byte-for-byte
/// with a cache-disabled witness replaying the same requests.
#[test]
fn interleaved_commit_never_serves_a_stale_sibling_answer() {
    for query_before_commit in [true, false] {
        let cached = service_with(1, 1, 256);
        let witness = service_with(1, 1, 0);
        for service in [&cached, &witness] {
            register_bench(service, "two");
            one(service, fork("two", "keep"));
            one(service, fork("two", "win"));
            one(service, branch_resize("two", "keep", "m", 4));
            one(service, branch_resize("two", "win", "y", 2));
            if query_before_commit {
                // Warm the sibling's per-branch cache entry pre-commit.
                one(service, branch_analyze("two", "keep"));
            }
            let committed = one(
                service,
                ServeRequest::Commit {
                    circuit: "two".into(),
                    branch: "win".into(),
                },
            );
            assert!(
                matches!(committed, ServeResponse::Committed { .. }),
                "{committed:?}"
            );
        }
        let after_cached = one(&cached, branch_analyze("two", "keep"));
        let after_witness = one(&witness, branch_analyze("two", "keep"));
        assert!(
            matches!(after_cached, ServeResponse::BranchAnalysis { .. }),
            "{after_cached:?}"
        );
        assert_eq!(
            after_cached, after_witness,
            "stale sibling answer (query_before_commit = {query_before_commit})"
        );
        // Repeat query: served from the per-branch cache entry, still
        // byte-identical. (The commit conservatively invalidated the
        // whole circuit's entries, so the first post-commit query was a
        // miss; this one is the hit.)
        let hits_before = cached.stats().hits();
        let again = one(&cached, branch_analyze("two", "keep"));
        assert_eq!(again, after_witness);
        assert_eq!(cached.stats().hits(), hits_before + 1);
    }
}

#[test]
fn what_if_batch_is_width_identical_and_matches_branch_sequences() {
    let trials: Vec<Vec<(String, usize)>> = vec![
        vec![("y".into(), 2)],
        vec![("m".into(), 4), ("y".into(), 1)],
        vec![("ghost".into(), 1)], // per-trial error, siblings unaffected
        vec![],
    ];
    let what_if = |width: usize| {
        let service = service_with(1, width, 256);
        register_bench(&service, "two");
        one(
            &service,
            ServeRequest::WhatIf {
                circuit: "two".into(),
                trials: trials.clone(),
            },
        )
    };
    let reference = what_if(1);
    let ServeResponse::WhatIf { outcomes } = &reference else {
        panic!("{reference:?}");
    };
    assert_eq!(outcomes.len(), trials.len());
    assert_eq!(error_code(&outcomes[2]), "unknown-gate");
    for width in [2usize, 8] {
        assert_eq!(what_if(width), reference, "drift at width {width}");
    }

    // Trial 0 must answer exactly what the explicit branch dance does.
    let service = service_with(1, 1, 256);
    register_bench(&service, "two");
    one(&service, fork("two", "t0"));
    one(&service, branch_resize("two", "t0", "y", 2));
    let explicit = one(&service, branch_analyze("two", "t0"));
    let ServeResponse::BranchAnalysis {
        mu, sigma, area, ..
    } = explicit
    else {
        panic!("{explicit:?}");
    };
    let ServeResponse::BranchAnalysis {
        mu: t_mu,
        sigma: t_sigma,
        area: t_area,
        ..
    } = outcomes[0]
    else {
        panic!("{:?}", outcomes[0]);
    };
    assert_eq!(mu.to_bits(), t_mu.to_bits());
    assert_eq!(sigma.to_bits(), t_sigma.to_bits());
    assert_eq!(area.to_bits(), t_area.to_bits());
}
