//! Transport: the TCP listener and the stdin/stdout REPL, sharing one
//! line-serving loop ([`serve_lines`]) so both speak byte-identical
//! protocol.
//!
//! The listener is plain `std::net`: one acceptor thread (the caller of
//! [`Server::run`]) plus one reader thread per connection. Any number
//! of connections can be open at once — the [`Service`] routes their
//! requests concurrently, and per-shard admission control (not the
//! transport) is what sheds load. A processed
//! [`ServeRequest::Shutdown`] closes the service; the accept loop
//! notices and `run` returns. Connections still open at that point
//! drain naturally: every further request answers an error frame, and
//! their reader threads exit with their sockets.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use crate::protocol::{Frame, ServeRequest, ServeResponse};
use crate::shard::Service;

/// Serves newline-delimited requests from `input`, writing one frame
/// line per response to `output` (flushed per frame, so streamed
/// progress is visible immediately). Blank lines and lines starting
/// with `#` are ignored — request scripts can carry comments.
///
/// Returns `true` if the stream processed a [`ServeRequest::Shutdown`]
/// (the caller decides what that means: the REPL exits, a TCP
/// connection thread pokes the acceptor awake).
///
/// # Errors
///
/// Propagates transport I/O errors only; protocol-level problems answer
/// [`ServeResponse::Error`] frames and keep the stream alive.
pub fn serve_lines(
    service: &Service,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<bool> {
    let mut saw_shutdown = false;
    for line in input.lines() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let request = match ServeRequest::from_line(text) {
            Ok(request) => request,
            Err(message) => {
                let frame = Frame::new(ServeResponse::error(message), 0);
                writeln!(output, "{}", frame.to_line())?;
                output.flush()?;
                continue;
            }
        };
        let is_shutdown = matches!(request, ServeRequest::Shutdown);
        let mut write_error = None;
        service.call_with(request, &mut |frame| {
            if write_error.is_some() {
                return;
            }
            let result = writeln!(output, "{}", frame.to_line()).and_then(|()| output.flush());
            if let Err(e) = result {
                write_error = Some(e);
            }
        });
        if let Some(e) = write_error {
            return Err(e);
        }
        if is_shutdown && service.is_closed() {
            saw_shutdown = true;
            break;
        }
    }
    Ok(saw_shutdown)
}

/// The TCP front: a bound listener serving [`serve_lines`] per
/// connection.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:7425`, or port 0 for an
    /// ephemeral port — see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<Service>) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address (the real port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until the service shuts down, spawning one
    /// reader thread per connection. Returns after a
    /// [`ServeRequest::Shutdown`] has been processed (on any
    /// connection).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors; per-connection errors only
    /// end their own connection.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        for connection in self.listener.incoming() {
            if self.service.is_closed() {
                break;
            }
            let Ok(stream) = connection else { continue };
            let service = Arc::clone(&self.service);
            std::thread::Builder::new()
                .name("vartol-serve-conn".into())
                .spawn(move || {
                    let _ = handle_connection(&service, stream, addr);
                })
                .expect("spawn connection thread");
        }
        Ok(())
    }
}

/// Serves one connection; after this connection processes the shutdown
/// request, a loopback connect unblocks the acceptor so
/// [`Server::run`] can observe the closed service and return.
fn handle_connection(service: &Service, stream: TcpStream, addr: SocketAddr) -> io::Result<()> {
    // One request line, one (or a few) frame lines: latency-bound
    // traffic where Nagle + delayed ACK would add tens of ms per turn.
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    let shutdown = serve_lines(service, reader, &stream)?;
    if shutdown {
        drop(TcpStream::connect(addr));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ServeConfig;
    use vartol::liberty::Library;

    fn service() -> Service {
        Service::new(
            Library::synthetic_90nm(),
            ServeConfig::default().with_shards(2),
        )
    }

    #[test]
    fn repl_loop_serves_a_script_and_skips_comments() {
        let service = service();
        let script = "\n\
            # warm-up\n\
            {\"Register\":{\"circuit\":\"adder_8\",\"preset\":\"adder_8\",\"bench\":null}}\n\
            {\"Analyze\":{\"circuit\":\"adder_8\",\"kind\":\"Dsta\"}}\n\
            not json\n\
            \"ListCircuits\"\n";
        let mut out = Vec::new();
        let shutdown = serve_lines(&service, script.as_bytes(), &mut out).unwrap();
        assert!(!shutdown);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"Registered\""), "{}", lines[0]);
        assert!(lines[1].contains("\"Analysis\""), "{}", lines[1]);
        assert!(lines[2].contains("\"Error\""), "{}", lines[2]);
        assert!(lines[3].contains("\"adder_8\""), "{}", lines[3]);
    }

    #[test]
    fn repl_loop_stops_at_shutdown() {
        let service = service();
        let script = "\"Shutdown\"\n\"ListCircuits\"\n";
        let mut out = Vec::new();
        let shutdown = serve_lines(&service, script.as_bytes(), &mut out).unwrap();
        assert!(shutdown);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("\"ShuttingDown\""));
    }

    #[test]
    fn tcp_round_trip_with_shutdown_stops_the_server() {
        let service = Arc::new(service());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let addr = server.local_addr().unwrap();
        let acceptor = std::thread::spawn(move || server.run().unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |line: &str| {
            writeln!(&stream, "{line}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };
        let registered =
            send("{\"Register\":{\"circuit\":\"cmp_8\",\"preset\":\"cmp_8\",\"bench\":null}}");
        assert!(registered.contains("\"Registered\""), "{registered}");
        let analyzed = send("{\"Analyze\":{\"circuit\":\"cmp_8\",\"kind\":\"Fassta\"}}");
        assert!(analyzed.contains("\"Analysis\""), "{analyzed}");
        let bye = send("\"Shutdown\"");
        assert!(bye.contains("\"ShuttingDown\""), "{bye}");

        acceptor.join().unwrap();
        assert!(service.is_closed());
    }
}
