//! The wire protocol: typed requests and responses, one JSON value per
//! line (NDJSON), shared verbatim by the TCP listener and the
//! stdin/stdout REPL.
//!
//! # Framing
//!
//! * **Requests** are one JSON-encoded [`ServeRequest`] per line —
//!   externally tagged, exactly as the serde shim serializes the enum
//!   (`{"Analyze":{"circuit":"c17","kind":"FullSsta"}}`; unit variants
//!   are bare strings: `"Stats"`). Blank lines and lines starting with
//!   `#` are ignored, so a request script can carry comments.
//! * **Responses** are one [`Frame`] per line:
//!   `{"done":<bool>,"payload":<ServeResponse>,"wall_us":<int>}`.
//!   A request produces one or more frames; every frame except
//!   [`ServeResponse::Progress`] is terminal (`done: true`), and a long
//!   [`ServeRequest::Size`] run yields one `Progress` frame per
//!   optimizer pass before its final [`ServeResponse::Sized`].
//!
//! # Determinism
//!
//! Everything inside `payload` is part of the service's determinism
//! contract: replaying the same request script serially produces
//! **byte-identical payloads at every shard count and pool width**. The
//! `wall_us` field is wall-clock and explicitly excluded —
//! [`deterministic_part`] strips it for comparison. The only payloads
//! outside the contract are [`ServeResponse::Busy`] (admission control —
//! never emitted for a serial client, because a caller waits for each
//! answer before sending the next request) and [`ServeResponse::Stats`]
//! (whose per-shard rows depend on the topology by definition).
//!
//! # Decoding
//!
//! The serde shims only serialize, so the inbound direction is a
//! hand-written strict decoder over the [`crate::json`] value tree:
//! unknown variants, unknown fields, missing fields, and wrong types
//! are all errors naming the offending part — a malformed request gets
//! an [`ServeResponse::Error`] frame, never a guess and never a
//! disconnect.
//!
//! # Errors
//!
//! Every [`ServeResponse::Error`] carries a stable machine-readable
//! `code` next to the human message. Workspace-level failures reuse
//! [`vartol::workspace::ErrorCode`]'s kebab-case wire forms verbatim
//! (`"unknown-circuit"`, `"size-out-of-range"`, …); the serve layer
//! adds exactly two of its own: `"bad-request"` for lines that fail
//! protocol decoding or wire-level parameter validation, and
//! `"unavailable"` for a shut-down service or a dead shard worker.
//! Codes may be added, never renamed — clients should branch on `code`
//! and show `message`.

use serde::Value;
use vartol::ssta::EngineKind;
use vartol::workspace::GroupSlackRow;

use crate::json;

/// Wire protocol version, bumped on any request/response schema change.
/// Version 2 added the branch verbs ([`ServeRequest::Fork`] and
/// friends), the typed error payload (`code` + `message`), and the
/// branch counters in [`ShardStats`]. Version 3 added the sequential
/// verbs: [`ServeRequest::RegisterSequential`] (EDIF-lite or `.bench`
/// text with `DFF` statements), [`ServeRequest::SetClock`], and the
/// clocked queries [`ServeRequest::GroupSlack`], [`ServeRequest::Wns`],
/// and [`ServeRequest::Tns`]. Version 4 added the optimizer selector:
/// [`ServeRequest::Size`] takes optional `optimizer` (`greedy`,
/// `mean_delay`, `lagrangian`, `annealing`) and `yield_deadline`
/// fields, and [`ServeResponse::Sized`] names the optimizer that ran.
/// Reported in [`ServiceStats::protocol`].
pub const PROTOCOL_VERSION: u32 = 4;

/// One request line. Mirrors [`vartol::workspace::Request`] — every
/// query the `Workspace` answers is addressable over the wire — plus
/// the service-level verbs `Register`, `ListCircuits`, `Stats`, and
/// `Shutdown`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ServeRequest {
    /// Register a circuit on its shard: exactly one of `preset` (a
    /// [`vartol::netlist::generators::presets`] name) or `bench`
    /// (inline ISCAS-85 `.bench` text) must be given.
    Register {
        /// Name to register under (and to address later requests to).
        circuit: String,
        /// Generator preset name, if registering a preset.
        preset: Option<String>,
        /// Inline `.bench` netlist text, if registering parsed text.
        bench: Option<String>,
    },
    /// List every registered circuit, across all shards, sorted.
    ListCircuits,
    /// Service statistics: one row per shard (queue, cache, traffic).
    Stats,
    /// Stop accepting requests; the server's accept loop drains and
    /// exits.
    Shutdown,
    /// Full analysis under an engine (see
    /// [`vartol::workspace::Request::Analyze`]). Cacheable.
    Analyze {
        /// Target circuit.
        circuit: String,
        /// Engine to run.
        kind: EngineKind,
    },
    /// Correlated-corner analysis: the die-to-die variance share is the
    /// wire-level model knob (the full [`vartol::ssta::VariationModel`]
    /// surface — named sources, spatial grids — stays a library-level
    /// API). Cacheable.
    AnalyzeUnder {
        /// Target circuit.
        circuit: String,
        /// Engine to run.
        kind: EngineKind,
        /// Fraction of each gate's delay variance moving with the die,
        /// in `(0, 1)`.
        d2d_share: f64,
    },
    /// Arrival moments at a named node. Cacheable.
    Arrival {
        /// Target circuit.
        circuit: String,
        /// Node name.
        node: String,
    },
    /// Worst statistical slack against a required time. Cacheable.
    Slack {
        /// Target circuit.
        circuit: String,
        /// Required time (ps) at every primary output.
        t_req: f64,
        /// σ weight of the `μ − α·σ` ranking.
        alpha: f64,
    },
    /// Most critical nodes. Cacheable.
    Criticality {
        /// Target circuit.
        circuit: String,
        /// How many top nodes (0 = all).
        top: usize,
    },
    /// Monte-Carlo parametric yield at a deadline. Cacheable.
    Yield {
        /// Target circuit.
        circuit: String,
        /// Deadline (ps).
        deadline: f64,
    },
    /// What-if resize of one gate; persists, and invalidates the
    /// circuit's cache entries.
    Resize {
        /// Target circuit.
        circuit: String,
        /// Gate name.
        gate: String,
        /// New size index.
        size: usize,
    },
    /// Full statistical sizing; persists, invalidates the circuit's
    /// cache entries, and streams one [`ServeResponse::Progress`] frame
    /// per optimizer pass (one per restart for the annealing optimizer)
    /// before the final answer.
    Size {
        /// Target circuit.
        circuit: String,
        /// σ weight of the optimizer objective.
        alpha: f64,
        /// Optional cap on optimizer passes (`None` = optimizer
        /// default).
        max_passes: Option<usize>,
        /// Optimizer wire name — `greedy` (default when absent),
        /// `mean_delay`, `lagrangian`, or `annealing`.
        optimizer: Option<String>,
        /// Optimize `P(delay ≤ deadline)` instead of `μ + α·σ`; only
        /// the global optimizers accept this.
        yield_deadline: Option<f64>,
    },
    /// Fork a named copy-on-write branch of the circuit (see
    /// [`vartol::workspace::Request::Fork`]). The branch shares all
    /// unchanged state with the circuit and persists until committed or
    /// dropped.
    Fork {
        /// Target circuit.
        circuit: String,
        /// Name for the new branch (unique per circuit).
        branch: String,
    },
    /// Resize one gate on a named branch. The circuit and every sibling
    /// branch are untouched; no timing runs until
    /// [`ServeRequest::BranchAnalyze`].
    BranchResize {
        /// Target circuit.
        circuit: String,
        /// Branch name (from [`ServeRequest::Fork`]).
        branch: String,
        /// Gate name.
        gate: String,
        /// New size index.
        size: usize,
    },
    /// Analyze a named branch: recomputes only its divergent fanout
    /// cone, bit-identical to a from-scratch analysis at the branch's
    /// sizes. Cacheable — keyed by the **branch's** size fingerprint,
    /// so speculative queries from separate connections never collide
    /// with the parent's entries or each other's.
    BranchAnalyze {
        /// Target circuit.
        circuit: String,
        /// Branch name.
        branch: String,
    },
    /// Commit a named branch back into the circuit (the session adopts
    /// the branch's memoized analysis without recomputing); invalidates
    /// the circuit's cache entries like [`ServeRequest::Resize`].
    Commit {
        /// Target circuit.
        circuit: String,
        /// Branch name; consumed on success.
        branch: String,
    },
    /// Discard a named branch. The circuit is untouched.
    DropBranch {
        /// Target circuit.
        circuit: String,
        /// Branch name.
        branch: String,
    },
    /// Evaluate N independent what-if trials as anonymous branches of
    /// one circuit, fanned out in parallel over the shard's workspace
    /// pool — one outcome per trial, in trial order, bit-identical at
    /// every pool width. Each trial is a list of `[gate, size]` pairs
    /// applied to a fresh branch of the circuit's current state; the
    /// circuit itself is untouched. Cacheable.
    WhatIf {
        /// Target circuit.
        circuit: String,
        /// The divergent trials, each a list of `[gate, size]` pairs.
        trials: Vec<Vec<(String, usize)>>,
    },
    /// Register a sequential circuit from structural source text:
    /// exactly one of `edif` (EDIF-lite, see [`vartol::netlist::edif`])
    /// or `bench` (ISCAS-89-style `.bench` with `DFF` statements) must
    /// be given. Purely combinational sources register fine too — this
    /// verb differs from [`ServeRequest::Register`] only in accepting
    /// the EDIF front end and reporting the register count.
    RegisterSequential {
        /// Name to register under (and to address later requests to).
        circuit: String,
        /// Inline EDIF-lite netlist text, if registering EDIF.
        edif: Option<String>,
        /// Inline `.bench` netlist text, if registering parsed text.
        bench: Option<String>,
    },
    /// Constrain a circuit under a clock; persists and replaces any
    /// earlier constraint. Required before the clocked queries. Like
    /// `Resize`, this invalidates the circuit's cache entries (the
    /// clock is not part of the cache key).
    SetClock {
        /// Target circuit.
        circuit: String,
        /// Clock period (ps); finite and positive.
        period: f64,
        /// Clock uncertainty (ps); finite, `0 <= uncertainty < period`.
        uncertainty: f64,
    },
    /// Per-path-group setup slack (in→reg, reg→reg, reg→out, in→out)
    /// under the circuit's clock. Cacheable.
    GroupSlack {
        /// Target circuit.
        circuit: String,
        /// Engine whose arrival report the slack folds over.
        kind: EngineKind,
    },
    /// Worst negative setup slack over every endpoint under the
    /// circuit's clock. Cacheable.
    Wns {
        /// Target circuit.
        circuit: String,
        /// Engine whose arrival report the slack folds over.
        kind: EngineKind,
    },
    /// Total negative setup slack under the circuit's clock. Cacheable.
    Tns {
        /// Target circuit.
        circuit: String,
        /// Engine whose arrival report the slack folds over.
        kind: EngineKind,
    },
}

impl ServeRequest {
    /// The circuit this request is routed by, if it addresses one
    /// (service-level verbs return `None` and broadcast to every
    /// shard).
    #[must_use]
    pub fn circuit(&self) -> Option<&str> {
        match self {
            Self::ListCircuits | Self::Stats | Self::Shutdown => None,
            Self::Register { circuit, .. }
            | Self::Analyze { circuit, .. }
            | Self::AnalyzeUnder { circuit, .. }
            | Self::Arrival { circuit, .. }
            | Self::Slack { circuit, .. }
            | Self::Criticality { circuit, .. }
            | Self::Yield { circuit, .. }
            | Self::Resize { circuit, .. }
            | Self::Size { circuit, .. }
            | Self::Fork { circuit, .. }
            | Self::BranchResize { circuit, .. }
            | Self::BranchAnalyze { circuit, .. }
            | Self::Commit { circuit, .. }
            | Self::DropBranch { circuit, .. }
            | Self::WhatIf { circuit, .. }
            | Self::RegisterSequential { circuit, .. }
            | Self::SetClock { circuit, .. }
            | Self::GroupSlack { circuit, .. }
            | Self::Wns { circuit, .. }
            | Self::Tns { circuit, .. } => Some(circuit),
        }
    }

    /// Whether the answer is a pure function of `(circuit sizes, engine
    /// configuration, request)` — i.e. eligible for the result cache.
    /// Mutating requests and service verbs are not.
    /// [`Self::BranchAnalyze`] qualifies because a branch's answer
    /// depends only on the branch's own sizes (which its cache key
    /// carries), never on the parent it forked from.
    #[must_use]
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            Self::Analyze { .. }
                | Self::AnalyzeUnder { .. }
                | Self::Arrival { .. }
                | Self::Slack { .. }
                | Self::Criticality { .. }
                | Self::Yield { .. }
                | Self::BranchAnalyze { .. }
                | Self::WhatIf { .. }
                | Self::GroupSlack { .. }
                | Self::Wns { .. }
                | Self::Tns { .. }
        )
    }

    /// Serializes to one wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("requests serialize")
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed part (bad JSON, unknown
    /// variant or field, wrong type, missing field).
    pub fn from_line(line: &str) -> Result<Self, String> {
        let value = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        decode_request(&value)
    }
}

/// Per-shard counters reported by [`ServeRequest::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Circuits registered on this shard.
    pub circuits: usize,
    /// Requests this shard has fully processed.
    pub served: u64,
    /// Requests rejected with [`ServeResponse::Busy`] at admission.
    pub busy_rejections: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (among cacheable requests).
    pub cache_misses: u64,
    /// Entries evicted by the LRU policy.
    pub cache_evictions: u64,
    /// Entries dropped by `Resize`/`Size`/`Commit` invalidation.
    pub cache_invalidations: u64,
    /// Live (uncommitted, undropped) branches across this shard's
    /// circuits.
    pub branches_live: u64,
    /// Branches committed back into their circuits, lifetime.
    pub branches_committed: u64,
    /// Branches discarded via `DropBranch`, lifetime.
    pub branches_dropped: u64,
    /// Resolved propagation thread width of this shard's analytic
    /// engines (`SstaConfig::threads` after the 0-means-all-CPUs
    /// resolution) — the width the level-ordered arena fans each
    /// level out over. Purely informational: answers are
    /// bit-identical at every width.
    pub propagation_threads: usize,
    /// Deepest propagation schedule among this shard's registered
    /// circuits (level count of the level-ordered arena; 0 when the
    /// shard is empty). Levels bound the serial critical path of a
    /// propagation pass — per-level width is where the threads help.
    pub propagation_levels: usize,
}

/// Service-wide statistics: one [`ShardStats`] row per shard.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// The wire protocol version this service speaks
    /// ([`PROTOCOL_VERSION`]).
    pub protocol: u32,
    /// Per-shard rows, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Total cache hits across shards.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_hits).sum()
    }

    /// Total cache misses across shards.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_misses).sum()
    }

    /// Cache hit rate over all cacheable traffic (0 when there was
    /// none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits() as f64 / total as f64
            }
        }
    }
}

/// One response payload — the deterministic part of a [`Frame`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ServeResponse {
    /// A circuit was registered (with its basic shape, so clients can
    /// sanity-check what they loaded).
    Registered {
        /// Registered name.
        circuit: String,
        /// Cell-gate count.
        gates: usize,
        /// Logic depth.
        depth: usize,
        /// Register (DFF) count — 0 for purely combinational circuits.
        registers: usize,
    },
    /// All registered circuits, sorted (shard-count independent).
    Circuits {
        /// Sorted circuit names.
        circuits: Vec<String>,
    },
    /// Per-shard service statistics.
    Stats {
        /// The statistics snapshot.
        stats: ServiceStats,
    },
    /// Acknowledgement of [`ServeRequest::Shutdown`].
    ShuttingDown,
    /// A streamed optimizer pass (non-terminal: `done` is `false`).
    Progress {
        /// Circuit being sized.
        circuit: String,
        /// 0-based pass index.
        pass: usize,
        /// Circuit mean (ps) at the start of the pass.
        mu: f64,
        /// Circuit σ (ps) at the start of the pass.
        sigma: f64,
        /// Total area at the start of the pass.
        area: f64,
        /// Gates resized in this pass.
        resized: usize,
    },
    /// Answer to [`ServeRequest::Analyze`] / `AnalyzeUnder`.
    Analysis {
        /// Engine that ran.
        kind: EngineKind,
        /// Circuit mean delay (ps).
        mu: f64,
        /// Circuit delay σ (ps).
        sigma: f64,
        /// Statistically worst primary output.
        worst_output: String,
    },
    /// Answer to [`ServeRequest::Arrival`].
    Arrival {
        /// Queried node.
        node: String,
        /// Arrival mean (ps).
        mu: f64,
        /// Arrival σ (ps).
        sigma: f64,
    },
    /// Answer to [`ServeRequest::Slack`].
    Slack {
        /// Worst statistical slack (ps).
        worst: f64,
        /// Node realizing it.
        worst_node: String,
    },
    /// Answer to [`ServeRequest::Criticality`].
    Criticality {
        /// `(node, criticality)` pairs, most critical first.
        ranking: Vec<(String, f64)>,
    },
    /// Answer to [`ServeRequest::Yield`].
    Yield {
        /// Fraction of Monte-Carlo samples meeting the deadline.
        fraction: f64,
    },
    /// Answer to [`ServeRequest::Resize`].
    Resized {
        /// Circuit mean after the incremental refresh (ps).
        mu: f64,
        /// Circuit σ after the refresh (ps).
        sigma: f64,
        /// Total area after the resize.
        area: f64,
    },
    /// Final answer to [`ServeRequest::Size`].
    Sized {
        /// Circuit mean after sizing (ps).
        mu: f64,
        /// Circuit σ after sizing (ps).
        sigma: f64,
        /// Total area after sizing.
        area: f64,
        /// Optimizer passes executed.
        passes: usize,
        /// Gates moved to a new size across all kept passes.
        resized: usize,
        /// Wire name of the optimizer that ran.
        optimizer: String,
    },
    /// Answer to [`ServeRequest::Fork`].
    Forked {
        /// The new branch's name.
        branch: String,
        /// Size fingerprint of the frozen base the branch forked from,
        /// as a 16-digit hex string (u64 fingerprints do not survive
        /// JSON's f64 numbers).
        fingerprint: String,
    },
    /// Answer to [`ServeRequest::BranchResize`].
    BranchResized {
        /// The branch.
        branch: String,
        /// How many gates now differ from the frozen base.
        diverged: usize,
    },
    /// Answer to [`ServeRequest::BranchAnalyze`] (and each successful
    /// [`ServeRequest::WhatIf`] trial, named `trial-<i>`).
    BranchAnalysis {
        /// The branch.
        branch: String,
        /// Circuit mean at the branch's sizes (ps).
        mu: f64,
        /// Circuit σ at the branch's sizes (ps).
        sigma: f64,
        /// Total area at the branch's sizes.
        area: f64,
    },
    /// Answer to [`ServeRequest::Commit`].
    Committed {
        /// The committed (consumed) branch.
        branch: String,
        /// Circuit mean after adoption (ps).
        mu: f64,
        /// Circuit σ after adoption (ps).
        sigma: f64,
        /// Total area after adoption.
        area: f64,
    },
    /// Answer to [`ServeRequest::DropBranch`].
    Dropped {
        /// The discarded branch.
        branch: String,
    },
    /// Answer to [`ServeRequest::WhatIf`]: one payload per trial, in
    /// trial order — [`ServeResponse::BranchAnalysis`] on success,
    /// [`ServeResponse::Error`] for a trial that failed validation or
    /// panicked (other trials are unaffected).
    WhatIf {
        /// Per-trial outcomes.
        outcomes: Vec<ServeResponse>,
    },
    /// Answer to [`ServeRequest::SetClock`].
    ClockSet {
        /// The accepted clock period (ps).
        period: f64,
        /// The accepted clock uncertainty (ps).
        uncertainty: f64,
    },
    /// Answer to [`ServeRequest::GroupSlack`]: one row per path group,
    /// in the canonical in2reg/reg2reg/reg2out/in2out order.
    GroupSlack {
        /// Engine that produced the arrival report.
        kind: EngineKind,
        /// Per-group setup-slack rows (always all four groups).
        groups: Vec<GroupSlackRow>,
    },
    /// Answer to [`ServeRequest::Wns`].
    Wns {
        /// Engine that produced the arrival report.
        kind: EngineKind,
        /// Worst (minimum) mean setup slack over every endpoint (ps).
        wns: f64,
    },
    /// Answer to [`ServeRequest::Tns`].
    Tns {
        /// Engine that produced the arrival report.
        kind: EngineKind,
        /// Sum of negative mean endpoint slacks (ps, `<= 0`).
        tns: f64,
    },
    /// Admission control: the target shard's bounded queue is full.
    /// The request was **not** enqueued and no session was touched —
    /// retry later.
    Busy {
        /// The rejecting shard.
        shard: usize,
        /// Its configured queue depth.
        depth: usize,
    },
    /// The request was malformed, addressed an unknown circuit/node,
    /// or failed inside an engine (the circuit's session is recovered —
    /// see [`vartol::workspace`]'s fault-isolation contract).
    Error {
        /// Stable machine-readable failure code (see the
        /// [module docs](self#errors)).
        code: String,
        /// Human-readable cause.
        message: String,
    },
}

impl ServeResponse {
    /// Builds a protocol-boundary error payload (code
    /// `"bad-request"`) — for lines that fail decoding or wire-level
    /// parameter validation.
    pub fn error(message: impl Into<String>) -> Self {
        Self::error_with("bad-request", message)
    }

    /// Builds an error payload with an explicit machine-readable code.
    pub fn error_with(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self::Error {
            code: code.into(),
            message: message.into(),
        }
    }

    /// Builds a service-availability error payload (code
    /// `"unavailable"`) — a shut-down service or a dead shard worker.
    pub fn unavailable(message: impl Into<String>) -> Self {
        Self::error_with("unavailable", message)
    }

    /// Whether this payload terminates its request's frame stream.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Self::Progress { .. })
    }
}

/// One response line: the deterministic `payload` plus the wall-clock
/// `wall_us` (microseconds), which is *excluded* from the determinism
/// contract. Field order is fixed by this struct, so `wall_us` is
/// always the trailing field and [`deterministic_part`] can strip it
/// textually.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Frame {
    /// `false` only for streamed [`ServeResponse::Progress`] frames.
    pub done: bool,
    /// The deterministic payload.
    pub payload: ServeResponse,
    /// Wall-clock of the evaluation so far, in microseconds.
    pub wall_us: u64,
}

impl Frame {
    /// Wraps a payload, stamping `done` from
    /// [`ServeResponse::is_terminal`].
    #[must_use]
    pub fn new(payload: ServeResponse, wall_us: u64) -> Self {
        Self {
            done: payload.is_terminal(),
            payload,
            wall_us,
        }
    }

    /// Serializes to one wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("frames serialize")
    }
}

/// Strips the wall-clock suffix from a serialized [`Frame`] line,
/// returning the deterministic prefix (`{"done":…,"payload":…`) that
/// the shard/pool-width determinism suite compares byte-for-byte.
#[must_use]
pub fn deterministic_part(line: &str) -> &str {
    match line.rfind(",\"wall_us\":") {
        Some(i) => &line[..i],
        None => line,
    }
}

// ---------------------------------------------------------------------
// Decoding (requests only — the server never parses responses, and
// clients that need typed responses decode the few payloads they use).
// ---------------------------------------------------------------------

fn decode_request(value: &Value) -> Result<ServeRequest, String> {
    match value {
        Value::String(tag) => match tag.as_str() {
            "ListCircuits" => Ok(ServeRequest::ListCircuits),
            "Stats" => Ok(ServeRequest::Stats),
            "Shutdown" => Ok(ServeRequest::Shutdown),
            other => Err(format!("unknown request `{other}`")),
        },
        Value::Object(fields) => {
            let [(tag, body)] = fields.as_slice() else {
                return Err(format!(
                    "a request object must have exactly one variant key, got {}",
                    fields.len()
                ));
            };
            let f = Fields::new(tag, body)?;
            let request = match tag.as_str() {
                "Register" => ServeRequest::Register {
                    circuit: f.string("circuit")?,
                    preset: f.opt_string("preset")?,
                    bench: f.opt_string("bench")?,
                },
                "Analyze" => ServeRequest::Analyze {
                    circuit: f.string("circuit")?,
                    kind: f.engine_kind("kind")?,
                },
                "AnalyzeUnder" => ServeRequest::AnalyzeUnder {
                    circuit: f.string("circuit")?,
                    kind: f.engine_kind("kind")?,
                    d2d_share: f.number("d2d_share")?,
                },
                "Arrival" => ServeRequest::Arrival {
                    circuit: f.string("circuit")?,
                    node: f.string("node")?,
                },
                "Slack" => ServeRequest::Slack {
                    circuit: f.string("circuit")?,
                    t_req: f.number("t_req")?,
                    alpha: f.number("alpha")?,
                },
                "Criticality" => ServeRequest::Criticality {
                    circuit: f.string("circuit")?,
                    top: f.index("top")?,
                },
                "Yield" => ServeRequest::Yield {
                    circuit: f.string("circuit")?,
                    deadline: f.number("deadline")?,
                },
                "Resize" => ServeRequest::Resize {
                    circuit: f.string("circuit")?,
                    gate: f.string("gate")?,
                    size: f.index("size")?,
                },
                "Size" => ServeRequest::Size {
                    circuit: f.string("circuit")?,
                    alpha: f.number("alpha")?,
                    max_passes: f.opt_index("max_passes")?,
                    optimizer: f.opt_string("optimizer")?,
                    yield_deadline: f.opt_number("yield_deadline")?,
                },
                "Fork" => ServeRequest::Fork {
                    circuit: f.string("circuit")?,
                    branch: f.string("branch")?,
                },
                "BranchResize" => ServeRequest::BranchResize {
                    circuit: f.string("circuit")?,
                    branch: f.string("branch")?,
                    gate: f.string("gate")?,
                    size: f.index("size")?,
                },
                "BranchAnalyze" => ServeRequest::BranchAnalyze {
                    circuit: f.string("circuit")?,
                    branch: f.string("branch")?,
                },
                "Commit" => ServeRequest::Commit {
                    circuit: f.string("circuit")?,
                    branch: f.string("branch")?,
                },
                "DropBranch" => ServeRequest::DropBranch {
                    circuit: f.string("circuit")?,
                    branch: f.string("branch")?,
                },
                "WhatIf" => ServeRequest::WhatIf {
                    circuit: f.string("circuit")?,
                    trials: f.trials("trials")?,
                },
                "RegisterSequential" => ServeRequest::RegisterSequential {
                    circuit: f.string("circuit")?,
                    edif: f.opt_string("edif")?,
                    bench: f.opt_string("bench")?,
                },
                "SetClock" => ServeRequest::SetClock {
                    circuit: f.string("circuit")?,
                    period: f.number("period")?,
                    uncertainty: f.number("uncertainty")?,
                },
                "GroupSlack" => ServeRequest::GroupSlack {
                    circuit: f.string("circuit")?,
                    kind: f.engine_kind("kind")?,
                },
                "Wns" => ServeRequest::Wns {
                    circuit: f.string("circuit")?,
                    kind: f.engine_kind("kind")?,
                },
                "Tns" => ServeRequest::Tns {
                    circuit: f.string("circuit")?,
                    kind: f.engine_kind("kind")?,
                },
                other => return Err(format!("unknown request `{other}`")),
            };
            f.reject_unknown(&request)?;
            Ok(request)
        }
        other => Err(format!(
            "a request must be a string or object, got {other:?}"
        )),
    }
}

/// Strict field accessor over one variant body: every lookup is typed,
/// and any field the variant does not consume is rejected.
struct Fields<'a> {
    tag: &'a str,
    fields: &'a [(String, Value)],
}

impl<'a> Fields<'a> {
    fn new(tag: &'a str, body: &'a Value) -> Result<Self, String> {
        let Value::Object(fields) = body else {
            return Err(format!("`{tag}` body must be an object"));
        };
        for (i, (name, _)) in fields.iter().enumerate() {
            if fields.iter().take(i).any(|(n, _)| n == name) {
                return Err(format!("`{tag}` has duplicate field `{name}`"));
            }
        }
        Ok(Self { tag, fields })
    }

    fn get(&self, name: &str) -> Option<&'a Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn required(&self, name: &str) -> Result<&'a Value, String> {
        self.get(name)
            .ok_or_else(|| format!("`{}` is missing field `{name}`", self.tag))
    }

    fn string(&self, name: &str) -> Result<String, String> {
        match self.required(name)? {
            Value::String(s) => Ok(s.clone()),
            _ => Err(format!("`{}.{name}` must be a string", self.tag)),
        }
    }

    fn opt_string(&self, name: &str) -> Result<Option<String>, String> {
        match self.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::String(s)) => Ok(Some(s.clone())),
            Some(_) => Err(format!("`{}.{name}` must be a string or null", self.tag)),
        }
    }

    fn number(&self, name: &str) -> Result<f64, String> {
        match self.required(name)? {
            Value::Number(x) => Ok(*x),
            _ => Err(format!("`{}.{name}` must be a number", self.tag)),
        }
    }

    fn index(&self, name: &str) -> Result<usize, String> {
        match self.required(name)? {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Number(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2u64.pow(53) as f64 => {
                Ok(*x as usize)
            }
            _ => Err(format!(
                "`{}.{name}` must be a non-negative integer",
                self.tag
            )),
        }
    }

    fn opt_index(&self, name: &str) -> Result<Option<usize>, String> {
        match self.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(_) => self.index(name).map(Some),
        }
    }

    fn opt_number(&self, name: &str) -> Result<Option<f64>, String> {
        match self.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(_) => self.number(name).map(Some),
        }
    }

    /// A what-if trial list: an array of trials, each an array of
    /// `[gate, size]` pairs (exactly how the 2-tuples serialize).
    fn trials(&self, name: &str) -> Result<Vec<Vec<(String, usize)>>, String> {
        let shape = || {
            format!(
                "`{}.{name}` must be an array of trials, \
                 each an array of [gate, size] pairs",
                self.tag
            )
        };
        let Value::Array(trials) = self.required(name)? else {
            return Err(shape());
        };
        trials
            .iter()
            .map(|trial| {
                let Value::Array(pairs) = trial else {
                    return Err(shape());
                };
                pairs
                    .iter()
                    .map(|pair| {
                        let Value::Array(kv) = pair else {
                            return Err(shape());
                        };
                        match kv.as_slice() {
                            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                            [Value::String(gate), Value::Number(x)]
                                if x.fract() == 0.0 && *x >= 0.0 && *x <= 2u64.pow(53) as f64 =>
                            {
                                Ok((gate.clone(), *x as usize))
                            }
                            _ => Err(shape()),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn engine_kind(&self, name: &str) -> Result<EngineKind, String> {
        match self.required(name)? {
            Value::String(s) => match s.as_str() {
                "Dsta" => Ok(EngineKind::Dsta),
                "Fassta" => Ok(EngineKind::Fassta),
                "FullSsta" => Ok(EngineKind::FullSsta),
                "MonteCarlo" => Ok(EngineKind::MonteCarlo),
                other => Err(format!(
                    "`{}.{name}`: unknown engine `{other}` \
                     (Dsta|Fassta|FullSsta|MonteCarlo)",
                    self.tag
                )),
            },
            _ => Err(format!(
                "`{}.{name}` must be an engine-kind string",
                self.tag
            )),
        }
    }

    /// Rejects fields the decoded request did not consume, by
    /// re-serializing the request and diffing field names — keeps the
    /// decoder strict without a per-variant allowlist to drift.
    fn reject_unknown(&self, decoded: &ServeRequest) -> Result<(), String> {
        let Value::Object(tagged) = serde::Serialize::to_value(decoded) else {
            return Ok(());
        };
        let Some(Value::Object(known)) = tagged.first().map(|(_, v)| v) else {
            return Ok(());
        };
        for (name, _) in self.fields {
            if !known.iter().any(|(n, _)| n == name) {
                return Err(format!("`{}` has unknown field `{name}`", self.tag));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: &ServeRequest) {
        let line = request.to_line();
        let back =
            ServeRequest::from_line(&line).unwrap_or_else(|e| panic!("`{line}` must decode: {e}"));
        assert_eq!(&back, request, "{line}");
    }

    #[test]
    fn every_request_round_trips_through_the_wire() {
        let requests = vec![
            ServeRequest::Register {
                circuit: "adder_8".into(),
                preset: Some("adder_8".into()),
                bench: None,
            },
            ServeRequest::Register {
                circuit: "tiny".into(),
                preset: None,
                bench: Some("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into()),
            },
            ServeRequest::ListCircuits,
            ServeRequest::Stats,
            ServeRequest::Shutdown,
            ServeRequest::Analyze {
                circuit: "c17".into(),
                kind: EngineKind::FullSsta,
            },
            ServeRequest::AnalyzeUnder {
                circuit: "c17".into(),
                kind: EngineKind::MonteCarlo,
                d2d_share: 0.6,
            },
            ServeRequest::Arrival {
                circuit: "c17".into(),
                node: "n22".into(),
            },
            ServeRequest::Slack {
                circuit: "c17".into(),
                t_req: 1500.0,
                alpha: 3.0,
            },
            ServeRequest::Criticality {
                circuit: "c17".into(),
                top: 5,
            },
            ServeRequest::Yield {
                circuit: "c17".into(),
                deadline: 2500.0,
            },
            ServeRequest::Resize {
                circuit: "c17".into(),
                gate: "n22".into(),
                size: 3,
            },
            ServeRequest::Size {
                circuit: "c17".into(),
                alpha: 3.0,
                max_passes: Some(2),
                optimizer: None,
                yield_deadline: None,
            },
            ServeRequest::Size {
                circuit: "c17".into(),
                alpha: 9.0,
                max_passes: None,
                optimizer: None,
                yield_deadline: None,
            },
            // Protocol v4: the optimizer selector and yield-deadline
            // fields round-trip when populated.
            ServeRequest::Size {
                circuit: "c17".into(),
                alpha: 3.0,
                max_passes: Some(8),
                optimizer: Some("lagrangian".into()),
                yield_deadline: Some(2500.0),
            },
            ServeRequest::Fork {
                circuit: "c17".into(),
                branch: "spec".into(),
            },
            ServeRequest::BranchResize {
                circuit: "c17".into(),
                branch: "spec".into(),
                gate: "n22".into(),
                size: 4,
            },
            ServeRequest::BranchAnalyze {
                circuit: "c17".into(),
                branch: "spec".into(),
            },
            ServeRequest::Commit {
                circuit: "c17".into(),
                branch: "spec".into(),
            },
            ServeRequest::DropBranch {
                circuit: "c17".into(),
                branch: "spec".into(),
            },
            ServeRequest::WhatIf {
                circuit: "c17".into(),
                trials: vec![
                    vec![("n22".into(), 3), ("n23".into(), 1)],
                    vec![("n22".into(), 4)],
                    vec![],
                ],
            },
            ServeRequest::WhatIf {
                circuit: "c17".into(),
                trials: vec![],
            },
            ServeRequest::RegisterSequential {
                circuit: "s27".into(),
                edif: None,
                bench: Some("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n".into()),
            },
            ServeRequest::RegisterSequential {
                circuit: "toggler".into(),
                edif: Some("(edif t (cell t (interface (output q))))".into()),
                bench: None,
            },
            ServeRequest::SetClock {
                circuit: "s27".into(),
                period: 750.0,
                uncertainty: 25.0,
            },
            ServeRequest::GroupSlack {
                circuit: "s27".into(),
                kind: EngineKind::FullSsta,
            },
            ServeRequest::Wns {
                circuit: "s27".into(),
                kind: EngineKind::Dsta,
            },
            ServeRequest::Tns {
                circuit: "s27".into(),
                kind: EngineKind::MonteCarlo,
            },
        ];
        for request in &requests {
            round_trip(request);
        }
    }

    #[test]
    fn a_v3_size_line_decodes_with_default_optimizer_fields() {
        // Clients that predate protocol v4 omit the selector fields;
        // the decoder must fill both with `None` (greedy, no yield
        // target) rather than reject the line.
        let line = "{\"Size\":{\"circuit\":\"c17\",\"alpha\":3.0,\"max_passes\":2}}";
        let back = ServeRequest::from_line(line).expect("v3 line decodes");
        assert_eq!(
            back,
            ServeRequest::Size {
                circuit: "c17".into(),
                alpha: 3.0,
                max_passes: Some(2),
                optimizer: None,
                yield_deadline: None,
            }
        );
    }

    #[test]
    fn decoder_is_strict() {
        for (line, needle) in [
            ("{", "bad JSON"),
            ("\"Nope\"", "unknown request"),
            (
                "{\"Analyze\":{\"circuit\":\"c17\"}}",
                "missing field `kind`",
            ),
            (
                "{\"Analyze\":{\"circuit\":\"c17\",\"kind\":\"Warp\"}}",
                "unknown engine",
            ),
            (
                "{\"Analyze\":{\"circuit\":\"c17\",\"kind\":\"Dsta\",\"x\":1}}",
                "unknown field `x`",
            ),
            (
                "{\"Analyze\":{\"circuit\":7,\"kind\":\"Dsta\"}}",
                "must be a string",
            ),
            (
                "{\"Resize\":{\"circuit\":\"c\",\"gate\":\"g\",\"size\":-1}}",
                "non-negative integer",
            ),
            (
                "{\"Resize\":{\"circuit\":\"c\",\"gate\":\"g\",\"size\":1.5}}",
                "non-negative integer",
            ),
            (
                "{\"Analyze\":{\"circuit\":\"a\",\"kind\":\"Dsta\"},\"Stats\":{}}",
                "exactly one variant",
            ),
            ("[1]", "must be a string or object"),
            (
                "{\"Slack\":{\"circuit\":\"c\",\"circuit\":\"d\",\"t_req\":1,\"alpha\":1}}",
                "duplicate field",
            ),
            ("{\"Fork\":{\"circuit\":\"c\"}}", "missing field `branch`"),
            (
                "{\"Fork\":{\"circuit\":\"c\",\"branch\":\"b\",\"x\":1}}",
                "unknown field `x`",
            ),
            (
                "{\"WhatIf\":{\"circuit\":\"c\",\"trials\":7}}",
                "[gate, size] pairs",
            ),
            (
                "{\"WhatIf\":{\"circuit\":\"c\",\"trials\":[[[\"g\",1.5]]]}}",
                "[gate, size] pairs",
            ),
            (
                "{\"WhatIf\":{\"circuit\":\"c\",\"trials\":[[[\"g\"]]]}}",
                "[gate, size] pairs",
            ),
            (
                "{\"SetClock\":{\"circuit\":\"c\",\"period\":100}}",
                "missing field `uncertainty`",
            ),
            (
                "{\"GroupSlack\":{\"circuit\":\"c\",\"kind\":\"Warp\"}}",
                "unknown engine",
            ),
            (
                "{\"Wns\":{\"circuit\":\"c\",\"kind\":\"Dsta\",\"period\":5}}",
                "unknown field `period`",
            ),
        ] {
            let err = ServeRequest::from_line(line).expect_err(line);
            assert!(err.contains(needle), "`{line}`: `{err}` missing `{needle}`");
        }
    }

    #[test]
    fn frames_mark_progress_non_terminal_and_strip_wall() {
        let progress = Frame::new(
            ServeResponse::Progress {
                circuit: "c17".into(),
                pass: 0,
                mu: 1.0,
                sigma: 0.1,
                area: 10.0,
                resized: 3,
            },
            1234,
        );
        assert!(!progress.done);
        let done = Frame::new(ServeResponse::error("x"), 77);
        assert!(done.done);

        let line = done.to_line();
        assert!(line.ends_with(",\"wall_us\":77}"), "{line}");
        assert!(!deterministic_part(&line).contains("wall_us"));
        // Two frames differing only in wall-clock compare equal on the
        // deterministic part.
        let other = Frame::new(ServeResponse::error("x"), 9999).to_line();
        assert_eq!(deterministic_part(&line), deterministic_part(&other));
    }

    #[test]
    fn stats_aggregate_hit_rate() {
        let stats = ServiceStats {
            protocol: PROTOCOL_VERSION,
            shards: vec![
                ShardStats {
                    shard: 0,
                    circuits: 1,
                    served: 10,
                    busy_rejections: 0,
                    cache_hits: 3,
                    cache_misses: 1,
                    cache_evictions: 0,
                    cache_invalidations: 0,
                    branches_live: 2,
                    branches_committed: 1,
                    branches_dropped: 0,
                    propagation_threads: 1,
                    propagation_levels: 12,
                },
                ShardStats {
                    shard: 1,
                    circuits: 0,
                    served: 0,
                    busy_rejections: 2,
                    cache_hits: 0,
                    cache_misses: 0,
                    cache_evictions: 0,
                    cache_invalidations: 0,
                    branches_live: 0,
                    branches_committed: 0,
                    branches_dropped: 0,
                    propagation_threads: 1,
                    propagation_levels: 0,
                },
            ],
        };
        assert_eq!(stats.hits(), 3);
        assert_eq!(stats.misses(), 1);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        let empty = ServiceStats {
            protocol: PROTOCOL_VERSION,
            shards: vec![],
        };
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn error_payloads_carry_stable_codes() {
        let boundary = ServeResponse::error("not json");
        assert!(
            matches!(&boundary, ServeResponse::Error { code, .. } if code == "bad-request"),
            "{boundary:?}"
        );
        let down = ServeResponse::unavailable("service is shut down");
        assert!(
            matches!(&down, ServeResponse::Error { code, .. } if code == "unavailable"),
            "{down:?}"
        );
        let typed = ServeResponse::error_with("unknown-circuit", "unknown circuit `ghost`");
        let line = Frame::new(typed, 0).to_line();
        assert!(line.contains("\"code\":\"unknown-circuit\""), "{line}");
        assert!(line.contains("\"message\":"), "{line}");
    }
}
