//! `vartol-serve` — the timing service daemon / REPL.
//!
//! TCP by default (newline-delimited JSON; see `crates/serve`), or
//! `--repl` to serve stdin/stdout with the same protocol:
//!
//! ```text
//! $ vartol-serve --addr 127.0.0.1:7425 --shards 4 --preload adder_8,c7552
//! $ printf '"Stats"\n' | vartol-serve --repl
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use vartol::liberty::Library;
use vartol::workspace::WorkspaceConfig;
use vartol_serve::{serve_lines, ServeConfig, ServeRequest, ServeResponse, Server, Service};

const USAGE: &str = "vartol-serve - sharded, cache-fronted timing service \
(newline-delimited JSON over TCP or stdin/stdout)

USAGE:
    vartol-serve [OPTIONS]

OPTIONS:
    --repl              serve stdin/stdout instead of TCP
    --addr HOST:PORT    TCP bind address [default: 127.0.0.1:7425]
    --shards N          worker shards (>= 1) [default: 2]
    --queue-depth N     per-shard admission queue depth [default: 64]
    --cache N           per-shard result-cache entries (0 disables) [default: 256]
    --threads N         per-shard pool width (0 = all CPUs) [default: 0]
    --mc-samples N      Monte-Carlo sample budget [default: 2000]
    --preload A,B,..    register presets/benchmarks before serving
    -h, --help          print this help";

struct Options {
    repl: bool,
    addr: String,
    preload: Vec<String>,
    config: ServeConfig,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            repl: false,
            addr: "127.0.0.1:7425".into(),
            preload: Vec::new(),
            config: ServeConfig::default(),
        }
    }
}

/// Parses the command line; `Err` carries the exit code (0 for
/// `--help`, 2 for usage errors, both after printing the usage text).
fn parse_args(args: &[String]) -> Result<Options, ExitCode> {
    let mut options = Options::default();
    let mut workspace = WorkspaceConfig::default();
    let mut iter = args.iter();
    let usage_error = |message: &str| {
        eprintln!("vartol-serve: {message}\n\n{USAGE}");
        ExitCode::from(2)
    };
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| usage_error(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--repl" => options.repl = true,
            "--addr" => options.addr = value("--addr")?,
            "--shards" => {
                let n: usize = parse_number(&value("--shards")?, "--shards")?;
                if n == 0 {
                    return Err(usage_error("--shards must be at least 1"));
                }
                options.config.shards = n;
            }
            "--queue-depth" => {
                options.config.queue_depth =
                    parse_number(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--cache" => {
                options.config.cache_capacity = parse_number(&value("--cache")?, "--cache")?;
            }
            "--threads" => {
                workspace.ssta.threads = parse_number(&value("--threads")?, "--threads")?;
                workspace.threads = workspace.ssta.threads;
            }
            "--mc-samples" => {
                workspace.mc_samples = parse_number(&value("--mc-samples")?, "--mc-samples")?;
            }
            "--preload" => {
                options.preload.extend(
                    value("--preload")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Err(ExitCode::SUCCESS);
            }
            other => return Err(usage_error(&format!("unknown argument `{other}`"))),
        }
    }
    options.config.workspace = workspace;
    Ok(options)
}

fn parse_number(text: &str, flag: &str) -> Result<usize, ExitCode> {
    text.parse().map_err(|_| {
        eprintln!("vartol-serve: {flag}: `{text}` is not a non-negative integer\n\n{USAGE}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(code) => return code,
    };

    let service = Service::new(Library::synthetic_90nm(), options.config);
    for name in &options.preload {
        let frames = service.call(ServeRequest::Register {
            circuit: name.clone(),
            preset: Some(name.clone()),
            bench: None,
        });
        match frames.first().map(|f| &f.payload) {
            Some(ServeResponse::Registered { gates, depth, .. }) => {
                eprintln!("vartol-serve: preloaded `{name}` ({gates} gates, depth {depth})");
            }
            Some(ServeResponse::Error { code, message }) => {
                eprintln!("vartol-serve: preload `{name}` failed ({code}): {message}");
                return ExitCode::FAILURE;
            }
            other => {
                eprintln!("vartol-serve: preload `{name}`: unexpected response {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let result = if options.repl {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve_lines(&service, stdin.lock(), stdout.lock()).map(|_| ())
    } else {
        let service = Arc::new(service);
        match Server::bind(options.addr.as_str(), Arc::clone(&service)) {
            Ok(server) => {
                match server.local_addr() {
                    Ok(addr) => eprintln!(
                        "vartol-serve: listening on {addr} ({} shards)",
                        service.shard_count()
                    ),
                    Err(e) => eprintln!("vartol-serve: listening ({e})"),
                }
                server.run()
            }
            Err(e) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vartol-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
