//! The sharded service core: request routing, per-shard worker threads,
//! bounded admission queues, and the cache-fronted request handlers.
//!
//! # Topology
//!
//! A [`Service`] owns `N` independent shards. Each shard is one worker
//! thread owning a private [`vartol::workspace::Workspace`] (and so a
//! private set of cached timing sessions) plus a private
//! [`ResultCache`]. Circuits are partitioned by name:
//! `FNV-1a(name) mod N` picks the shard, so every request for a circuit
//! — registration included — lands on the same worker and no
//! cross-shard locking exists anywhere.
//!
//! # Admission control
//!
//! Each shard's queue is a bounded [`std::sync::mpsc::sync_channel`].
//! Routing uses `try_send`: when a shard's queue is at its configured
//! depth the request is rejected **immediately** with
//! [`ServeResponse::Busy`] — it is never enqueued, no session is
//! touched, and the caller is expected to retry. This keeps a flood on
//! one hot circuit from stalling the acceptor or starving other shards
//! (per-shard backpressure instead of global).
//!
//! # Determinism
//!
//! Routing by name is stable, each worker processes its queue in FIFO
//! order, and the `Workspace` underneath is bit-identical at every pool
//! width — so replaying a request script serially produces
//! byte-identical payloads for **any** shard count and any
//! [`WorkspaceConfig::threads`] width. The service-level merges keep it
//! that way: `ListCircuits` sorts the union of the shards' registries.
//! Only [`ServeRequest::Stats`] (per-shard rows) and concurrent-load
//! `Busy` rejections depend on the topology.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use vartol::core::SizerConfig;
use vartol::liberty::Library;
use vartol::netlist::generators::{benchmark, preset};
use vartol::ssta::{
    config_fingerprint, fingerprint_bytes, size_fingerprint, Fnv64, OptimizerKind, ScopedPool,
    VariationModel,
};
use vartol::workspace::{
    Answer, ErrorCode, GateResize, Request, WhatIfTrial, Workspace, WorkspaceConfig,
};

use crate::cache::{CacheKey, ResultCache};
use crate::protocol::{
    Frame, ServeRequest, ServeResponse, ServiceStats, ShardStats, PROTOCOL_VERSION,
};

/// Knobs of a [`Service`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeConfig {
    /// Number of shards (independent worker threads / workspaces).
    /// Clamped to at least 1. A pure throughput knob: answers are
    /// byte-identical at every shard count.
    pub shards: usize,
    /// Bounded per-shard queue depth; a request arriving at a full
    /// queue is rejected with [`ServeResponse::Busy`].
    pub queue_depth: usize,
    /// Result-cache capacity per shard, in entries (0 disables
    /// caching).
    pub cache_capacity: usize,
    /// Configuration of every shard's underlying `Workspace`.
    pub workspace: WorkspaceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            queue_depth: 64,
            cache_capacity: 256,
            workspace: WorkspaceConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Sets the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-shard cache capacity (0 disables caching).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the per-shard workspace configuration.
    #[must_use]
    pub fn with_workspace(mut self, workspace: WorkspaceConfig) -> Self {
        self.workspace = workspace;
        self
    }
}

/// The shard a circuit name routes to, out of `shards`.
#[must_use]
pub fn shard_of(circuit: &str, shards: usize) -> usize {
    #[allow(clippy::cast_possible_truncation)]
    {
        (fingerprint_bytes(circuit.as_bytes()) % shards.max(1) as u64) as usize
    }
}

/// Folds everything that can change an answer — the engine
/// configuration (minus its pure speed knob) and the Monte-Carlo
/// budget/seed — into the shard's cache-key fingerprint.
fn service_fingerprint(config: &WorkspaceConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(config_fingerprint(&config.ssta));
    h.write_u64(config.mc_samples as u64);
    h.write_u64(config.mc_seed);
    h.finish()
}

enum Job {
    Request {
        request: ServeRequest,
        reply: Sender<Frame>,
    },
    /// Test-only: parks the worker until the paired sender drops,
    /// letting tests fill the queue behind a deterministically-busy
    /// shard. `ready` acknowledges the park, so the fence occupies no
    /// queue slot by the time the test starts filling.
    #[cfg(test)]
    Fence {
        ready: Sender<()>,
        gate: Receiver<()>,
    },
}

struct ShardHandle {
    tx: Option<SyncSender<Job>>,
    busy: Arc<AtomicU64>,
    queue_depth: usize,
    thread: Option<JoinHandle<()>>,
}

/// The sharded, cache-fronted request router (see the
/// [module docs](self)).
///
/// `Service` is `Sync`: any number of connection threads can route
/// requests concurrently. Dropping it shuts the workers down and joins
/// them.
pub struct Service {
    shards: Vec<ShardHandle>,
    closed: AtomicBool,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("shards", &self.shards.len())
            .field("closed", &self.closed.load(Ordering::SeqCst))
            .finish()
    }
}

impl Service {
    /// Spawns the shard workers over a shared library.
    #[must_use]
    pub fn new(library: impl Into<Arc<Library>>, config: ServeConfig) -> Self {
        let library = library.into();
        let shards = (0..config.shards.max(1))
            .map(|id| {
                let (tx, rx) = sync_channel(config.queue_depth.max(1));
                let busy = Arc::new(AtomicU64::new(0));
                let thread = {
                    let library = Arc::clone(&library);
                    let config = config.clone();
                    let busy = Arc::clone(&busy);
                    std::thread::Builder::new()
                        .name(format!("vartol-serve-shard-{id}"))
                        .spawn(move || run_worker(id, &library, &config, &busy, &rx))
                        .expect("spawn shard worker")
                };
                ShardHandle {
                    tx: Some(tx),
                    busy,
                    queue_depth: config.queue_depth.max(1),
                    thread: Some(thread),
                }
            })
            .collect();
        Self {
            shards,
            closed: AtomicBool::new(false),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether [`ServeRequest::Shutdown`] has been processed; a closed
    /// service answers every request with an error frame.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Routes one request, streaming every response frame to
    /// `on_frame` as it arrives (a [`ServeRequest::Size`] run yields
    /// progress frames before its final answer; everything else yields
    /// exactly one frame).
    pub fn call_with(&self, request: ServeRequest, on_frame: &mut dyn FnMut(Frame)) {
        let start = Instant::now();
        if self.is_closed() {
            on_frame(Frame::new(
                ServeResponse::unavailable("service is shut down"),
                0,
            ));
            return;
        }
        match request.circuit() {
            Some(name) => {
                let shard = shard_of(name, self.shards.len());
                match self.enqueue(shard, request) {
                    Ok(replies) => drain_replies(shard, &replies, on_frame),
                    Err(frame) => on_frame(frame),
                }
            }
            None => self.broadcast(&request, start, on_frame),
        }
    }

    /// Routes one request and collects its frames (the blocking
    /// convenience over [`Service::call_with`]).
    pub fn call(&self, request: ServeRequest) -> Vec<Frame> {
        let mut frames = Vec::new();
        self.call_with(request, &mut |f| frames.push(f));
        frames
    }

    /// The merged statistics snapshot (a typed
    /// [`ServeRequest::Stats`]).
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        for frame in self.call(ServeRequest::Stats) {
            if let ServeResponse::Stats { stats } = frame.payload {
                return stats;
            }
        }
        ServiceStats {
            protocol: PROTOCOL_VERSION,
            shards: Vec::new(),
        }
    }

    /// Enqueues on one shard with admission control: a full queue
    /// rejects with a `Busy` frame instead of blocking.
    fn enqueue(&self, shard: usize, request: ServeRequest) -> Result<Receiver<Frame>, Frame> {
        let handle = &self.shards[shard];
        let tx = handle.tx.as_ref().expect("senders live until drop");
        let (reply_tx, reply_rx) = channel();
        match tx.try_send(Job::Request {
            request,
            reply: reply_tx,
        }) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => {
                handle.busy.fetch_add(1, Ordering::SeqCst);
                Err(Frame::new(
                    ServeResponse::Busy {
                        shard,
                        depth: handle.queue_depth,
                    },
                    0,
                ))
            }
            Err(TrySendError::Disconnected(_)) => Err(Frame::new(
                ServeResponse::unavailable(format!("shard {shard} worker is gone")),
                0,
            )),
        }
    }

    /// Sends a service-level request to every shard (blocking sends —
    /// these verbs are cheap and must not be load-shed) and merges the
    /// per-shard answers into one deterministic frame.
    fn broadcast(&self, request: &ServeRequest, start: Instant, on_frame: &mut dyn FnMut(Frame)) {
        let mut replies = Vec::with_capacity(self.shards.len());
        for handle in &self.shards {
            let tx = handle.tx.as_ref().expect("senders live until drop");
            let (reply_tx, reply_rx) = channel();
            let sent = tx
                .send(Job::Request {
                    request: request.clone(),
                    reply: reply_tx,
                })
                .is_ok();
            replies.push(sent.then_some(reply_rx));
        }
        let mut circuits: Vec<String> = Vec::new();
        let mut rows: Vec<ShardStats> = Vec::new();
        for (shard, reply) in replies.into_iter().enumerate() {
            let Some(frame) = reply.and_then(|rx| rx.recv().ok()) else {
                on_frame(Frame::new(
                    ServeResponse::unavailable(format!("shard {shard} worker is gone")),
                    wall_us(start),
                ));
                return;
            };
            match frame.payload {
                ServeResponse::Circuits { circuits: names } => circuits.extend(names),
                ServeResponse::Stats { stats } => rows.extend(stats.shards),
                ServeResponse::ShuttingDown => {}
                other => {
                    on_frame(Frame::new(other, wall_us(start)));
                    return;
                }
            }
        }
        let payload = match request {
            ServeRequest::ListCircuits => {
                circuits.sort_unstable();
                ServeResponse::Circuits { circuits }
            }
            ServeRequest::Stats => ServeResponse::Stats {
                stats: ServiceStats {
                    protocol: PROTOCOL_VERSION,
                    shards: rows,
                },
            },
            _ => {
                self.closed.store(true, Ordering::SeqCst);
                ServeResponse::ShuttingDown
            }
        };
        on_frame(Frame::new(payload, wall_us(start)));
    }

    #[cfg(test)]
    fn fence(&self, shard: usize) -> Sender<()> {
        let (ready_tx, ready_rx) = channel();
        let (gate_tx, gate_rx) = channel();
        self.shards[shard]
            .tx
            .as_ref()
            .expect("senders live until drop")
            .send(Job::Fence {
                ready: ready_tx,
                gate: gate_rx,
            })
            .expect("worker alive");
        ready_rx.recv().expect("worker parks at the fence");
        gate_tx
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        for handle in &mut self.shards {
            // Dropping the sender ends the worker's job loop…
            handle.tx.take();
        }
        for handle in &mut self.shards {
            // …so the join below cannot deadlock (reply channels are
            // unbounded: workers never block sending).
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// Streams one enqueued request's reply frames to `on_frame` until the
/// terminal frame (or the worker dies).
fn drain_replies(shard: usize, replies: &Receiver<Frame>, on_frame: &mut dyn FnMut(Frame)) {
    loop {
        match replies.recv() {
            Ok(frame) => {
                let done = frame.done;
                on_frame(frame);
                if done {
                    return;
                }
            }
            Err(_) => {
                on_frame(Frame::new(
                    ServeResponse::unavailable(format!("shard {shard} worker died mid-request")),
                    0,
                ));
                return;
            }
        }
    }
}

#[allow(clippy::cast_possible_truncation)]
fn wall_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

fn run_worker(
    id: usize,
    library: &Arc<Library>,
    config: &ServeConfig,
    busy: &Arc<AtomicU64>,
    jobs: &Receiver<Job>,
) {
    let workspace = Workspace::new(Arc::clone(library), config.workspace.clone());
    let config_fp = service_fingerprint(workspace.config());
    let mut state = ShardState {
        id,
        workspace,
        cache: ResultCache::new(config.cache_capacity),
        config_fp,
        served: 0,
        busy: Arc::clone(busy),
    };
    for job in jobs.iter() {
        match job {
            Job::Request { request, reply } => {
                state.handle(request, &reply);
                state.served += 1;
            }
            #[cfg(test)]
            Job::Fence { ready, gate } => {
                let _ = ready.send(());
                let _ = gate.recv();
            }
        }
    }
}

struct ShardState {
    id: usize,
    workspace: Workspace,
    cache: ResultCache,
    config_fp: u64,
    served: u64,
    busy: Arc<AtomicU64>,
}

impl ShardState {
    fn handle(&mut self, request: ServeRequest, reply: &Sender<Frame>) {
        let start = Instant::now();
        let send = |payload: ServeResponse| {
            // A send failure just means the client hung up; the worker
            // keeps serving its queue.
            let _ = reply.send(Frame::new(payload, wall_us(start)));
        };
        match request {
            ServeRequest::Register {
                circuit,
                preset: preset_name,
                bench,
            } => send(self.register(&circuit, preset_name.as_deref(), bench.as_deref())),
            ServeRequest::ListCircuits => send(ServeResponse::Circuits {
                circuits: self.workspace.circuit_names().map(String::from).collect(),
            }),
            ServeRequest::Stats => send(ServeResponse::Stats {
                stats: ServiceStats {
                    protocol: PROTOCOL_VERSION,
                    shards: vec![self.stats_row()],
                },
            }),
            ServeRequest::Shutdown => send(ServeResponse::ShuttingDown),
            ServeRequest::Size {
                circuit,
                alpha,
                max_passes,
                optimizer,
                yield_deadline,
            } => self.size(
                &circuit,
                alpha,
                max_passes,
                optimizer.as_deref(),
                yield_deadline,
                reply,
                start,
            ),
            ServeRequest::Resize {
                circuit,
                gate,
                size,
            } => {
                let answer = self
                    .workspace
                    .query(Request::Resize {
                        circuit: circuit.clone(),
                        gate,
                        size,
                    })
                    .answer;
                if !matches!(answer, Answer::Error { .. }) {
                    self.cache.invalidate_circuit(&circuit);
                }
                send(answer_payload(answer));
            }
            ServeRequest::Fork { circuit, branch } => send(answer_payload(
                self.workspace
                    .query(Request::Fork { circuit, branch })
                    .answer,
            )),
            ServeRequest::BranchResize {
                circuit,
                branch,
                gate,
                size,
            } => send(answer_payload(
                self.workspace
                    .query(Request::BranchResize {
                        circuit,
                        branch,
                        gate,
                        size,
                    })
                    .answer,
            )),
            ServeRequest::Commit { circuit, branch } => {
                // A successful commit mutates the circuit's sizes; drop
                // its session-keyed cache entries like `Resize` does.
                // Sibling branches' cached answers stay valid — they
                // are keyed by the branch's own size fingerprint and
                // never depend on the parent.
                let answer = self
                    .workspace
                    .query(Request::Commit {
                        circuit: circuit.clone(),
                        branch,
                    })
                    .answer;
                if !matches!(answer, Answer::Error { .. }) {
                    self.cache.invalidate_circuit(&circuit);
                }
                send(answer_payload(answer));
            }
            ServeRequest::DropBranch { circuit, branch } => send(answer_payload(
                self.workspace
                    .query(Request::DropBranch { circuit, branch })
                    .answer,
            )),
            ServeRequest::RegisterSequential {
                circuit,
                edif,
                bench,
            } => send(self.register_sequential(&circuit, edif.as_deref(), bench.as_deref())),
            ServeRequest::SetClock {
                circuit,
                period,
                uncertainty,
            } => {
                // The clock is not part of the cache key, so cached
                // sequential answers under the old constraint must go —
                // the same discipline as `Resize`.
                let answer = self
                    .workspace
                    .query(Request::SetClock {
                        circuit: circuit.clone(),
                        period,
                        uncertainty,
                    })
                    .answer;
                if !matches!(answer, Answer::Error { .. }) {
                    self.cache.invalidate_circuit(&circuit);
                }
                send(answer_payload(answer));
            }
            cacheable => send(self.query_cached(cacheable)),
        }
    }

    fn register(
        &mut self,
        circuit: &str,
        preset_name: Option<&str>,
        bench: Option<&str>,
    ) -> ServeResponse {
        let result = match (preset_name, bench) {
            (Some(p), None) => {
                let library = self.workspace.library();
                match preset(p, &library).or_else(|| benchmark(p, &library)) {
                    Some(netlist) => self.workspace.register(circuit, netlist),
                    None => {
                        return ServeResponse::error_with(
                            ErrorCode::UnknownPreset.as_str(),
                            format!("unknown preset or benchmark `{p}`"),
                        )
                    }
                }
            }
            (None, Some(text)) => self.workspace.register_bench_str(circuit, text),
            _ => return ServeResponse::error("Register needs exactly one of `preset` or `bench`"),
        };
        match result {
            Ok(()) => self.registered(circuit),
            Err(e) => ServeResponse::error_with(e.code().as_str(), e.to_string()),
        }
    }

    fn register_sequential(
        &mut self,
        circuit: &str,
        edif: Option<&str>,
        bench: Option<&str>,
    ) -> ServeResponse {
        let result = match (edif, bench) {
            (Some(text), None) => self.workspace.register_edif_str(circuit, text),
            (None, Some(text)) => self.workspace.register_bench_str(circuit, text),
            _ => {
                return ServeResponse::error(
                    "RegisterSequential needs exactly one of `edif` or `bench`",
                )
            }
        };
        match result {
            Ok(()) => self.registered(circuit),
            Err(e) => ServeResponse::error_with(e.code().as_str(), e.to_string()),
        }
    }

    fn registered(&self, circuit: &str) -> ServeResponse {
        let netlist = self.workspace.netlist(circuit).expect("just registered");
        ServeResponse::Registered {
            circuit: circuit.to_owned(),
            gates: netlist.gate_count(),
            depth: netlist.depth(),
            registers: netlist.register_count(),
        }
    }

    /// Answers a cacheable request: look up by `(circuit, sizes,
    /// config, request)`, forward to the workspace on a miss, and store
    /// every non-error answer.
    ///
    /// A `BranchAnalyze` keys on the **branch's** size fingerprint, not
    /// the session's: a branch answer is a pure function of the
    /// branch's own sizes, so a commit on the parent can never make a
    /// sibling's cached answer stale (the serve-level face of the
    /// session's fork-cache invalidation). A `WhatIf` keys on the
    /// session's sizes — its trials diverge *from* them.
    fn query_cached(&mut self, request: ServeRequest) -> ServeResponse {
        debug_assert!(request.cacheable());
        let key = request.circuit().and_then(|name| {
            let size_fp = match &request {
                ServeRequest::BranchAnalyze { circuit, branch } => {
                    self.workspace.branch_fingerprint(circuit, branch)?
                }
                _ => size_fingerprint(&self.workspace.netlist(name)?.sizes()),
            };
            Some(CacheKey {
                circuit: name.to_owned(),
                size_fp,
                config_fp: self.config_fp,
                query_fp: fingerprint_bytes(request.to_line().as_bytes()),
            })
        });
        if let Some(key) = &key {
            if let Some(hit) = self.cache.get(key) {
                return hit;
            }
        }
        let forwarded = match to_workspace_request(request) {
            Ok(r) => r,
            Err(payload) => return payload,
        };
        let payload = answer_payload(self.workspace.query(forwarded).answer);
        if let (Some(key), false) = (key, matches!(payload, ServeResponse::Error { .. })) {
            self.cache.insert(key, payload.clone());
        }
        payload
    }

    /// Runs a full sizing pass, streaming one progress frame per
    /// optimizer pass (one per restart for the annealing optimizer)
    /// before the terminal answer, then invalidates the circuit's cache
    /// entries (its sizes changed).
    #[allow(clippy::too_many_arguments)]
    fn size(
        &mut self,
        circuit: &str,
        alpha: f64,
        max_passes: Option<usize>,
        optimizer: Option<&str>,
        yield_deadline: Option<f64>,
        reply: &Sender<Frame>,
        start: Instant,
    ) {
        let optimizer = match optimizer {
            None => OptimizerKind::Greedy,
            Some(name) => match OptimizerKind::parse(name) {
                Some(kind) => kind,
                None => {
                    let _ = reply.send(Frame::new(
                        ServeResponse::error_with(
                            ErrorCode::InvalidParameter.as_str(),
                            format!(
                                "unknown optimizer `{name}`; expected one of \
                                 greedy, mean_delay, lagrangian, annealing"
                            ),
                        ),
                        wall_us(start),
                    ));
                    return;
                }
            },
        };
        if !(alpha.is_finite() && alpha >= 0.0) {
            let _ = reply.send(Frame::new(
                ServeResponse::error_with(
                    ErrorCode::InvalidParameter.as_str(),
                    format!("alpha must be finite and >= 0, got {alpha}"),
                ),
                wall_us(start),
            ));
            return;
        }
        let mut config =
            SizerConfig::with_alpha(alpha).with_ssta(self.workspace.config().ssta.clone());
        if let Some(passes) = max_passes {
            config = config.with_max_passes(passes);
        }
        let answer = self
            .workspace
            .query(Request::Size {
                circuit: circuit.to_owned(),
                config,
                optimizer,
                yield_deadline,
            })
            .answer;
        match answer {
            Answer::Sized {
                report,
                area,
                optimizer,
            } => {
                self.cache.invalidate_circuit(circuit);
                for pass in report.passes() {
                    let _ = reply.send(Frame::new(
                        ServeResponse::Progress {
                            circuit: circuit.to_owned(),
                            pass: pass.pass,
                            mu: pass.circuit.mean,
                            sigma: pass.circuit.std(),
                            area: pass.area,
                            resized: pass.resized,
                        },
                        wall_us(start),
                    ));
                }
                let final_moments = report.final_moments();
                let _ = reply.send(Frame::new(
                    ServeResponse::Sized {
                        mu: final_moments.mean,
                        sigma: final_moments.std(),
                        area,
                        passes: report.passes().len(),
                        resized: report.passes().iter().map(|p| p.resized).sum(),
                        optimizer: optimizer.to_string(),
                    },
                    wall_us(start),
                ));
            }
            other => {
                let _ = reply.send(Frame::new(answer_payload(other), wall_us(start)));
            }
        }
    }

    fn stats_row(&self) -> ShardStats {
        let counters = self.cache.counters();
        let names: Vec<String> = self.workspace.circuit_names().map(String::from).collect();
        let (branches_live, branches_committed, branches_dropped) =
            self.workspace.branch_counters();
        ShardStats {
            shard: self.id,
            circuits: self.workspace.len(),
            served: self.served,
            busy_rejections: self.busy.load(Ordering::SeqCst),
            cache_hits: counters.hits,
            cache_misses: counters.misses,
            cache_evictions: counters.evictions,
            cache_invalidations: counters.invalidations,
            branches_live,
            branches_committed,
            branches_dropped,
            propagation_threads: ScopedPool::new(self.workspace.config().ssta.threads).threads(),
            propagation_levels: names
                .iter()
                .filter_map(|name| self.workspace.propagation_levels(name))
                .max()
                .unwrap_or(0),
        }
    }
}

/// Lowers a cacheable wire request onto the `Workspace` request it
/// forwards to, validating wire-level parameters that the library-level
/// constructors would panic on.
fn to_workspace_request(request: ServeRequest) -> Result<Request, ServeResponse> {
    Ok(match request {
        ServeRequest::Analyze { circuit, kind } => Request::Analyze { circuit, kind },
        ServeRequest::AnalyzeUnder {
            circuit,
            kind,
            d2d_share,
        } => {
            if !(d2d_share.is_finite() && (0.0..=1.0).contains(&d2d_share)) {
                return Err(ServeResponse::error_with(
                    ErrorCode::InvalidParameter.as_str(),
                    format!("d2d_share must be in [0, 1], got {d2d_share}"),
                ));
            }
            Request::AnalyzeUnder {
                circuit,
                kind,
                model: VariationModel::die_to_die(d2d_share),
            }
        }
        ServeRequest::Arrival { circuit, node } => Request::Arrival { circuit, node },
        ServeRequest::Slack {
            circuit,
            t_req,
            alpha,
        } => Request::Slack {
            circuit,
            t_req,
            alpha,
        },
        ServeRequest::Criticality { circuit, top } => Request::Criticality { circuit, top },
        ServeRequest::Yield { circuit, deadline } => Request::Yield { circuit, deadline },
        ServeRequest::BranchAnalyze { circuit, branch } => {
            Request::BranchAnalyze { circuit, branch }
        }
        ServeRequest::GroupSlack { circuit, kind } => Request::GroupSlack { circuit, kind },
        ServeRequest::Wns { circuit, kind } => Request::Wns { circuit, kind },
        ServeRequest::Tns { circuit, kind } => Request::Tns { circuit, kind },
        ServeRequest::WhatIf { circuit, trials } => Request::WhatIfBatch {
            circuit,
            trials: trials
                .into_iter()
                .map(|resizes| WhatIfTrial {
                    resizes: resizes
                        .into_iter()
                        .map(|(gate, size)| GateResize { gate, size })
                        .collect(),
                })
                .collect(),
        },
        other => {
            return Err(ServeResponse::error(format!(
                "not a workspace query: {other:?}"
            )))
        }
    })
}

/// Lowers a `Workspace` answer onto its wire payload.
fn answer_payload(answer: Answer) -> ServeResponse {
    match answer {
        Answer::Analysis {
            kind,
            moments,
            worst_output,
        } => ServeResponse::Analysis {
            kind,
            mu: moments.mean,
            sigma: moments.std(),
            worst_output,
        },
        Answer::Arrival { node, moments } => ServeResponse::Arrival {
            node,
            mu: moments.mean,
            sigma: moments.std(),
        },
        Answer::Slack { worst, worst_node } => ServeResponse::Slack { worst, worst_node },
        Answer::Criticality { ranking } => ServeResponse::Criticality { ranking },
        Answer::Yield { fraction } => ServeResponse::Yield { fraction },
        Answer::Resized { moments, area } => ServeResponse::Resized {
            mu: moments.mean,
            sigma: moments.std(),
            area,
        },
        Answer::Sized {
            report,
            area,
            optimizer,
        } => {
            // `Size` streams its passes in `ShardState::size`; this arm
            // only fires if a sized answer arrives through another path.
            let final_moments = report.final_moments();
            ServeResponse::Sized {
                mu: final_moments.mean,
                sigma: final_moments.std(),
                area,
                passes: report.passes().len(),
                resized: report.passes().iter().map(|p| p.resized).sum(),
                optimizer: optimizer.to_string(),
            }
        }
        Answer::Forked {
            branch,
            fingerprint,
        } => ServeResponse::Forked {
            branch,
            // Hex keeps all 64 bits; JSON numbers are f64.
            fingerprint: format!("{fingerprint:016x}"),
        },
        Answer::BranchResized { branch, diverged } => {
            ServeResponse::BranchResized { branch, diverged }
        }
        Answer::BranchAnalysis {
            branch,
            moments,
            area,
        } => ServeResponse::BranchAnalysis {
            branch,
            mu: moments.mean,
            sigma: moments.std(),
            area,
        },
        Answer::Committed {
            branch,
            moments,
            area,
        } => ServeResponse::Committed {
            branch,
            mu: moments.mean,
            sigma: moments.std(),
            area,
        },
        Answer::Dropped { branch } => ServeResponse::Dropped { branch },
        Answer::WhatIf { outcomes } => ServeResponse::WhatIf {
            outcomes: outcomes.into_iter().map(answer_payload).collect(),
        },
        Answer::ClockSet {
            period,
            uncertainty,
        } => ServeResponse::ClockSet {
            period,
            uncertainty,
        },
        Answer::GroupSlack { kind, groups } => ServeResponse::GroupSlack { kind, groups },
        Answer::Wns { kind, wns } => ServeResponse::Wns { kind, wns },
        Answer::Tns { kind, tns } => ServeResponse::Tns { kind, tns },
        Answer::Error { code, message } => ServeResponse::Error {
            code: code.as_str().to_owned(),
            message,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vartol::ssta::EngineKind;

    fn small_service(shards: usize) -> Service {
        Service::new(
            Library::synthetic_90nm(),
            ServeConfig::default().with_shards(shards),
        )
    }

    fn register(service: &Service, circuit: &str) {
        let frames = service.call(ServeRequest::Register {
            circuit: circuit.into(),
            preset: Some(circuit.into()),
            bench: None,
        });
        assert!(
            matches!(frames[0].payload, ServeResponse::Registered { .. }),
            "{:?}",
            frames[0].payload
        );
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for name in ["adder_8", "c17", "x", ""] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "stable");
            }
        }
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn register_analyze_and_cache_hit() {
        let service = small_service(2);
        register(&service, "adder_8");
        let analyze = ServeRequest::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        };
        let cold = service.call(analyze.clone());
        let warm = service.call(analyze);
        assert_eq!(cold.len(), 1);
        assert!(matches!(cold[0].payload, ServeResponse::Analysis { .. }));
        // Cached answer is identical payload-for-payload.
        assert_eq!(cold[0].payload, warm[0].payload);
        let stats = service.stats();
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.misses(), 1);
        // Schema additions: the registered circuit gives its shard a
        // non-trivial propagation schedule, and the width is resolved
        // (never the 0 sentinel).
        let row = stats
            .shards
            .iter()
            .find(|s| s.circuits > 0)
            .expect("one shard holds the circuit");
        assert!(row.propagation_threads >= 1);
        assert!(row.propagation_levels > 1);
    }

    #[test]
    fn resize_invalidates_only_the_touched_circuit() {
        let service = small_service(1);
        register(&service, "adder_8");
        register(&service, "cmp_8");
        for circuit in ["adder_8", "cmp_8"] {
            service.call(ServeRequest::Analyze {
                circuit: circuit.into(),
                kind: EngineKind::FullSsta,
            });
        }
        // Resize adder_8: its cached analysis must go, cmp_8's must stay.
        let gate = {
            // Any real gate name; ask the criticality ranking for one.
            let frames = service.call(ServeRequest::Criticality {
                circuit: "adder_8".into(),
                top: 1,
            });
            match &frames[0].payload {
                ServeResponse::Criticality { ranking } => ranking[0].0.clone(),
                other => panic!("{other:?}"),
            }
        };
        let frames = service.call(ServeRequest::Resize {
            circuit: "adder_8".into(),
            gate,
            size: 0,
        });
        assert!(
            matches!(frames[0].payload, ServeResponse::Resized { .. }),
            "{:?}",
            frames[0].payload
        );
        let stats = service.stats();
        assert!(
            stats
                .shards
                .iter()
                .map(|s| s.cache_invalidations)
                .sum::<u64>()
                >= 1
        );
        // cmp_8 must still hit.
        let before = service.stats().hits();
        service.call(ServeRequest::Analyze {
            circuit: "cmp_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert_eq!(service.stats().hits(), before + 1);
        // adder_8 must miss (sizes changed → new key even without
        // invalidation; invalidation keeps the cache from filling with
        // dead entries).
        let misses = service.stats().misses();
        service.call(ServeRequest::Analyze {
            circuit: "adder_8".into(),
            kind: EngineKind::FullSsta,
        });
        assert_eq!(service.stats().misses(), misses + 1);
    }

    #[test]
    fn list_circuits_is_sorted_and_shard_independent() {
        let names = ["adder_8", "adder_16", "cmp_8", "mult_8"];
        let mut listings = Vec::new();
        for shards in [1usize, 2, 4] {
            let service = small_service(shards);
            for name in names {
                register(&service, name);
            }
            let frames = service.call(ServeRequest::ListCircuits);
            let ServeResponse::Circuits { circuits } = &frames[0].payload else {
                panic!("{:?}", frames[0].payload);
            };
            let mut sorted = circuits.clone();
            sorted.sort();
            assert_eq!(&sorted, circuits, "sorted at {shards} shards");
            listings.push(circuits.clone());
        }
        assert!(listings.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn duplicate_registration_is_a_typed_wire_error() {
        let service = small_service(4);
        register(&service, "adder_8");
        let frames = service.call(ServeRequest::Register {
            circuit: "adder_8".into(),
            preset: Some("adder_8".into()),
            bench: None,
        });
        let ServeResponse::Error { code, message } = &frames[0].payload else {
            panic!("{:?}", frames[0].payload);
        };
        assert_eq!(code, "duplicate-circuit");
        assert_eq!(message, "circuit `adder_8` is already registered");
    }

    #[test]
    fn admission_control_rejects_over_depth_without_touching_sessions() {
        let depth = 2;
        let service = Service::new(
            Library::synthetic_90nm(),
            ServeConfig::default()
                .with_shards(1)
                .with_queue_depth(depth),
        );
        register(&service, "adder_8");

        // Park the worker, then fill the queue to its depth.
        let gate = service.fence(0);
        let mut queued = Vec::new();
        for _ in 0..depth {
            let rx = service
                .enqueue(
                    0,
                    ServeRequest::Analyze {
                        circuit: "adder_8".into(),
                        kind: EngineKind::Dsta,
                    },
                )
                .expect("queue has room");
            queued.push(rx);
        }
        // The next request must be rejected immediately with Busy.
        let rejected = service.enqueue(
            0,
            ServeRequest::Analyze {
                circuit: "adder_8".into(),
                kind: EngineKind::Dsta,
            },
        );
        match rejected {
            Err(frame) => assert!(
                matches!(frame.payload, ServeResponse::Busy { shard: 0, depth: d } if d == depth),
                "{:?}",
                frame.payload
            ),
            Ok(_) => panic!("over-depth request must be rejected"),
        }

        // Release the worker: everything that *was* admitted completes.
        drop(gate);
        for rx in queued {
            let frame = rx.recv().expect("queued request completes");
            assert!(matches!(frame.payload, ServeResponse::Analysis { .. }));
        }
        let stats = service.stats();
        assert_eq!(stats.shards[0].busy_rejections, 1);
        // The registration plus every admitted request — and nothing
        // for the rejected one.
        assert_eq!(stats.shards[0].served, 1 + depth as u64);
    }

    #[test]
    fn shutdown_closes_the_service() {
        let service = small_service(2);
        let frames = service.call(ServeRequest::Shutdown);
        assert!(matches!(frames[0].payload, ServeResponse::ShuttingDown));
        assert!(service.is_closed());
        let after = service.call(ServeRequest::ListCircuits);
        let ServeResponse::Error { code, message } = &after[0].payload else {
            panic!("{:?}", after[0].payload);
        };
        assert_eq!(code, "unavailable");
        assert!(message.contains("shut down"));
    }

    #[test]
    fn size_streams_progress_before_the_final_answer() {
        let service = small_service(1);
        register(&service, "cmp_8");
        let frames = service.call(ServeRequest::Size {
            circuit: "cmp_8".into(),
            alpha: 3.0,
            max_passes: Some(1),
            optimizer: None,
            yield_deadline: None,
        });
        assert!(frames.len() >= 2, "progress + final, got {}", frames.len());
        for frame in &frames[..frames.len() - 1] {
            assert!(!frame.done);
            assert!(matches!(frame.payload, ServeResponse::Progress { .. }));
        }
        let last = frames.last().unwrap();
        assert!(last.done);
        assert!(matches!(last.payload, ServeResponse::Sized { .. }));
    }

    #[test]
    fn size_selects_the_named_optimizer_and_reports_it_back() {
        let service = small_service(1);
        register(&service, "cmp_8");
        // Annealing streams one progress frame per restart; the final
        // frame echoes the optimizer that actually ran.
        let frames = service.call(ServeRequest::Size {
            circuit: "cmp_8".into(),
            alpha: 3.0,
            max_passes: Some(2),
            optimizer: Some("annealing".into()),
            yield_deadline: None,
        });
        let last = frames.last().unwrap();
        let ServeResponse::Sized {
            optimizer, passes, ..
        } = &last.payload
        else {
            panic!("{:?}", last.payload);
        };
        assert_eq!(optimizer, "annealing");
        // One restart = one pass row = one progress frame.
        assert_eq!(frames.len() - 1, *passes);
    }

    #[test]
    fn size_rejects_an_unknown_optimizer() {
        let service = small_service(1);
        register(&service, "cmp_8");
        let frames = service.call(ServeRequest::Size {
            circuit: "cmp_8".into(),
            alpha: 3.0,
            max_passes: None,
            optimizer: Some("gradient_descent".into()),
            yield_deadline: None,
        });
        let ServeResponse::Error { code, message } = &frames[0].payload else {
            panic!("{:?}", frames[0].payload);
        };
        assert_eq!(code, "invalid-parameter");
        assert!(message.contains("gradient_descent"), "{message}");
        assert!(message.contains("lagrangian"), "{message}");
    }

    #[test]
    fn size_rejects_a_yield_deadline_on_the_greedy_optimizer() {
        let service = small_service(1);
        register(&service, "cmp_8");
        let frames = service.call(ServeRequest::Size {
            circuit: "cmp_8".into(),
            alpha: 3.0,
            max_passes: None,
            optimizer: None,
            yield_deadline: Some(2500.0),
        });
        let ServeResponse::Error { code, message } = &frames[0].payload else {
            panic!("{:?}", frames[0].payload);
        };
        assert_eq!(code, "invalid-parameter");
        assert!(message.contains("yield"), "{message}");
    }

    #[test]
    fn sequential_verbs_round_trip_and_set_clock_invalidates() {
        let service = small_service(2);
        let frames = service.call(ServeRequest::RegisterSequential {
            circuit: "seq".into(),
            edif: None,
            bench: Some(
                "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(d)\nd = AND(a, q)\ny = OR(q, b)\n".into(),
            ),
        });
        let ServeResponse::Registered {
            registers, gates, ..
        } = frames[0].payload
        else {
            panic!("{:?}", frames[0].payload);
        };
        assert_eq!(registers, 1);
        assert!(gates >= 3);

        // Clocked queries without a clock are a typed error.
        let frames = service.call(ServeRequest::Wns {
            circuit: "seq".into(),
            kind: EngineKind::FullSsta,
        });
        let ServeResponse::Error { code, .. } = &frames[0].payload else {
            panic!("{:?}", frames[0].payload);
        };
        assert_eq!(code, "no-clock");

        let frames = service.call(ServeRequest::SetClock {
            circuit: "seq".into(),
            period: 500.0,
            uncertainty: 0.0,
        });
        assert!(
            matches!(frames[0].payload, ServeResponse::ClockSet { period, .. } if period == 500.0),
            "{:?}",
            frames[0].payload
        );

        // The feedback circuit has endpoints in all four groups.
        let group_slack = ServeRequest::GroupSlack {
            circuit: "seq".into(),
            kind: EngineKind::FullSsta,
        };
        let cold = service.call(group_slack.clone());
        let ServeResponse::GroupSlack { groups, .. } = &cold[0].payload else {
            panic!("{:?}", cold[0].payload);
        };
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.endpoints >= 1), "{groups:?}");
        let reg2reg_at_500 = groups.iter().find(|g| g.group == "reg2reg").unwrap().wns;

        // Second call hits the cache with an identical payload.
        let hits_before = service.stats().hits();
        let warm = service.call(group_slack.clone());
        assert_eq!(cold[0].payload, warm[0].payload);
        assert_eq!(service.stats().hits(), hits_before + 1);

        // Re-clocking invalidates: the next query recomputes under the
        // new period, shifting reg→reg slack by exactly the delta.
        let invalidations_before: u64 = service
            .stats()
            .shards
            .iter()
            .map(|s| s.cache_invalidations)
            .sum();
        service.call(ServeRequest::SetClock {
            circuit: "seq".into(),
            period: 800.0,
            uncertainty: 0.0,
        });
        let after: u64 = service
            .stats()
            .shards
            .iter()
            .map(|s| s.cache_invalidations)
            .sum();
        assert!(after > invalidations_before);
        let reclocked = service.call(group_slack);
        let ServeResponse::GroupSlack { groups, .. } = &reclocked[0].payload else {
            panic!("{:?}", reclocked[0].payload);
        };
        let reg2reg_at_800 = groups.iter().find(|g| g.group == "reg2reg").unwrap().wns;
        assert!(
            (reg2reg_at_800 - reg2reg_at_500 - 300.0).abs() < 1e-9,
            "{reg2reg_at_500} -> {reg2reg_at_800}"
        );
    }

    #[test]
    fn invalid_wire_parameters_answer_errors_not_panics() {
        let service = small_service(1);
        register(&service, "adder_8");
        for (request, needle, expected_code) in [
            (
                ServeRequest::AnalyzeUnder {
                    circuit: "adder_8".into(),
                    kind: EngineKind::FullSsta,
                    d2d_share: 1.5,
                },
                "d2d_share",
                "invalid-parameter",
            ),
            (
                ServeRequest::Size {
                    circuit: "adder_8".into(),
                    alpha: -1.0,
                    max_passes: None,
                    optimizer: None,
                    yield_deadline: None,
                },
                "alpha",
                "invalid-parameter",
            ),
            (
                ServeRequest::Analyze {
                    circuit: "nope".into(),
                    kind: EngineKind::Dsta,
                },
                "unknown circuit",
                "unknown-circuit",
            ),
        ] {
            let frames = service.call(request);
            let ServeResponse::Error { code, message } = &frames[0].payload else {
                panic!("{:?}", frames[0].payload);
            };
            assert_eq!(code, expected_code, "{message}");
            assert!(message.contains(needle), "{message}");
        }
    }
}
