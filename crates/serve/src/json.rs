//! A strict JSON text parser producing the serde shim's [`Value`] tree.
//!
//! The offline `serde`/`serde_json` shims only *serialize* (the
//! workspace historically never read JSON back). The wire protocol
//! changes that: requests arrive as newline-delimited JSON text, so the
//! service needs a real parser. This module is the inverse of the
//! `serde_json` shim's renderer — `parse(render(v)) == v` for every
//! finite tree (round-trip tested below) — and it is deliberately
//! strict: trailing garbage, unterminated strings, bad escapes, and
//! malformed numbers are errors carrying a byte offset, never a guess.
//!
//! When the workspace is ever rebuilt against the real `serde_json`,
//! this module is superseded by `serde_json::from_str::<Value>` and the
//! typed decoders in [`crate::protocol`] by `#[derive(Deserialize)]`.

use serde::Value;

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable cause.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value from `text`; anything but trailing
/// whitespace after it is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("malformed number `{text}`")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Value::String("é".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn composites_parse_with_order_preserved() {
        let v = parse(r#"{"b":[1,2,{"x":null}],"a":"s"}"#).unwrap();
        let Value::Object(fields) = v else {
            panic!("object")
        };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
    }

    #[test]
    fn round_trips_the_shim_renderer() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("c17 \"quoted\"\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.25), Value::Bool(false)]),
            ),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
            ("nested".into(), Value::Object(vec![])),
        ]);
        let compact = serde_json::to_string(&v).unwrap();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = serde_json::to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[1,",
            "{\"a\"1}",
            "\"",
            "\"\\q\"",
            "1 2",
            "{}x",
            "\"\\ud800x\"",
            "01a",
            "- 1",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
