//! The cross-request result cache each shard fronts its `Workspace`
//! with.
//!
//! # Keying
//!
//! An answer to a cacheable request (see
//! [`ServeRequest::cacheable`](crate::protocol::ServeRequest::cacheable))
//! is a pure function of the circuit's current gate sizes, the engine
//! configuration, and the request itself. The key captures exactly
//! that:
//!
//! * `circuit` — the registered name (also the invalidation scope);
//! * `size_fp` — [`vartol_ssta::size_fingerprint`] of the circuit's
//!   current size vector, so any mutation (a `Resize` that slipped past
//!   invalidation, a differently-sized registration) misses rather than
//!   serving stale moments;
//! * `config_fp` — the shard's service fingerprint:
//!   [`vartol_ssta::config_fingerprint`] of the engine configuration
//!   (which deliberately excludes the pure speed knob
//!   `SstaConfig::threads`) folded with the Monte-Carlo budget and
//!   seed. Two services that can disagree on any answer never share a
//!   key; two that differ only in parallelism do;
//! * `query_fp` — FNV-1a of the request's canonical wire line, which
//!   distinguishes request kinds and every parameter (engine kind,
//!   node, deadline, α, …).
//!
//! # Policy
//!
//! Bounded LRU: at `capacity` entries, inserting evicts the
//! least-recently-used entry first. `Resize`/`Size` requests invalidate
//! the touched circuit's entries only — other circuits stay warm.
//! Capacity 0 disables caching entirely (every lookup is a miss and
//! nothing is stored), which the determinism suite uses to prove cached
//! and recomputed answers are byte-identical.

use std::collections::HashMap;

use crate::protocol::ServeResponse;

/// The full identity of one cacheable answer (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registered circuit name.
    pub circuit: String,
    /// Fingerprint of the circuit's current size vector.
    pub size_fp: u64,
    /// Fingerprint of the shard's answer-relevant configuration.
    pub config_fp: u64,
    /// Fingerprint of the request's canonical wire line.
    pub query_fp: u64,
}

#[derive(Debug)]
struct Entry {
    payload: ServeResponse,
    last_used: u64,
}

/// Counter snapshot of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups that returned a stored answer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by the LRU policy.
    pub evictions: u64,
    /// Entries dropped by circuit invalidation.
    pub invalidations: u64,
}

/// A bounded LRU result cache (see the [module docs](self)).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<CacheKey, Entry>,
    clock: u64,
    counters: CacheCounters,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` answers (0 disables
    /// caching).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counter snapshot.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Looks up a stored answer, bumping its recency and the hit/miss
    /// counters.
    pub fn get(&mut self, key: &CacheKey) -> Option<ServeResponse> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.counters.hits += 1;
                Some(entry.payload.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Stores an answer, evicting the least-recently-used entry if the
    /// cache is full. No-op at capacity 0.
    pub fn insert(&mut self, key: CacheKey, payload: ServeResponse) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.counters.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                payload,
                last_used: self.clock,
            },
        );
    }

    /// Drops every entry belonging to `circuit`, returning how many
    /// were dropped.
    pub fn invalidate_circuit(&mut self, circuit: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.circuit != circuit);
        let dropped = before - self.entries.len();
        self.counters.invalidations += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(circuit: &str, query_fp: u64) -> CacheKey {
        CacheKey {
            circuit: circuit.into(),
            size_fp: 1,
            config_fp: 2,
            query_fp,
        }
    }

    fn answer(tag: &str) -> ServeResponse {
        ServeResponse::error(tag)
    }

    #[test]
    fn hit_after_insert_and_counters_track() {
        let mut cache = ResultCache::new(4);
        assert_eq!(cache.get(&key("a", 1)), None);
        cache.insert(key("a", 1), answer("one"));
        assert_eq!(cache.get(&key("a", 1)), Some(answer("one")));
        // A different query fingerprint is a different identity.
        assert_eq!(cache.get(&key("a", 2)), None);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(key("a", 1), answer("1"));
        cache.insert(key("a", 2), answer("2"));
        // Touch 1 so 2 is the LRU victim.
        assert!(cache.get(&key("a", 1)).is_some());
        cache.insert(key("a", 3), answer("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("a", 1)).is_some());
        assert_eq!(cache.get(&key("a", 2)), None, "LRU entry must be gone");
        assert!(cache.get(&key("a", 3)).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = ResultCache::new(2);
        cache.insert(key("a", 1), answer("1"));
        cache.insert(key("a", 2), answer("2"));
        cache.insert(key("a", 1), answer("1b"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.get(&key("a", 1)), Some(answer("1b")));
    }

    #[test]
    fn invalidation_is_scoped_to_one_circuit() {
        let mut cache = ResultCache::new(8);
        cache.insert(key("a", 1), answer("a1"));
        cache.insert(key("a", 2), answer("a2"));
        cache.insert(key("b", 1), answer("b1"));
        assert_eq!(cache.invalidate_circuit("a"), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("b", 1)).is_some());
        assert_eq!(cache.counters().invalidations, 2);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(key("a", 1), answer("1"));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key("a", 1)), None);
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn size_fingerprint_changes_are_misses() {
        let mut cache = ResultCache::new(4);
        cache.insert(key("a", 1), answer("old"));
        let mut resized = key("a", 1);
        resized.size_fp = 99;
        assert_eq!(cache.get(&resized), None);
    }
}
