//! # vartol-serve
//!
//! A sharded, cache-fronted timing service over the
//! [`vartol::workspace::Workspace`]: the long-lived front door that
//! turns the library's owned-handle sessions into something EDA flows
//! and scripts can talk to over a socket.
//!
//! * [`protocol`] — the wire protocol: newline-delimited JSON, typed
//!   [`ServeRequest`]/[`ServeResponse`], response [`Frame`]s carrying a
//!   deterministic payload plus an excluded wall-clock field, and the
//!   strict hand-written request decoder.
//! * [`json`] — the JSON text parser backing that decoder (the offline
//!   serde shims only serialize; see `shims/README.md`).
//! * [`shard`] — the [`Service`]: circuits partitioned across
//!   independent worker threads by name hash, bounded per-shard queues
//!   with immediate [`ServeResponse::Busy`] rejection above the
//!   configured depth, and a per-shard LRU [`cache::ResultCache`] keyed
//!   by `(circuit, size-vector fingerprint, model fingerprint, request
//!   fingerprint)` that `Resize`/`Size` invalidate per circuit.
//! * [`server`] — the transports: a `std::net` TCP listener and a
//!   stdin/stdout REPL sharing one [`serve_lines`] loop, so a script
//!   piped locally and a socket client see byte-identical frames. Long
//!   `Size` runs stream per-pass [`ServeResponse::Progress`] frames
//!   before the final answer.
//!
//! The determinism contract carries through from the workspace:
//! replaying a request script serially yields **byte-identical
//! payloads at every shard count and pool width** (`wall_us` is the
//! only excluded field — see [`protocol::deterministic_part`]).
//!
//! # Example
//!
//! ```
//! use vartol::liberty::Library;
//! use vartol_serve::{ServeConfig, ServeRequest, Service};
//! use vartol_serve::protocol::ServeResponse;
//!
//! let service = Service::new(Library::synthetic_90nm(), ServeConfig::default());
//! service.call(ServeRequest::Register {
//!     circuit: "adder_8".into(),
//!     preset: Some("adder_8".into()),
//!     bench: None,
//! });
//! let frames = service.call(ServeRequest::from_line(
//!     r#"{"Analyze":{"circuit":"adder_8","kind":"FullSsta"}}"#,
//! ).unwrap());
//! assert!(matches!(frames[0].payload, ServeResponse::Analysis { .. }));
//! // The same request again is a cache hit with an identical payload.
//! assert_eq!(service.stats().misses(), 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod server;
pub mod shard;

pub use protocol::{
    Frame, ServeRequest, ServeResponse, ServiceStats, ShardStats, PROTOCOL_VERSION,
};
pub use server::{serve_lines, Server};
pub use shard::{shard_of, ServeConfig, Service};
