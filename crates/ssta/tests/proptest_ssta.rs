//! Property-based tests of the timing engines over random circuits.

use proptest::prelude::*;
use vartol_liberty::Library;
use vartol_netlist::generators::{random_dag, RandomDagConfig};
use vartol_ssta::{Dsta, Fassta, FullSsta, SstaConfig};

fn dag_config() -> impl Strategy<Value = (RandomDagConfig, u64)> {
    (2usize..10, 10usize..80, 3usize..30, any::<u64>()).prop_map(|(inputs, gates, window, seed)| {
        (
            RandomDagConfig {
                inputs,
                gates,
                window,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arrivals_monotone_along_edges((cfg, seed) in dag_config()) {
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        let r = FullSsta::new(&lib, &SstaConfig::default()).analyze(&n);
        for id in n.gate_ids() {
            let here = r.arrival(id);
            prop_assert!(here.mean > 0.0);
            prop_assert!(here.var >= 0.0);
            for &f in n.gate(id).fanins() {
                // A gate arrives strictly after each of its fanins.
                prop_assert!(here.mean > r.arrival(f).mean);
            }
        }
    }

    #[test]
    fn statistical_mean_bounds_deterministic((cfg, seed) in dag_config()) {
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        let config = SstaConfig::default();
        let det = Dsta::new(&lib, &config).analyze(&n).max_delay();
        let full = FullSsta::new(&lib, &config).analyze(&n).circuit_moments();
        let fast = Fassta::new(&lib, &config).analyze(&n).circuit_moments();
        prop_assert!(full.mean >= det - 1e-6, "full {} vs det {det}", full.mean);
        prop_assert!(fast.mean >= det - 1e-6, "fast {} vs det {det}", fast.mean);
    }

    #[test]
    fn deterministic_mode_agrees_across_engines((cfg, seed) in dag_config()) {
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        let config = SstaConfig::deterministic();
        let det = Dsta::new(&lib, &config).analyze(&n).max_delay();
        let full = FullSsta::new(&lib, &config).analyze(&n).circuit_moments();
        let fast = Fassta::new(&lib, &config).analyze(&n).circuit_moments();
        prop_assert!((full.mean - det).abs() < 1e-6);
        prop_assert!((fast.mean - det).abs() < 1e-6);
        prop_assert!(full.std() < 1e-9);
        prop_assert!(fast.std() < 1e-9);
    }

    #[test]
    fn engines_roughly_agree_with_variation((cfg, seed) in dag_config()) {
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        let config = SstaConfig::default();
        let full = FullSsta::new(&lib, &config)
            .analyze(&n)
            .circuit_moments();
        let fast = Fassta::new(&lib, &config).analyze(&n).circuit_moments();
        // The engines may diverge on heavily reconvergent DAGs (FASSTA
        // deliberately ignores correlation), but the bias stays bounded:
        // a narrow window forces every gate to reuse the same few nodes,
        // the worst case for the independence assumption.
        prop_assert!((full.mean - fast.mean).abs() / full.mean < 0.35);
    }

    #[test]
    fn upsizing_everything_never_raises_sigma((cfg, seed) in dag_config()) {
        let lib = Library::synthetic_90nm();
        let mut n = random_dag(cfg, seed, &lib);
        let config = SstaConfig::default();
        let engine = FullSsta::new(&lib, &config);
        let before = engine.analyze(&n).circuit_moments();
        let ids: Vec<_> = n.gate_ids().collect();
        for id in ids {
            let g = n.gate(id);
            let group = lib
                .group(g.function().expect("cell"), g.fanins().len())
                .expect("validated");
            n.set_size(id, group.len() - 1);
        }
        let after = engine.analyze(&n).circuit_moments();
        // Uniform max-sizing attenuates every gate's variation component.
        prop_assert!(
            after.std() <= before.std() * 1.02,
            "sigma {} -> {}",
            before.std(),
            after.std()
        );
    }

    #[test]
    fn wnss_path_always_valid((cfg, seed) in dag_config()) {
        use vartol_ssta::WnssTracer;
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(&n);
        let tracer = WnssTracer::new(config.variation.mu_sigma_coupling());
        let path = tracer.trace(&n, r.arrivals());
        prop_assert!(!path.is_empty());
        for w in path.windows(2) {
            prop_assert!(n.gate(w[1]).fanins().contains(&w[0]));
        }
        prop_assert!(n.is_output(*path.last().expect("non-empty")));
    }
}
