//! Property-based tests of the global-optimizer building blocks over
//! random circuits.
//!
//! Three contracts:
//!
//! * The Lagrangian multiplier update is a projected subgradient step:
//!   multipliers stay non-negative, move with the sign of their
//!   endpoint's violation, and are stationary (KKT-style) exactly where
//!   the violation is zero — checked on violations computed from real
//!   endpoint arrivals of random seeded DAGs.
//! * Continuous-to-discrete rounding never leaves the library's size
//!   ladder, for any float including NaN and the infinities.
//! * The annealing winner the session commits is exactly the circuit
//!   the branch's memoized report describes: replaying the final sizes
//!   through an independent incremental session — and through a
//!   from-scratch analysis — reproduces the reported moments bit for
//!   bit.

use proptest::prelude::*;
use vartol_liberty::Library;
use vartol_netlist::generators::{random_dag, RandomDagConfig};
use vartol_ssta::optimize::{round_to_library, update_multipliers};
use vartol_ssta::{AnnealingConfig, AnnealingSizer, FullSsta, Sizer, SstaConfig, TimingSession};

fn dag_config() -> impl Strategy<Value = (RandomDagConfig, u64)> {
    (2usize..8, 10usize..60, 3usize..20, any::<u64>()).prop_map(|(inputs, gates, window, seed)| {
        (
            RandomDagConfig {
                inputs,
                gates,
                window,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multiplier_updates_are_projected_subgradient_steps(
        (cfg, seed) in dag_config(),
        step in 0.01f64..10.0,
        target_frac in 0.5f64..1.0,
    ) {
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        let report = FullSsta::new(&lib, &SstaConfig::default()).analyze(&n);
        // Real per-endpoint violations: arrival cost against a target
        // placed inside the arrival range, so both signs occur.
        let outputs: Vec<_> = n.outputs().to_vec();
        prop_assert!(!outputs.is_empty(), "random DAGs always have outputs");
        let costs: Vec<f64> = outputs
            .iter()
            .map(|&o| report.arrival(o).mean + 3.0 * report.arrival(o).std())
            .collect();
        let worst = costs.iter().fold(0.0f64, |a, &b| a.max(b));
        let target = worst * target_frac;
        let violations: Vec<f64> = costs.iter().map(|c| c - target).collect();
        let lambdas = vec![1.0 / costs.len() as f64; costs.len()];
        let updated = update_multipliers(&lambdas, &violations, step);
        prop_assert_eq!(updated.len(), lambdas.len());
        for ((&l0, &l1), &v) in lambdas.iter().zip(&updated).zip(&violations) {
            // Projection: never negative.
            prop_assert!(l1 >= 0.0, "multiplier went negative: {l1}");
            if v > 0.0 {
                // A violated endpoint's price strictly rises.
                prop_assert!(l1 > l0, "violation {v} did not raise {l0} -> {l1}");
                prop_assert!((l1 - (l0 + step * v)).abs() < 1e-12);
            } else if v < 0.0 {
                // Slack endpoints relax (down to the projection floor).
                prop_assert!(l1 <= l0, "slack {v} raised {l0} -> {l1}");
                prop_assert!((l1 - (l0 + step * v).max(0.0)).abs() < 1e-12);
            } else {
                // KKT stationarity: zero violation, zero movement.
                prop_assert!((l1 - l0).abs() < 1e-15);
            }
        }
        // A second update at the stationary point stays put: feeding
        // zero violations moves nothing.
        let stationary = update_multipliers(&updated, &vec![0.0; updated.len()], step);
        prop_assert_eq!(stationary, updated);
    }

    #[test]
    fn rounding_never_leaves_the_size_ladder(
        bits in any::<u64>(),
        group_len in 1usize..12,
    ) {
        // Bit-pattern sampling covers NaN, the infinities, and
        // subnormals alongside ordinary floats.
        let x = f64::from_bits(bits);
        let idx = round_to_library(x, group_len);
        prop_assert!(idx < group_len, "index {idx} outside ladder of {group_len}");
        // In-range values round to the nearest rung.
        if x.is_finite() && x >= 0.0 && x <= (group_len - 1) as f64 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let nearest = x.round() as usize;
            prop_assert_eq!(idx, nearest.min(group_len - 1));
        }
    }

    #[test]
    fn rounding_respects_library_group_bounds_on_real_gates(
        (cfg, seed) in dag_config(),
        x in -5.0f64..20.0,
    ) {
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        for id in n.gate_ids() {
            let vartol_netlist::GateKind::Cell { function, .. } = n.gate(id).kind() else {
                continue;
            };
            let arity = n.gate(id).fanins().len();
            let Some(group) = lib.group(*function, arity) else {
                continue;
            };
            let idx = round_to_library(x, group.cells().len());
            // The rounded index is always a real cell of the group.
            prop_assert!(idx < group.cells().len());
        }
    }

    #[test]
    fn committed_annealing_winner_matches_its_memoized_report(
        (cfg, seed) in dag_config(),
        anneal_seed in any::<u64>(),
    ) {
        let lib = Library::synthetic_90nm();
        let n = random_dag(cfg, seed, &lib);
        let config = AnnealingConfig::default()
            .with_restarts(2)
            .with_moves(25)
            .with_seed(anneal_seed)
            .with_ssta(SstaConfig::default());
        let sizer = AnnealingSizer::new(Library::synthetic_90nm(), config.clone());
        let mut sized = n.clone();
        let outcome = sizer.size(&mut sized);

        // The committed circuit replayed through an *independent*
        // incremental session reproduces the reported moments bit for
        // bit — commit() adopted the branch's memoized cone results, so
        // any drift here means the memo and the circuit disagree.
        let mut session = TimingSession::new(lib.clone(), config.ssta.clone(), n.clone());
        session
            .try_restore_sizes(&sized.sizes())
            .expect("winner sizes fit the library");
        let replayed = session.refresh();
        prop_assert_eq!(
            replayed.mean.to_bits(),
            outcome.final_moments.mean.to_bits(),
            "incremental replay drifted from the committed report"
        );
        prop_assert_eq!(
            replayed.var.to_bits(),
            outcome.final_moments.var.to_bits(),
            "incremental replay variance drifted"
        );

        // And a from-scratch analysis of the final netlist agrees too.
        let fresh = FullSsta::new(&lib, &config.ssta)
            .analyze(&sized)
            .circuit_moments();
        prop_assert_eq!(fresh.mean.to_bits(), outcome.final_moments.mean.to_bits());
        prop_assert_eq!(fresh.var.to_bits(), outcome.final_moments.var.to_bits());
    }
}
