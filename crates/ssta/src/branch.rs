//! Copy-on-write circuit versions: owned, forkable [`SessionBranch`]es.
//!
//! [`TimingSession::fork`](crate::TimingSession::fork) replaces the
//! mutate-and-rollback idiom (resize the one authoritative session, read,
//! resize back) with first-class **versions** of a circuit:
//!
//! * A fork captures the parent's refreshed state once into a shared
//!   `ForkBase` (`Arc`-held netlist, propagation state, and chunked
//!   [`CowVec`] snapshots); sibling branches of the same parent state are
//!   pure pointer bumps.
//! * Each branch owns a persistent, structurally-shared size vector —
//!   resizing path-copies one 64-element chunk, everything else stays
//!   physically shared with the base and with sibling branches.
//! * [`SessionBranch::refresh`] recomputes **only the branch's divergent
//!   cone** (the gates whose sizes differ from the base, plus their
//!   fanins), starting from the shared base state. The result — a full
//!   propagation state plus chunk-shared arrival/electrical snapshots —
//!   is memoized **per fork base** keyed by the branch's size
//!   fingerprint, so a sibling that reaches the same size vector adopts
//!   the cone result without recomputing a single node (observable via
//!   [`SessionBranch::recompute_count`]).
//! * A branch can be **committed back**
//!   ([`TimingSession::commit`](crate::TimingSession::commit)) — the
//!   parent adopts the branch's sizes and evaluated state with zero
//!   recomputation — or simply dropped.
//!
//! # Determinism
//!
//! A branch's answers depend only on `(library, config, structure,
//! branch sizes)`: the divergent-cone update runs the same per-node
//! kernels as a from-scratch analysis and is bit-identical to one (the
//! incremental-equals-scratch contract the session layer already ships).
//! Sibling branches share no mutable state except the cone memo, whose
//! entries are pure functions of the size fingerprint — concurrent
//! evaluation at any pool width returns bit-identical answers. A panic
//! inside one branch's evaluation cannot poison siblings: cone
//! computation happens outside the memo lock, and the lock itself is
//! poison-tolerant.
//!
//! # Example
//!
//! ```
//! use vartol_liberty::Library;
//! use vartol_netlist::generators::ripple_carry_adder;
//! use vartol_ssta::{SstaConfig, TimingSession};
//!
//! let lib = Library::synthetic_90nm();
//! let mut session = TimingSession::new(&lib, SstaConfig::default(), ripple_carry_adder(8, &lib));
//! let baseline = session.refresh();
//!
//! // Two divergent what-ifs, side by side, parent untouched.
//! let gate = session.netlist().gate_ids().next().unwrap();
//! let mut a = session.fork();
//! let mut b = session.fork();
//! a.resize(gate, 4);
//! b.resize(gate, 5);
//! let (ma, mb) = (a.refresh(), b.refresh());
//! assert_ne!(ma, mb);
//! assert_eq!(session.refresh(), baseline);
//!
//! // Keep the better one.
//! let keep = if ma.mean < mb.mean { a } else { b };
//! session.commit(keep).unwrap();
//! ```

use crate::config::SstaConfig;
use crate::cow::CowVec;
use crate::delay::CircuitTiming;
use crate::engine::EngineKind;
use crate::fingerprint::size_fingerprint;
use crate::state::{CircuitSummary, TimingState};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, PoisonError};
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist, NetlistError};
use vartol_stats::Moments;

/// Why a branch could not be committed back into its parent session.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BranchError {
    /// The parent has pending resizes; refresh it first.
    ParentDirty,
    /// The parent's sizes changed since the fork (e.g. a sibling branch
    /// committed first): the branch's frozen base no longer matches.
    BaseMismatch {
        /// Size fingerprint the branch was forked from.
        expected: u64,
        /// The parent's current size fingerprint.
        found: u64,
    },
    /// The branch belongs to a different circuit, engine kind, or
    /// configuration than the session it was committed into.
    CircuitMismatch,
}

impl std::fmt::Display for BranchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParentDirty => write!(f, "cannot commit into a dirty session: refresh first"),
            Self::BaseMismatch { expected, found } => write!(
                f,
                "branch base {expected:#018x} no longer matches the parent \
                 ({found:#018x}): the parent diverged since the fork"
            ),
            Self::CircuitMismatch => {
                write!(f, "branch and session disagree on circuit, kind, or config")
            }
        }
    }
}

impl std::error::Error for BranchError {}

/// One cone result: the branch's full propagation state at a divergent
/// size vector, plus chunk-shared snapshots. Memoized per [`ForkBase`]
/// keyed by size fingerprint, shared between sibling branches.
#[derive(Debug)]
pub(crate) struct ConeResult {
    pub(crate) state: TimingState,
    pub(crate) summary: CircuitSummary,
    pub(crate) arrivals: CowVec<Moments>,
    pub(crate) slews: CowVec<f64>,
    pub(crate) delays: CowVec<Moments>,
    /// Node recomputations this cone cost when first evaluated —
    /// diagnostic provenance; adopters of a memoized cone pay zero.
    #[allow(dead_code)]
    pub(crate) visits: u64,
}

/// The frozen state every branch of one fork generation shares: built
/// once per parent refresh, handed out behind an `Arc`.
#[derive(Debug)]
pub(crate) struct ForkBase {
    library: Arc<Library>,
    config: SstaConfig,
    netlist: Netlist,
    state: TimingState,
    summary: CircuitSummary,
    sizes: CowVec<usize>,
    size_fp: u64,
    arrivals_cow: CowVec<Moments>,
    slews_cow: CowVec<f64>,
    delays_cow: CowVec<Moments>,
    /// Sibling-shared memo of divergent cone results, keyed by the
    /// branch size fingerprint. Locked only around lookup/insert — cone
    /// computation happens outside, so a panicking evaluation cannot
    /// leave the lock poisoned mid-write (and lookups tolerate poison
    /// regardless).
    memo: Mutex<HashMap<u64, Arc<ConeResult>>>,
}

impl ForkBase {
    pub(crate) fn new(
        library: Arc<Library>,
        config: SstaConfig,
        netlist: Netlist,
        state: TimingState,
        summary: CircuitSummary,
    ) -> Self {
        let sizes_vec = netlist.sizes();
        let size_fp = size_fingerprint(&sizes_vec);
        let arrivals_cow = CowVec::from_slice(&state.arrivals);
        let slews_cow = CowVec::from_slice(state.timing.slews_slice());
        let delays_cow = CowVec::from_slice(state.timing.delay_moments_slice());
        Self {
            library,
            config,
            netlist,
            state,
            summary,
            sizes: CowVec::from_slice(&sizes_vec),
            size_fp,
            arrivals_cow,
            slews_cow,
            delays_cow,
            memo: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn size_fp(&self) -> u64 {
        self.size_fp
    }

    fn memo_get(&self, fp: u64) -> Option<Arc<ConeResult>> {
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&fp)
            .cloned()
    }

    /// Inserts a freshly computed cone, returning the canonical entry —
    /// if a sibling raced us to the same fingerprint, its (bit-identical)
    /// result wins so both branches share one allocation.
    fn memo_insert(&self, fp: u64, result: Arc<ConeResult>) -> Arc<ConeResult> {
        Arc::clone(
            self.memo
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(fp)
                .or_insert(result),
        )
    }
}

/// An owned copy-on-write version of a circuit, created by
/// [`TimingSession::fork`](crate::TimingSession::fork) (see the
/// [module docs](self)).
///
/// A branch is `Send` and carries no lifetimes: it can be stored in a
/// registry, handed to a worker thread, evaluated, and committed back or
/// dropped. Until it diverges, every byte of its state is physically
/// shared with its fork base (and with sibling branches). Cloning a
/// branch yields a sibling at the same sizes — chunk-shared, same fork
/// base, same memo.
#[derive(Debug, Clone)]
pub struct SessionBranch {
    base: Arc<ForkBase>,
    /// The branch's persistent size vector (path-copied chunks).
    sizes: CowVec<usize>,
    /// Working netlist at branch sizes, materialized on first divergence.
    work: Option<Box<Netlist>>,
    /// The adopted cone result for the current size fingerprint.
    eval: Option<(u64, Arc<ConeResult>)>,
    /// Node recomputations this branch caused (memo hits cost zero).
    visits: u64,
}

impl SessionBranch {
    pub(crate) fn from_base(base: Arc<ForkBase>) -> Self {
        let sizes = base.sizes.clone();
        Self {
            base,
            sizes,
            work: None,
            eval: None,
            visits: 0,
        }
    }

    /// The shared library.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.base.library
    }

    /// A shared handle to the library.
    #[must_use]
    pub fn library_handle(&self) -> Arc<Library> {
        Arc::clone(&self.base.library)
    }

    /// The shared timing configuration.
    #[must_use]
    pub fn config(&self) -> &SstaConfig {
        &self.base.config
    }

    /// The engine flavor inherited from the parent session.
    #[must_use]
    pub fn kind(&self) -> EngineKind {
        self.base.state.kind
    }

    /// The branch's netlist at its current sizes. Until the branch
    /// diverges this is the shared base netlist; afterwards it is the
    /// branch's private working copy.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.work.as_deref().unwrap_or(&self.base.netlist)
    }

    /// Snapshot of all gate sizes.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.sizes.to_vec()
    }

    /// The branch's persistent size vector — chunk-shared with the base
    /// and with sibling branches wherever it has not diverged.
    #[must_use]
    pub fn size_snapshot(&self) -> &CowVec<usize> {
        &self.sizes
    }

    /// Stable fingerprint of the branch's current size vector (same
    /// scheme as [`TimingSession::size_fingerprint`](crate::TimingSession::size_fingerprint),
    /// so service layers can key per-branch caches with it).
    #[must_use]
    pub fn size_fingerprint(&self) -> u64 {
        size_fingerprint(&self.sizes.to_vec())
    }

    /// The size fingerprint of the fork base this branch diverged from.
    #[must_use]
    pub fn base_fingerprint(&self) -> u64 {
        self.base.size_fp
    }

    /// Whether the branch's sizes differ from its fork base.
    #[must_use]
    pub fn is_diverged(&self) -> bool {
        self.sizes != self.base.sizes
    }

    /// Gate indices whose sizes differ from the fork base, ascending.
    #[must_use]
    pub fn diverged_gates(&self) -> Vec<usize> {
        self.sizes.diff_indices(&self.base.sizes)
    }

    /// Node recomputations this branch has caused. Adopting a memoized
    /// sibling cone costs zero — the work-saving meter the fan-out
    /// acceptance test sums.
    #[must_use]
    pub fn recompute_count(&self) -> u64 {
        self.visits
    }

    /// Sets the size of a cell gate in this branch only.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a primary input or out of range (see
    /// [`SessionBranch::try_resize`] for the non-panicking form).
    pub fn resize(&mut self, id: GateId, size: usize) {
        self.try_resize(id, size)
            .unwrap_or_else(|e| panic!("cannot size a primary input or bad id: {e}"));
    }

    /// Sets the size of a cell gate in this branch only, rejecting bad
    /// ids and input nodes instead of panicking; on error the branch is
    /// untouched.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::try_set_size`] errors.
    pub fn try_resize(&mut self, id: GateId, size: usize) -> Result<(), NetlistError> {
        self.materialize().try_set_size(id, size)?;
        self.sizes.set(id.index(), size);
        self.eval = None;
        Ok(())
    }

    /// Restores a full size snapshot into this branch.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::try_restore_sizes`] errors.
    pub fn try_restore_sizes(&mut self, sizes: &[usize]) -> Result<(), NetlistError> {
        self.materialize().try_restore_sizes(sizes)?;
        for (i, &s) in sizes.iter().enumerate() {
            self.sizes.set(i, s);
        }
        self.eval = None;
        Ok(())
    }

    fn materialize(&mut self) -> &mut Netlist {
        self.work
            .get_or_insert_with(|| Box::new(self.base.netlist.clone()))
    }

    /// Brings the branch's analysis up to date with its sizes by
    /// recomputing **only the divergent cone** against the shared base
    /// state — or by adopting a sibling's memoized cone for the same size
    /// fingerprint at zero recomputation cost — and returns the circuit
    /// moments. Bit-identical to a from-scratch session at the branch's
    /// sizes.
    pub fn refresh(&mut self) -> Moments {
        if !self.is_diverged() {
            self.eval = None;
            return self.base.summary.moments;
        }
        let fp = self.size_fingerprint();
        if let Some((efp, e)) = &self.eval {
            if *efp == fp {
                return e.summary.moments;
            }
        }
        if let Some(e) = self.base.memo_get(fp) {
            let moments = e.summary.moments;
            self.eval = Some((fp, e));
            return moments;
        }

        // Cone computation, outside the memo lock: seed the divergent
        // gates plus their fanins (whose loads changed) and propagate
        // from a clone of the shared base state. The clone copies bytes
        // but recomputes nothing; only `update` visits nodes.
        let work = self
            .work
            .as_deref()
            .expect("a diverged branch has a materialized netlist");
        let mut seeds: BTreeSet<usize> = BTreeSet::new();
        for i in self.sizes.diff_indices(&self.base.sizes) {
            seeds.insert(i);
            for &f in work.gate(GateId::from_index(i)).fanins() {
                seeds.insert(f.index());
            }
        }
        let mut state = self.base.state.clone();
        let before = state.visits;
        state.update(work, &self.base.library, &self.base.config, seeds);
        let visits = state.visits - before;
        let summary = state.circuit(work, &self.base.config);
        let arrivals = CowVec::overlay(&self.base.arrivals_cow, &state.arrivals);
        let slews = CowVec::overlay(&self.base.slews_cow, state.timing.slews_slice());
        let delays = CowVec::overlay(&self.base.delays_cow, state.timing.delay_moments_slice());
        let result = Arc::new(ConeResult {
            state,
            summary,
            arrivals,
            slews,
            delays,
            visits,
        });
        self.visits += visits;
        let canonical = self.base.memo_insert(fp, result);
        let moments = canonical.summary.moments;
        self.eval = Some((fp, canonical));
        moments
    }

    /// Circuit output moments at the branch's sizes (refreshing first).
    pub fn circuit_moments(&mut self) -> Moments {
        self.refresh()
    }

    /// The statistically-worst output at the branch's sizes (refreshing
    /// first).
    pub fn worst_output(&mut self) -> GateId {
        self.refresh();
        match &self.eval {
            Some((_, e)) => e.summary.worst_output,
            None => self.base.summary.worst_output,
        }
    }

    /// Arrival moments of one node at the branch's sizes (refreshing
    /// first).
    pub fn arrival(&mut self, id: GateId) -> Moments {
        self.refresh();
        match &self.eval {
            Some((_, e)) => e.state.arrivals[id.index()],
            None => self.base.state.arrivals[id.index()],
        }
    }

    /// The branch's arrival snapshot as a chunked copy-on-write vector:
    /// chunks outside the divergent cone are physically shared with the
    /// fork base and with sibling branches (refreshing first).
    pub fn arrival_snapshot(&mut self) -> &CowVec<Moments> {
        self.refresh();
        match &self.eval {
            Some((_, e)) => &e.arrivals,
            None => &self.base.arrivals_cow,
        }
    }

    /// The branch's electrical slew snapshot, chunk-shared like
    /// [`SessionBranch::arrival_snapshot`] (refreshing first).
    pub fn slew_snapshot(&mut self) -> &CowVec<f64> {
        self.refresh();
        match &self.eval {
            Some((_, e)) => &e.slews,
            None => &self.base.slews_cow,
        }
    }

    /// The branch's per-gate delay-moment snapshot, chunk-shared like
    /// [`SessionBranch::arrival_snapshot`] (refreshing first).
    pub fn delay_snapshot(&mut self) -> &CowVec<Moments> {
        self.refresh();
        match &self.eval {
            Some((_, e)) => &e.delays,
            None => &self.base.delays_cow,
        }
    }

    /// The **frozen** pass-start arrival moments of the fork base,
    /// indexed by [`GateId::index`] — the boundary statistics the
    /// optimizer's subcircuit trials evaluate against (§4.3). These never
    /// change as the branch diverges; use
    /// [`SessionBranch::arrival_snapshot`] for the branch's own state.
    #[must_use]
    pub fn base_arrivals(&self) -> &[Moments] {
        &self.base.state.arrivals
    }

    /// The **frozen** electrical snapshot of the fork base — the other
    /// half of the trial boundary (see
    /// [`SessionBranch::base_arrivals`]).
    #[must_use]
    pub fn base_timing(&self) -> &CircuitTiming {
        &self.base.state.timing
    }

    /// Total cell area at the branch's current sizes.
    #[must_use]
    pub fn total_area(&self) -> f64 {
        self.netlist().total_area(&self.base.library)
    }

    /// Hands the evaluated cone result to the session commit path:
    /// refreshes, then returns `None` when the branch never diverged.
    pub(crate) fn eval_result(&mut self) -> Option<Arc<ConeResult>> {
        self.refresh();
        self.eval.as_ref().map(|(_, e)| Arc::clone(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TimingSession;
    use vartol_netlist::generators::{benchmark, ripple_carry_adder};

    fn session(name: &str) -> TimingSession {
        let lib = Library::synthetic_90nm();
        let n = benchmark(name, &lib).expect("known circuit");
        TimingSession::new(&lib, SstaConfig::default(), n)
    }

    #[test]
    fn undiverged_branch_serves_base_state_for_free() {
        let mut s = session("c432");
        let baseline = s.refresh();
        let mut b = s.fork();
        assert!(!b.is_diverged());
        assert_eq!(b.refresh(), baseline);
        assert_eq!(b.recompute_count(), 0);
        assert_eq!(b.size_fingerprint(), b.base_fingerprint());
    }

    #[test]
    fn branch_refresh_equals_from_scratch_session() {
        let mut s = session("c432");
        s.refresh();
        let g = s.netlist().gate_ids().nth(17).expect("gates");
        let mut b = s.fork();
        b.resize(g, 4);
        let branch_moments = b.refresh();

        let lib = Library::synthetic_90nm();
        let mut fresh = benchmark("c432", &lib).expect("known");
        fresh.set_size(g, 4);
        let scratch = TimingSession::new(&lib, SstaConfig::default(), fresh);
        assert_eq!(branch_moments, scratch.circuit_moments());
        assert_eq!(b.arrival_snapshot().to_vec().as_slice(), {
            let mut sc = scratch;
            sc.refresh();
            &sc.arrivals().to_vec()[..]
        });
    }

    #[test]
    fn divergent_cone_is_recomputed_not_the_whole_circuit() {
        let mut s = session("c1908");
        s.refresh();
        let node_count = s.netlist().node_count() as u64;
        let g = s.netlist().gate_ids().last().expect("gates");
        let mut b = s.fork();
        b.resize(g, 4);
        b.refresh();
        assert!(b.recompute_count() > 0);
        assert!(
            b.recompute_count() < node_count / 10,
            "branch visited {} of {node_count} nodes",
            b.recompute_count()
        );
    }

    #[test]
    fn sibling_with_same_divergence_adopts_the_memoized_cone() {
        let mut s = session("c432");
        s.refresh();
        let g = s.netlist().gate_ids().nth(9).expect("gates");
        let mut a = s.fork();
        let mut b = s.fork();
        a.resize(g, 5);
        b.resize(g, 5);
        let ma = a.refresh();
        let mb = b.refresh();
        assert_eq!(ma, mb);
        assert!(a.recompute_count() > 0, "first branch pays for the cone");
        assert_eq!(b.recompute_count(), 0, "sibling adopts the memo");
        // The adopted snapshots are the same allocation, chunk for chunk.
        let sa = a.arrival_snapshot().clone();
        assert_eq!(
            b.arrival_snapshot().shared_chunks_with(&sa),
            sa.chunk_count()
        );
    }

    #[test]
    fn snapshots_share_chunks_outside_the_cone() {
        let mut s = session("c1908");
        s.refresh();
        let g = s.netlist().gate_ids().last().expect("gates");
        let mut a = s.fork();
        let mut b = s.fork();
        a.resize(g, 4);
        b.resize(g, 5);
        a.refresh();
        b.refresh();
        let sa = a.arrival_snapshot().clone();
        let shared = b.arrival_snapshot().shared_chunks_with(&sa);
        assert!(
            shared > sa.chunk_count() / 2,
            "siblings share most arrival chunks: {shared} of {}",
            sa.chunk_count()
        );
        let za = a.size_snapshot().clone();
        assert!(b.size_snapshot().shared_chunks_with(&za) > za.chunk_count() / 2);
        let ea = a.slew_snapshot().clone();
        assert!(b.slew_snapshot().shared_chunks_with(&ea) > ea.chunk_count() / 2);
    }

    #[test]
    fn commit_adopts_the_branch_without_recomputation() {
        let mut s = session("c432");
        s.refresh();
        let g = s.netlist().gate_ids().nth(12).expect("gates");
        let mut b = s.fork();
        b.resize(g, 4);
        let branch_moments = b.refresh();

        let parent_visits = s.recompute_count();
        let committed = s.commit(b).expect("clean commit");
        assert_eq!(committed, branch_moments);
        assert_eq!(
            s.recompute_count(),
            parent_visits,
            "commit adopts, never recomputes"
        );
        assert_eq!(s.netlist().gate(g).size(), Some(4));
        assert!(!s.is_dirty());
        // The committed state is bit-identical to refreshing the resize
        // directly.
        let scratch = s.report(EngineKind::FullSsta);
        assert_eq!(s.circuit_moments(), scratch.circuit_moments());
        assert_eq!(s.arrivals(), scratch.arrivals());
    }

    #[test]
    fn commit_of_undiverged_branch_is_a_no_op() {
        let mut s = session("c432");
        let baseline = s.refresh();
        let b = s.fork();
        assert_eq!(s.commit(b).expect("no-op commit"), baseline);
    }

    #[test]
    fn commit_after_parent_diverged_is_rejected() {
        let mut s = session("c432");
        s.refresh();
        let gates: Vec<GateId> = s.netlist().gate_ids().collect();
        let mut b = s.fork();
        b.resize(gates[3], 4);
        b.refresh();
        // Parent moves on before the commit.
        s.resize(gates[7], 2);
        s.refresh();
        let err = s.commit(b).expect_err("stale base");
        assert!(matches!(err, BranchError::BaseMismatch { .. }), "{err:?}");
    }

    #[test]
    fn commit_into_dirty_parent_is_rejected() {
        let mut s = session("c432");
        s.refresh();
        let gates: Vec<GateId> = s.netlist().gate_ids().collect();
        let mut b = s.fork();
        b.resize(gates[3], 4);
        s.resize(gates[7], 2); // pending, not refreshed
        assert_eq!(s.commit(b).expect_err("dirty"), BranchError::ParentDirty);
    }

    #[test]
    fn commit_from_a_foreign_session_is_rejected() {
        let lib = Library::synthetic_90nm();
        let mut other =
            TimingSession::new(&lib, SstaConfig::default(), ripple_carry_adder(8, &lib));
        other.refresh();
        let g = other.netlist().gate_ids().next().expect("gates");
        let mut b = other.fork();
        b.resize(g, 3);
        let mut s = session("c432");
        s.refresh();
        let err = s.commit(b).expect_err("foreign circuit");
        assert!(
            matches!(
                err,
                BranchError::CircuitMismatch | BranchError::BaseMismatch { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn sibling_forks_share_one_base_allocation() {
        let mut s = session("c432");
        s.refresh();
        let a = s.fork();
        let b = s.fork();
        assert!(
            Arc::ptr_eq(&a.base, &b.base),
            "sibling forks must share the cached fork base"
        );
        // After a committed mutation the base is rebuilt.
        let g = s.netlist().gate_ids().next().expect("gates");
        s.resize(g, 2);
        s.refresh();
        let c = s.fork();
        assert!(!Arc::ptr_eq(&a.base, &c.base));
    }

    #[test]
    fn branch_panic_does_not_poison_siblings_or_parent() {
        let mut s = session("c432");
        let baseline = s.refresh();
        let g = s.netlist().gate_ids().nth(5).expect("gates");
        let mut bad = s.fork();
        let mut good = s.fork();
        // A size far beyond the library group passes netlist-level
        // validation but panics during evaluation (missing cell).
        bad.resize(g, usize::MAX / 2);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = bad.refresh();
        }));
        assert!(panicked.is_err(), "evaluation of a bogus size must panic");
        drop(bad);
        // Siblings and parent keep working, memo lock un-poisoned.
        good.resize(g, 4);
        let m = good.refresh();
        assert!(m.mean > 0.0);
        assert_eq!(s.refresh(), baseline);
        assert_eq!(s.commit(good).expect("commit survivor").mean, m.mean);
    }

    #[test]
    fn resize_back_to_base_undiverges_the_branch() {
        let mut s = session("c432");
        let baseline = s.refresh();
        let g = s.netlist().gate_ids().nth(3).expect("gates");
        let original = s.netlist().gate(g).size().expect("cell");
        let mut b = s.fork();
        b.resize(g, original + 1);
        assert!(b.is_diverged());
        b.resize(g, original);
        assert!(!b.is_diverged());
        assert_eq!(b.refresh(), baseline);
    }

    #[test]
    fn try_resize_rejects_inputs_and_bad_ids_without_divergence() {
        let mut s = session("c432");
        s.refresh();
        let mut b = s.fork();
        let input = b.netlist().inputs()[0];
        assert!(b.try_resize(input, 2).is_err());
        let bogus = GateId::from_index(b.netlist().node_count() + 3);
        assert!(b.try_resize(bogus, 0).is_err());
        assert!(!b.is_diverged());
    }
}
