//! The shared electrical layer: loads, slews, and per-gate random delays.
//!
//! Every timing engine consumes the same [`CircuitTiming`] snapshot:
//!
//! * **load** of a node — the sum of the input capacitance of every sink
//!   pin it drives, plus the configured primary-output pin load and
//!   optional per-fanout wire capacitance;
//! * **slew** — nominal transition times propagated forward (the worst
//!   fanin slew drives each cell's NLDM slew table);
//! * **nominal delay** — the cell's NLDM delay at (input slew, load);
//! * **delay moments** — the nominal delay widened into a random variable
//!   by the library's variation model (proportional component shrinking
//!   with drive strength, plus the random floor).

use crate::config::SstaConfig;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist, Subcircuit};
use vartol_stats::Moments;

/// A per-node electrical/timing snapshot of a netlist at its current sizes.
///
/// Vectors are indexed by [`GateId::index`]; entries for primary inputs are
/// zero except for `slews` (the configured input slew).
///
/// # Example
///
/// ```
/// use vartol_liberty::Library;
/// use vartol_netlist::generators::ripple_carry_adder;
/// use vartol_ssta::{CircuitTiming, SstaConfig};
///
/// let lib = Library::synthetic_90nm();
/// let n = ripple_carry_adder(4, &lib);
/// let t = CircuitTiming::compute(&n, &lib, &SstaConfig::default());
/// for id in n.gate_ids() {
///     assert!(t.nominal_delay(id) > 0.0);
///     assert!(t.delay_moments(id).var > 0.0, "every gate varies");
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitTiming {
    loads: Vec<f64>,
    slews: Vec<f64>,
    nominal_delays: Vec<f64>,
    delay_moments: Vec<Moments>,
}

/// One node's freshly computed electrical values, produced by the pure
/// [`CircuitTiming::compute_node`] and written back (with change
/// detection) by [`CircuitTiming::apply_node`]. Splitting compute from
/// write is what lets a whole topological level fan out in parallel:
/// the compute half borrows the snapshot immutably.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct NodeElectrical {
    pub load: f64,
    pub slew: f64,
    pub nominal_delay: f64,
    pub delay_moments: Moments,
}

impl CircuitTiming {
    /// Computes loads, slews, and delays for the netlist's current sizes.
    #[must_use]
    pub fn compute(netlist: &Netlist, library: &Library, config: &SstaConfig) -> Self {
        let mut timing = Self::empty(netlist, config);
        // Topological node order: fanin slews are fresh by the time each
        // gate is visited, so one forward sweep settles everything.
        for id in netlist.node_ids() {
            timing.refresh_node(netlist, library, config, id);
        }
        timing
    }

    /// An all-zero snapshot (except primary-input slews) for incremental
    /// construction via [`CircuitTiming::refresh_node`].
    pub(crate) fn empty(netlist: &Netlist, config: &SstaConfig) -> Self {
        let n = netlist.node_count();
        let mut slews = vec![0.0f64; n];
        for &i in netlist.inputs() {
            slews[i.index()] = config.input_slew;
        }
        Self {
            loads: vec![0.0f64; n],
            slews,
            nominal_delays: vec![0.0f64; n],
            delay_moments: vec![Moments::zero(); n],
        }
    }

    /// Recomputes the electrical state of one node from the netlist's
    /// *current* sizes and this snapshot's fanin slews, returning
    /// `(slew_changed, delay_changed)` so incremental callers know whether
    /// to propagate to the node's fanouts. Exact recomputation: a node
    /// whose inputs did not change reproduces its stored values bit for
    /// bit, which is what lets incremental re-analysis match a from-scratch
    /// run exactly.
    pub(crate) fn refresh_node(
        &mut self,
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        id: GateId,
    ) -> (bool, bool) {
        let fresh = self.compute_node(netlist, library, config, id);
        self.apply_node(netlist, id, fresh)
    }

    /// The pure compute half of [`CircuitTiming::refresh_node`]: derives
    /// one node's fresh electrical values from the netlist's current
    /// sizes and this snapshot's fanin slews **without mutating
    /// anything**. Because a node's inputs live at strictly lower
    /// topological levels, every node of one level can be computed
    /// concurrently against the same `&self` — the level-parallel arena
    /// fan-out in [`crate::state`] relies on exactly this.
    pub(crate) fn compute_node(
        &self,
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        id: GateId,
    ) -> NodeElectrical {
        let load = Self::load_of(netlist, library, config, id);
        let g = netlist.gate(id);
        if g.is_input() {
            // Input slews are configuration constants and input delays are
            // identically zero; only the (unused) load can change.
            return NodeElectrical {
                load,
                slew: self.slews[id.index()],
                nominal_delay: 0.0,
                delay_moments: Moments::zero(),
            };
        }
        let cell = netlist.cell(id, library);
        let in_slew = g
            .fanins()
            .iter()
            .map(|f| self.slews[f.index()])
            .fold(0.0f64, f64::max);
        let d = cell.delay(in_slew, load).max(0.0);
        let slew = cell.output_slew(in_slew, load).max(0.0);
        let moments = config.variation.delay_moments(d, cell.drive());
        NodeElectrical {
            load,
            slew,
            nominal_delay: d,
            delay_moments: moments,
        }
    }

    /// The write half of [`CircuitTiming::refresh_node`]: stores one
    /// node's freshly computed values and reports
    /// `(slew_changed, delay_changed)` via exact bit comparisons against
    /// the previous snapshot. Inputs store their load only and never
    /// report a change (their slew and zero delay are constants).
    pub(crate) fn apply_node(
        &mut self,
        netlist: &Netlist,
        id: GateId,
        fresh: NodeElectrical,
    ) -> (bool, bool) {
        self.loads[id.index()] = fresh.load;
        if netlist.gate(id).is_input() {
            return (false, false);
        }
        let slew_changed = fresh.slew.to_bits() != self.slews[id.index()].to_bits();
        let delay_changed = fresh.delay_moments != self.delay_moments[id.index()]
            || fresh.nominal_delay.to_bits() != self.nominal_delays[id.index()].to_bits();
        self.slews[id.index()] = fresh.slew;
        self.nominal_delays[id.index()] = fresh.nominal_delay;
        self.delay_moments[id.index()] = fresh.delay_moments;
        (slew_changed, delay_changed)
    }

    fn load_of(netlist: &Netlist, library: &Library, config: &SstaConfig, id: GateId) -> f64 {
        let g = netlist.gate(id);
        let mut load = 0.0;
        for &sink in g.fanouts() {
            load += netlist.cell(sink, library).input_cap() + config.wire_cap_per_fanout;
        }
        if netlist.is_output(id) {
            load += config.po_load;
        }
        load
    }

    /// Capacitive load driven by node `id`.
    #[must_use]
    pub fn load(&self, id: GateId) -> f64 {
        self.loads[id.index()]
    }

    /// Nominal output transition time at node `id`.
    #[must_use]
    pub fn slew(&self, id: GateId) -> f64 {
        self.slews[id.index()]
    }

    /// Nominal delay through gate `id` (0 for primary inputs).
    #[must_use]
    pub fn nominal_delay(&self, id: GateId) -> f64 {
        self.nominal_delays[id.index()]
    }

    /// Random-variable delay of gate `id` (zero moments for inputs).
    #[must_use]
    pub fn delay_moments(&self, id: GateId) -> Moments {
        self.delay_moments[id.index()]
    }

    /// The raw per-node slew vector, for the branch layer's chunked
    /// copy-on-write electrical snapshots.
    pub(crate) fn slews_slice(&self) -> &[f64] {
        &self.slews
    }

    /// The raw per-node delay-moment vector, for the branch layer's
    /// chunked copy-on-write electrical snapshots.
    pub(crate) fn delay_moments_slice(&self) -> &[Moments] {
        &self.delay_moments
    }

    /// Recomputes load, slew, and delay for the members of a subcircuit
    /// against the netlist's *current* sizes, returning delay moments keyed
    /// by position in `sub.members()`.
    ///
    /// Loads and slews of member gates are refreshed (a resized member
    /// loads its fanins harder, changing their delays and output slews);
    /// boundary nodes keep the slews of this snapshot. Members are visited
    /// in topological order, so refreshed slews propagate inside the
    /// region.
    #[must_use]
    pub fn member_delays(
        &self,
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        sub: &Subcircuit,
    ) -> Vec<Moments> {
        use std::collections::HashMap;
        let mut fresh_slews: HashMap<vartol_netlist::GateId, f64> =
            HashMap::with_capacity(sub.members().len());
        sub.members()
            .iter()
            .map(|&m| {
                let g = netlist.gate(m);
                let cell = netlist.cell(m, library);
                let in_slew = g
                    .fanins()
                    .iter()
                    .map(|f| fresh_slews.get(f).copied().unwrap_or(self.slews[f.index()]))
                    .fold(0.0f64, f64::max);
                let load = Self::load_of(netlist, library, config, m);
                let d = cell.delay(in_slew, load).max(0.0);
                fresh_slews.insert(m, cell.output_slew(in_slew, load).max(0.0));
                config.variation.delay_moments(d, cell.drive())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::NetlistBuilder;

    fn chain3() -> (Netlist, Vec<GateId>) {
        let mut b = NetlistBuilder::new("chain3");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        let g2 = b.gate("g2", LogicFunction::Inv, &[g1]);
        b.mark_output(g2);
        (b.build().expect("valid"), vec![a, g0, g1, g2])
    }

    #[test]
    fn loads_sum_sink_caps_and_po_load() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let (n, ids) = chain3();
        let t = CircuitTiming::compute(&n, &lib, &config);
        let x1_cap = lib.cell_by_name("NOT_X1").expect("inv").input_cap();
        assert!(
            (t.load(ids[0]) - x1_cap).abs() < 1e-12,
            "PI drives one X1 inverter"
        );
        assert!((t.load(ids[1]) - x1_cap).abs() < 1e-12);
        assert!(
            (t.load(ids[3]) - config.po_load).abs() < 1e-12,
            "PO load only"
        );
    }

    #[test]
    fn upsizing_a_sink_raises_driver_load_and_delay() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let (mut n, ids) = chain3();
        let t0 = CircuitTiming::compute(&n, &lib, &config);
        n.set_size(ids[2], 5); // upsize g1: loads g0 harder
        let t1 = CircuitTiming::compute(&n, &lib, &config);
        assert!(t1.load(ids[1]) > t0.load(ids[1]));
        assert!(t1.nominal_delay(ids[1]) > t0.nominal_delay(ids[1]));
        // And g1 itself got faster (same load, more drive).
        assert!(t1.nominal_delay(ids[2]) < t0.nominal_delay(ids[2]));
    }

    #[test]
    fn upsizing_shrinks_own_sigma() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let (mut n, ids) = chain3();
        let t0 = CircuitTiming::compute(&n, &lib, &config);
        let s0 = t0.delay_moments(ids[2]).std();
        n.set_size(ids[2], 5);
        let t1 = CircuitTiming::compute(&n, &lib, &config);
        let s1 = t1.delay_moments(ids[2]).std();
        assert!(s1 < s0, "bigger drive, less variation: {s1} < {s0}");
    }

    #[test]
    fn input_nodes_have_zero_delay_and_config_slew() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let (n, ids) = chain3();
        let t = CircuitTiming::compute(&n, &lib, &config);
        assert_eq!(t.nominal_delay(ids[0]), 0.0);
        assert_eq!(t.delay_moments(ids[0]), Moments::zero());
        assert_eq!(t.slew(ids[0]), config.input_slew);
    }

    #[test]
    fn deterministic_config_gives_zero_variance() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::deterministic();
        let (n, ids) = chain3();
        let t = CircuitTiming::compute(&n, &lib, &config);
        assert_eq!(t.delay_moments(ids[1]).var, 0.0);
        assert!(t.nominal_delay(ids[1]) > 0.0);
    }

    #[test]
    fn member_delays_match_full_recompute_after_resize() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let (mut n, ids) = chain3();
        let t0 = CircuitTiming::compute(&n, &lib, &config);
        let sub = Subcircuit::extract(&n, ids[2], 1); // members g0,g1,g2... depth1 around g1-index
        n.set_size(ids[2], 4);
        let overlay = t0.member_delays(&n, &lib, &config, &sub);
        let t1 = CircuitTiming::compute(&n, &lib, &config);
        for (pos, &m) in sub.members().iter().enumerate() {
            let want = t1.delay_moments(m);
            let got = overlay[pos];
            // Slews differ slightly (overlay uses stale boundary slews);
            // means must agree within a small tolerance.
            assert!(
                (got.mean - want.mean).abs() < 0.15 * want.mean.max(1.0),
                "member {pos}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn wire_cap_adds_per_fanout() {
        let lib = Library::synthetic_90nm();
        let (n, ids) = chain3();
        let base = SstaConfig::default();
        let wired = SstaConfig {
            wire_cap_per_fanout: 0.5,
            ..base.clone()
        };
        let t0 = CircuitTiming::compute(&n, &lib, &base);
        let t1 = CircuitTiming::compute(&n, &lib, &wired);
        assert!((t1.load(ids[1]) - t0.load(ids[1]) - 0.5).abs() < 1e-12);
    }
}
