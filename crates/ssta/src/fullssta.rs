//! FULLSSTA — the accurate outer statistical timing engine (§4.2).
//!
//! Based on the discrete-PDF propagation of Liou et al. (DAC'01, the
//! paper's reference [15]): every arrival time is a discretized PDF at a
//! user-controlled sampling rate (10–15 points), propagated with `sum`
//! (convolution) and `max` (CDF product) and re-discretized after each
//! operation. Besides the PDFs, the engine stores the mean and variance at
//! every node — exactly what the paper prescribes: *"In addition to
//! propagating pdfs, we also calculate the mean and variance at every node
//! and store these values for use in the fast timing engine (FASSTA)."*

use crate::config::{CorrelationMode, SstaConfig};
use crate::delay::CircuitTiming;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::clark::clark_max_correlated;
use vartol_stats::{DiscretePdf, Moments};

/// The accurate discrete-PDF statistical timing engine.
#[derive(Debug, Clone)]
pub struct FullSsta<'l> {
    library: &'l Library,
    config: SstaConfig,
}

/// Result of a FULLSSTA analysis: per-node arrival PDFs and moments, plus
/// the circuit-level output distribution `RV_O = max over outputs`.
#[derive(Debug, Clone, PartialEq)]
pub struct FullSstaResult {
    arrivals: Vec<Moments>,
    pdfs: Vec<DiscretePdf>,
    circuit_pdf: DiscretePdf,
    timing: CircuitTiming,
}

impl<'l> FullSsta<'l> {
    /// Creates an engine over a library with the given configuration.
    #[must_use]
    pub fn new(library: &'l Library, config: SstaConfig) -> Self {
        Self { library, config }
    }

    /// Propagates arrival PDFs through the netlist.
    ///
    /// With [`CorrelationMode::LevelBuckets`] each node also carries a
    /// vector of per-level variance contributions; the correlation of two
    /// arrivals at a max is estimated from the bucket-wise overlap of
    /// those vectors (shared path prefixes accumulate identical bucket
    /// entries), the max *moments* come from Clark's correlated formulas,
    /// and the independent CDF-product shape is moment-corrected to match.
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    #[must_use]
    pub fn analyze(&self, netlist: &Netlist) -> FullSstaResult {
        let timing = CircuitTiming::compute(netlist, self.library, &self.config);
        let n = self.config.pdf_samples;
        let track = self.config.correlation == CorrelationMode::LevelBuckets;

        let levels = netlist.levels();
        let buckets = levels.iter().max().copied().unwrap_or(0) + 1;
        let zero = DiscretePdf::deterministic(0.0);
        let mut pdfs: Vec<DiscretePdf> = vec![zero.clone(); netlist.node_count()];
        // Per-level variance contribution vectors (empty when not tracked).
        let mut contribs: Vec<Vec<f64>> = if track {
            vec![vec![0.0; buckets]; netlist.node_count()]
        } else {
            Vec::new()
        };

        for id in netlist.node_ids() {
            let g = netlist.gate(id);
            if g.is_input() {
                continue;
            }
            // Max of fanin arrivals (deterministic zero for PI-only fanin).
            let mut acc: Option<(DiscretePdf, Vec<f64>)> = None;
            for &f in g.fanins() {
                let fp = &pdfs[f.index()];
                let fv = if track {
                    contribs[f.index()].clone()
                } else {
                    Vec::new()
                };
                acc = Some(match acc {
                    None => (fp.clone(), fv),
                    Some((apdf, av)) => Self::correlated_max(&apdf, av, fp, &fv, n, track),
                });
            }
            let (arrival, mut v) = acc.unwrap_or_else(|| {
                (
                    zero.clone(),
                    if track {
                        vec![0.0; buckets]
                    } else {
                        Vec::new()
                    },
                )
            });
            let delay_m = timing.delay_moments(id);
            let delay = DiscretePdf::from_moments(delay_m, n);
            pdfs[id.index()] = arrival.add_rebinned(&delay, n);
            if track {
                v[levels[id.index()]] += delay_m.var;
                contribs[id.index()] = v;
            }
        }

        // Circuit output RV: max over all primary outputs, with the same
        // correlation handling.
        let mut acc: Option<(DiscretePdf, Vec<f64>)> = None;
        for &o in netlist.outputs() {
            let op = &pdfs[o.index()];
            let ov = if track {
                contribs[o.index()].clone()
            } else {
                Vec::new()
            };
            acc = Some(match acc {
                None => (op.clone(), ov),
                Some((apdf, av)) => Self::correlated_max(&apdf, av, op, &ov, n, track),
            });
        }
        let circuit_pdf = acc.expect("netlists have at least one output").0;

        let arrivals = pdfs.iter().map(DiscretePdf::moments).collect();
        FullSstaResult {
            arrivals,
            pdfs,
            circuit_pdf,
            timing,
        }
    }

    /// One pairwise max with optional correlation handling; returns the
    /// result PDF and the blended contribution vector.
    fn correlated_max(
        a: &DiscretePdf,
        av: Vec<f64>,
        b: &DiscretePdf,
        bv: &[f64],
        n: usize,
        track: bool,
    ) -> (DiscretePdf, Vec<f64>) {
        if !track {
            return (a.max_rebinned(b, n), av);
        }
        let ma = a.moments();
        let mb = b.moments();
        let rho = Self::overlap_correlation(&av, bv, ma.var, mb.var);
        let cm = clark_max_correlated(ma, mb, rho);
        let shape = a.max(b);
        let pdf = shape.with_moments(cm.max, n).rebin(n);
        let t = cm.tightness_a;
        let v = av
            .iter()
            .zip(bv)
            .map(|(x, y)| t * x + (1.0 - t) * y)
            .collect();
        (pdf, v)
    }

    /// Correlation estimate from shared per-level variance: the bucket-wise
    /// minimum approximates the variance of the common path prefix.
    fn overlap_correlation(av: &[f64], bv: &[f64], var_a: f64, var_b: f64) -> f64 {
        if var_a <= 1e-12 || var_b <= 1e-12 {
            return 0.0;
        }
        let shared: f64 = av.iter().zip(bv).map(|(x, y)| x.min(*y)).sum();
        (shared / (var_a * var_b).sqrt()).clamp(0.0, 1.0)
    }
}

impl FullSstaResult {
    /// Stored arrival moments at a node (the FASSTA boundary data).
    #[must_use]
    pub fn arrival(&self, id: GateId) -> Moments {
        self.arrivals[id.index()]
    }

    /// All stored arrival moments, indexed by [`GateId::index`].
    #[must_use]
    pub fn arrivals(&self) -> &[Moments] {
        &self.arrivals
    }

    /// The full arrival PDF at a node.
    #[must_use]
    pub fn arrival_pdf(&self, id: GateId) -> &DiscretePdf {
        &self.pdfs[id.index()]
    }

    /// The circuit-level output distribution `RV_O` (max over outputs).
    #[must_use]
    pub fn circuit_pdf(&self) -> &DiscretePdf {
        &self.circuit_pdf
    }

    /// Mean and variance of `RV_O` — the quantity the optimization
    /// problem in §3 minimizes.
    #[must_use]
    pub fn circuit_moments(&self) -> Moments {
        self.circuit_pdf.moments()
    }

    /// The electrical snapshot the analysis used.
    #[must_use]
    pub fn timing(&self) -> &CircuitTiming {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsta::Dsta;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::generators::{parity_tree, ripple_carry_adder};
    use vartol_netlist::NetlistBuilder;

    #[test]
    fn chain_accumulates_mean_and_variance() {
        let lib = Library::synthetic_90nm();
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let mut prev = a;
        for i in 0..8 {
            prev = b.gate(format!("g{i}"), LogicFunction::Inv, &[prev]);
        }
        b.mark_output(prev);
        let n = b.build().expect("valid");
        let r = FullSsta::new(&lib, SstaConfig::default()).analyze(&n);
        let m = r.circuit_moments();
        assert!(m.mean > 0.0);
        assert!(m.var > 0.0);
        // Variance of a pure chain = sum of arc variances (no max ops).
        let want_var: f64 = n
            .gate_ids()
            .map(|id| r.timing().delay_moments(id).var)
            .sum();
        assert!(
            (m.var - want_var).abs() < 0.1 * want_var,
            "{} vs {want_var}",
            m.var
        );
    }

    #[test]
    fn mean_tracks_deterministic_sta() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let config = SstaConfig::default();
        let stat = FullSsta::new(&lib, config.clone()).analyze(&n);
        let det = Dsta::new(&lib, config).analyze(&n);
        // Statistical mean >= deterministic longest path (max of RVs
        // exceeds max of means) but within a few sigma of it.
        let m = stat.circuit_moments();
        assert!(m.mean >= det.max_delay() - 1e-9);
        assert!(m.mean < det.max_delay() + 4.0 * m.std());
    }

    #[test]
    fn deterministic_variation_degenerates_to_dsta() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(6, &lib);
        let config = SstaConfig::deterministic();
        let stat = FullSsta::new(&lib, config.clone()).analyze(&n);
        let det = Dsta::new(&lib, config).analyze(&n);
        let m = stat.circuit_moments();
        assert!((m.mean - det.max_delay()).abs() < 1e-6);
        assert!(m.std() < 1e-9);
    }

    #[test]
    fn parity_tree_has_balanced_arrivals() {
        let lib = Library::synthetic_90nm();
        let n = parity_tree(16, &lib);
        let r = FullSsta::new(&lib, SstaConfig::default()).analyze(&n);
        // Single output; its arrival is the circuit RV.
        let o = n.outputs()[0];
        assert_eq!(r.arrival(o), r.circuit_moments());
    }

    #[test]
    fn sigma_over_mu_falls_with_depth() {
        // The paper's observation: "the number of gates along a timing path
        // is inversely proportional to the variance along that path".
        let lib = Library::synthetic_90nm();
        let engine = FullSsta::new(&lib, SstaConfig::default());
        let chain = |len: usize| {
            let mut b = NetlistBuilder::new("c");
            let a = b.input("a");
            let mut prev = a;
            for i in 0..len {
                prev = b.gate(format!("g{i}"), LogicFunction::Inv, &[prev]);
            }
            b.mark_output(prev);
            engine
                .analyze(&b.build().expect("valid"))
                .circuit_moments()
                .sigma_over_mu()
        };
        let short = chain(4);
        let long = chain(32);
        assert!(
            long < short,
            "deeper chain has smaller sigma/mu: {long} < {short}"
        );
    }

    #[test]
    fn upsizing_reduces_circuit_sigma() {
        let lib = Library::synthetic_90nm();
        let mut n = ripple_carry_adder(4, &lib);
        let engine = FullSsta::new(&lib, SstaConfig::default());
        let before = engine.analyze(&n).circuit_moments();
        // Upsize everything to near max.
        let ids: Vec<_> = n.gate_ids().collect();
        for id in ids {
            n.set_size(id, 4);
        }
        let after = engine.analyze(&n).circuit_moments();
        assert!(
            after.std() < before.std(),
            "{} < {}",
            after.std(),
            before.std()
        );
    }

    #[test]
    fn more_samples_refine_but_do_not_upend_the_estimate() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let coarse = FullSsta::new(&lib, SstaConfig::default().with_pdf_samples(8))
            .analyze(&n)
            .circuit_moments();
        let fine = FullSsta::new(&lib, SstaConfig::default().with_pdf_samples(30))
            .analyze(&n)
            .circuit_moments();
        assert!((coarse.mean - fine.mean).abs() / fine.mean < 0.02);
        assert!((coarse.std() - fine.std()).abs() / fine.std() < 0.25);
    }

    #[test]
    fn pdf_bounded_support_and_mass() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(4, &lib);
        let r = FullSsta::new(&lib, SstaConfig::default()).analyze(&n);
        let pdf = r.circuit_pdf();
        assert!(pdf.len() <= SstaConfig::default().pdf_samples);
        let total: f64 = pdf.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pdf.min_value() > 0.0, "arrivals are positive");
    }
}
