//! FULLSSTA — the accurate outer statistical timing engine (§4.2).
//!
//! Based on the discrete-PDF propagation of Liou et al. (DAC'01, the
//! paper's reference \[15\]): every arrival time is a discretized PDF at a
//! user-controlled sampling rate (10–15 points), propagated with `sum`
//! (convolution) and `max` (CDF product) and re-discretized after each
//! operation. Besides the PDFs, the engine stores the mean and variance at
//! every node — exactly what the paper prescribes: *"In addition to
//! propagating pdfs, we also calculate the mean and variance at every node
//! and store these values for use in the fast timing engine (FASSTA)."*
//!
//! With [`CorrelationMode::LevelBuckets`](crate::CorrelationMode) each node
//! also carries a vector of per-level variance contributions; the
//! correlation of two arrivals at a max is estimated from the bucket-wise
//! overlap of those vectors (shared path prefixes accumulate identical
//! bucket entries), the max *moments* come from Clark's correlated
//! formulas, and the independent CDF-product shape is moment-corrected to
//! match.
//!
//! The propagation kernel itself is shared with
//! [`TimingSession`](crate::TimingSession): a from-scratch `analyze` is an
//! incremental update seeded with every node, which is what guarantees
//! session refreshes reproduce this engine exactly.
//!
//! Under a correlated [`VariationModel`](crate::variation::VariationModel)
//! with global (die-to-die) sources, the engine **conditions**: one full
//! PDF propagation per Gauss–Hermite lane (every gate delay shifted by
//! `σ·ρ·x_q`, variance shrunk to the residual), recombined per node by
//! the law of total variance — see [`crate::variation`] for the math and
//! `tests/correlated_variation.rs` for the ≤2% agreement with correlated
//! Monte Carlo. The default (empty) model skips all of it, bit for bit.
//!
//! Propagation runs through the level-ordered arena
//! (`state.rs`): each level's (node × lane) PDF kernels — the
//! Gauss–Hermite lanes are independent work items — fan out over
//! [`SstaConfig::threads`](crate::SstaConfig) workers and join
//! serially in node order, so reports are **bit-identical at every
//! thread width**, and the single-lane empty-model path reproduces
//! the pre-arena implementation bit for bit
//! (`tests/engine_determinism.rs`).

use crate::config::SstaConfig;
use crate::engine::{EngineKind, TimingEngine, TimingReport};
use crate::state::TimingState;
use vartol_liberty::Library;
use vartol_netlist::Netlist;

/// The accurate discrete-PDF statistical timing engine.
#[derive(Debug, Clone, Copy)]
pub struct FullSsta<'a> {
    library: &'a Library,
    config: &'a SstaConfig,
}

impl<'a> FullSsta<'a> {
    /// Creates an engine over a library with the given configuration.
    #[must_use]
    pub fn new(library: &'a Library, config: &'a SstaConfig) -> Self {
        Self { library, config }
    }

    /// Propagates arrival PDFs through the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    #[must_use]
    pub fn analyze(&self, netlist: &Netlist) -> TimingReport {
        TimingState::full(netlist, self.library, self.config, EngineKind::FullSsta)
            .into_report(netlist, self.config)
    }
}

impl TimingEngine for FullSsta<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::FullSsta
    }

    fn analyze(&self, netlist: &Netlist) -> TimingReport {
        FullSsta::analyze(self, netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsta::Dsta;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::generators::{parity_tree, ripple_carry_adder};
    use vartol_netlist::NetlistBuilder;

    #[test]
    fn chain_accumulates_mean_and_variance() {
        let lib = Library::synthetic_90nm();
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let mut prev = a;
        for i in 0..8 {
            prev = b.gate(format!("g{i}"), LogicFunction::Inv, &[prev]);
        }
        b.mark_output(prev);
        let n = b.build().expect("valid");
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(&n);
        let m = r.circuit_moments();
        assert!(m.mean > 0.0);
        assert!(m.var > 0.0);
        // Variance of a pure chain = sum of arc variances (no max ops).
        let want_var: f64 = n
            .gate_ids()
            .map(|id| r.timing().delay_moments(id).var)
            .sum();
        assert!(
            (m.var - want_var).abs() < 0.1 * want_var,
            "{} vs {want_var}",
            m.var
        );
    }

    #[test]
    fn mean_tracks_deterministic_sta() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let config = SstaConfig::default();
        let stat = FullSsta::new(&lib, &config).analyze(&n);
        let det = Dsta::new(&lib, &config).detailed(&n);
        // Statistical mean >= deterministic longest path (max of RVs
        // exceeds max of means) but within a few sigma of it.
        let m = stat.circuit_moments();
        assert!(m.mean >= det.max_delay() - 1e-9);
        assert!(m.mean < det.max_delay() + 4.0 * m.std());
    }

    #[test]
    fn deterministic_variation_degenerates_to_dsta() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(6, &lib);
        let config = SstaConfig::deterministic();
        let stat = FullSsta::new(&lib, &config).analyze(&n);
        let det = Dsta::new(&lib, &config).detailed(&n);
        let m = stat.circuit_moments();
        assert!((m.mean - det.max_delay()).abs() < 1e-6);
        assert!(m.std() < 1e-9);
    }

    #[test]
    fn parity_tree_has_balanced_arrivals() {
        let lib = Library::synthetic_90nm();
        let n = parity_tree(16, &lib);
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(&n);
        // Single output; its arrival is the circuit RV.
        let o = n.outputs()[0];
        assert_eq!(r.arrival(o), r.circuit_moments());
        assert_eq!(r.worst_output(), o);
    }

    #[test]
    fn sigma_over_mu_falls_with_depth() {
        // The paper's observation: "the number of gates along a timing path
        // is inversely proportional to the variance along that path".
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let engine = FullSsta::new(&lib, &config);
        let chain = |len: usize| {
            let mut b = NetlistBuilder::new("c");
            let a = b.input("a");
            let mut prev = a;
            for i in 0..len {
                prev = b.gate(format!("g{i}"), LogicFunction::Inv, &[prev]);
            }
            b.mark_output(prev);
            engine
                .analyze(&b.build().expect("valid"))
                .circuit_moments()
                .sigma_over_mu()
        };
        let short = chain(4);
        let long = chain(32);
        assert!(
            long < short,
            "deeper chain has smaller sigma/mu: {long} < {short}"
        );
    }

    #[test]
    fn upsizing_reduces_circuit_sigma() {
        let lib = Library::synthetic_90nm();
        let mut n = ripple_carry_adder(4, &lib);
        let config = SstaConfig::default();
        let engine = FullSsta::new(&lib, &config);
        let before = engine.analyze(&n).circuit_moments();
        // Upsize everything to near max.
        let ids: Vec<_> = n.gate_ids().collect();
        for id in ids {
            n.set_size(id, 4);
        }
        let after = engine.analyze(&n).circuit_moments();
        assert!(
            after.std() < before.std(),
            "{} < {}",
            after.std(),
            before.std()
        );
    }

    #[test]
    fn more_samples_refine_but_do_not_upend_the_estimate() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let coarse_config = SstaConfig::default().with_pdf_samples(8);
        let fine_config = SstaConfig::default().with_pdf_samples(30);
        let coarse = FullSsta::new(&lib, &coarse_config)
            .analyze(&n)
            .circuit_moments();
        let fine = FullSsta::new(&lib, &fine_config)
            .analyze(&n)
            .circuit_moments();
        assert!((coarse.mean - fine.mean).abs() / fine.mean < 0.02);
        assert!((coarse.std() - fine.std()).abs() / fine.std() < 0.25);
    }

    #[test]
    fn unconditionable_models_still_scale_the_marginals() {
        // A model with no global source has nothing to condition on, but
        // the analytic engines must still honor its marginal variance
        // scale — a spatial-only or local-scaled model that Monte Carlo
        // applies per draw cannot be silently ignored here.
        use crate::variation::{SpatialGrid, VariationModel};
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let base = SstaConfig::default();
        let base_m = FullSsta::new(&lib, &base).analyze(&n).circuit_moments();

        // Local-only scale 0.5: every sigma halves, variance quarters.
        let mut local_half = VariationModel::none();
        local_half.local_sigma_scale = 0.5;
        assert!(!local_half.is_empty(), "a scaled local term is a model");
        let cfg = SstaConfig::default().with_model(local_half);
        let halved = FullSsta::new(&lib, &cfg).analyze(&n).circuit_moments();
        assert!(
            (halved.std() / base_m.std() - 0.5).abs() < 0.05,
            "sigma ratio {} should be ~0.5",
            halved.std() / base_m.std()
        );

        // Un-normalized spatial-only model: marginal scale 1 + 0.5.
        let spatial =
            VariationModel::none().with_spatial(SpatialGrid::with_variance_share(4, 4, 2.0, 0.5));
        assert!((spatial.total_variance_scale() - 1.5).abs() < 1e-12);
        let cfg = SstaConfig::default().with_model(spatial);
        let widened = FullSsta::new(&lib, &cfg).analyze(&n).circuit_moments();
        assert!(
            (widened.std() / base_m.std() - 1.5f64.sqrt()).abs() < 0.08,
            "sigma ratio {} should be ~sqrt(1.5)",
            widened.std() / base_m.std()
        );
    }

    #[test]
    fn pdf_bounded_support_and_mass() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(4, &lib);
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(&n);
        let pdf = r.circuit_pdf().expect("fullssta computes a circuit pdf");
        assert!(pdf.len() <= SstaConfig::default().pdf_samples);
        let total: f64 = pdf.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pdf.min_value() > 0.0, "arrivals are positive");
    }
}
