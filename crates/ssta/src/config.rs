//! Shared configuration for the timing engines.

use crate::variation;
use vartol_liberty::VariationModel;

/// How FULLSSTA treats correlation between arrival times at a max.
///
/// The paper's outer engine (after Liou et al.) assumes independence but
/// notes that correlations due to reconvergent paths can be tracked "using
/// Principal Component Analysis \[17\] or other methods as long as runtime
/// is managed appropriately" (§4.3). On deeply reconvergent circuits (the
/// c6288 multiplier) the independence assumption compounds badly: the mean
/// inflates and the bounded discrete supports make the max of thousands of
/// pseudo-independent arrivals collapse toward a point mass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CorrelationMode {
    /// Treat all arrivals as independent (the paper's baseline engine).
    Independent,
    /// Track shared path variance in per-level buckets and evaluate maxima
    /// with Clark's correlated formulas — the "other methods" hook: each
    /// node carries the variance it accumulated at every topological
    /// level; the correlation of two arrivals is estimated from the
    /// overlap (bucket-wise minimum) of their contribution vectors.
    LevelBuckets,
}

/// Configuration shared by all timing engines.
///
/// # Example
///
/// ```
/// use vartol_ssta::SstaConfig;
///
/// let config = SstaConfig::default().with_pdf_samples(15);
/// assert_eq!(config.pdf_samples, 15);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SstaConfig {
    /// Discrete-PDF support points in FULLSSTA. The paper uses 10–15
    /// "as a reasonable tradeoff between accuracy and speed".
    pub pdf_samples: usize,
    /// The two-component process-variation model applied to every gate
    /// (how *much* each gate varies, as a function of its drive).
    pub variation: VariationModel,
    /// The correlated variation model (how gate variations *co-vary*:
    /// die-to-die sources and spatially correlated fields, decomposed via
    /// the PCA in `vartol_stats::correlation` — see
    /// [`crate::variation`]). The default,
    /// [`variation::VariationModel::none`], keeps every gate independent
    /// and leaves all engines **bit-identical** to the legacy behavior.
    pub model: variation::VariationModel,
    /// Transition time (ps) assumed at primary inputs.
    pub input_slew: f64,
    /// Capacitive load (unit loads) on every primary output pin.
    pub po_load: f64,
    /// Extra wire capacitance charged per fanout pin (0 = the paper's
    /// "we ignore interconnect delay").
    pub wire_cap_per_fanout: f64,
    /// Reconvergence-correlation handling in FULLSSTA.
    pub correlation: CorrelationMode,
    /// Worker threads for every engine that fans out: the analytic
    /// engines' level-ordered propagation (each level's node/lane
    /// kernels computed in parallel, results joined serially in node
    /// order) and Monte-Carlo sampling (chunked, each chunk's RNG
    /// stream derived from `(seed, chunk_index)`). `0` means one
    /// worker per available CPU. Results are **bit-identical for
    /// every thread count** in both cases, so this is purely a speed
    /// knob — which is also why it is excluded from
    /// [`config_fingerprint`](crate::config_fingerprint): two runs
    /// differing only in `threads` produce the same reports and may
    /// share cache entries. Narrow levels run inline regardless of
    /// the setting (see `PARALLEL_LEVEL_MIN` in the arena), so small
    /// circuits never pay spawn overhead.
    pub threads: usize,
}

impl SstaConfig {
    /// Sets the discrete-PDF sample count (FULLSSTA accuracy knob).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_pdf_samples(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one pdf sample");
        self.pdf_samples = n;
        self
    }

    /// Sets the variation model.
    #[must_use]
    pub fn with_variation(mut self, variation: VariationModel) -> Self {
        self.variation = variation;
        self
    }

    /// Sets the correlated variation model (die-to-die / spatial
    /// sources shared across gates — see [`crate::variation`]).
    #[must_use]
    pub fn with_model(mut self, model: variation::VariationModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the correlation handling mode.
    #[must_use]
    pub fn with_correlation(mut self, mode: CorrelationMode) -> Self {
        self.correlation = mode;
        self
    }

    /// Sets the propagation/sampling worker-thread count (`0` = all
    /// available CPUs). Purely a speed knob: reports are bit-identical
    /// at every width.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// A deterministic configuration (no process variation), under which
    /// every statistical engine degenerates to plain STA.
    #[must_use]
    pub fn deterministic() -> Self {
        Self::default().with_variation(VariationModel::none())
    }
}

impl Default for SstaConfig {
    fn default() -> Self {
        Self {
            pdf_samples: 12,
            variation: VariationModel::default(),
            model: variation::VariationModel::none(),
            input_slew: 20.0,
            po_load: 2.0,
            wire_cap_per_fanout: 0.0,
            correlation: CorrelationMode::LevelBuckets,
            threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_in_paper_range() {
        let c = SstaConfig::default();
        assert!((10..=15).contains(&c.pdf_samples));
        assert!(c.input_slew > 0.0);
        assert!(c.po_load > 0.0);
        assert_eq!(c.wire_cap_per_fanout, 0.0, "paper ignores interconnect");
    }

    #[test]
    fn builder_methods() {
        let c = SstaConfig::default()
            .with_pdf_samples(10)
            .with_variation(VariationModel::new(0.1, 0.5, 1.0))
            .with_threads(4);
        assert_eq!(c.pdf_samples, 10);
        assert_eq!(c.variation.k_prop, 0.1);
        assert_eq!(c.threads, 4);
    }

    #[test]
    fn default_threads_auto_detect() {
        assert_eq!(SstaConfig::default().threads, 0, "0 = all available CPUs");
    }

    #[test]
    fn deterministic_config_has_no_variation() {
        let c = SstaConfig::deterministic();
        assert_eq!(c.variation, VariationModel::none());
    }

    #[test]
    fn default_correlated_model_is_empty() {
        // The bit-identity contract hinges on this: a default config must
        // steer every engine down the legacy independent code paths.
        assert!(SstaConfig::default().model.is_empty());
        let c = SstaConfig::default().with_model(variation::VariationModel::die_to_die(0.5));
        assert!(c.model.has_global());
    }

    #[test]
    #[should_panic(expected = "at least one pdf sample")]
    fn zero_samples_panics() {
        let _ = SstaConfig::default().with_pdf_samples(0);
    }
}
