//! Shared propagation state behind the engines and the incremental
//! session.
//!
//! [`TimingState`] holds, per node, the electrical snapshot
//! ([`CircuitTiming`]) and the arrival state of one propagation flavor
//! ([`EngineKind::Dsta`] nominal, [`EngineKind::Fassta`] moments,
//! [`EngineKind::FullSsta`] discrete PDFs with optional per-level
//! correlation buckets). A from-scratch analysis is simply
//! [`TimingState::update`] seeded with every node; incremental
//! re-analysis seeds only the resized gates (plus their fanins, whose
//! loads changed) and lets the worklist chase slew and arrival changes
//! through the transitive fanout cone. Because both paths run the same
//! per-node kernels, an incremental refresh reproduces a from-scratch run
//! bit for bit.

use crate::config::{CorrelationMode, SstaConfig};
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingReport};
use std::collections::BTreeSet;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::clark::clark_max_correlated;
use vartol_stats::fast_max::fast_max_moments;
use vartol_stats::{DiscretePdf, Moments};

/// Circuit-level summary of a propagation state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CircuitSummary {
    pub moments: Moments,
    pub pdf: Option<DiscretePdf>,
    pub worst_output: GateId,
}

/// Per-node propagation state for one engine flavor.
#[derive(Debug, Clone)]
pub(crate) struct TimingState {
    pub kind: EngineKind,
    pub timing: CircuitTiming,
    pub arrivals: Vec<Moments>,
    /// Arrival PDFs; empty unless `kind == FullSsta`.
    pub pdfs: Vec<DiscretePdf>,
    /// Per-level variance contributions; empty unless `kind == FullSsta`
    /// with [`CorrelationMode::LevelBuckets`].
    pub contribs: Vec<Vec<f64>>,
    /// Cached levelization (bucket index per node).
    pub levels: Vec<usize>,
    /// Cumulative number of per-node recomputations across updates.
    pub visits: u64,
}

impl TimingState {
    /// Builds the state from scratch: every node seeded into one update.
    pub fn full(
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        kind: EngineKind,
    ) -> Self {
        assert!(
            kind.supports_incremental(),
            "{kind} has no propagation state"
        );
        let n = netlist.node_count();
        let levels = netlist.levels();
        let track =
            kind == EngineKind::FullSsta && config.correlation == CorrelationMode::LevelBuckets;
        let buckets = levels.iter().max().copied().unwrap_or(0) + 1;
        let mut state = Self {
            kind,
            timing: CircuitTiming::empty(netlist, config),
            arrivals: vec![Moments::zero(); n],
            pdfs: if kind == EngineKind::FullSsta {
                vec![DiscretePdf::deterministic(0.0); n]
            } else {
                Vec::new()
            },
            contribs: if track {
                vec![vec![0.0; buckets]; n]
            } else {
                Vec::new()
            },
            levels,
            visits: 0,
        };
        state.update(netlist, library, config, (0..n).collect());
        state
    }

    /// Number of correlation buckets (valid when contributions are
    /// tracked).
    fn bucket_count(&self) -> usize {
        self.levels.iter().max().copied().unwrap_or(0) + 1
    }

    /// Processes a worklist of node indices in topological order,
    /// recomputing electrical and arrival state and chasing changes into
    /// the fanout cone. Returns the number of nodes visited.
    pub fn update(
        &mut self,
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        mut queue: BTreeSet<usize>,
    ) -> u64 {
        let mut visited = 0u64;
        while let Some(i) = queue.pop_first() {
            visited += 1;
            let id = GateId::from_index(i);
            let g = netlist.gate(id);
            if g.is_input() {
                // Loads of primary inputs are bookkeeping only: they drive
                // no delay, and input slew/arrival are constants.
                self.timing.refresh_node(netlist, library, config, id);
                continue;
            }
            let (slew_changed, delay_changed) =
                self.timing.refresh_node(netlist, library, config, id);
            let arrival_changed = self.recompute_arrival(netlist, config, id);
            if slew_changed || delay_changed || arrival_changed {
                for &f in g.fanouts() {
                    queue.insert(f.index());
                }
            }
        }
        self.visits += visited;
        visited
    }

    /// Recomputes the arrival state of one gate from its fanins; returns
    /// whether anything observable downstream changed.
    fn recompute_arrival(&mut self, netlist: &Netlist, config: &SstaConfig, id: GateId) -> bool {
        match self.kind {
            EngineKind::Dsta => self.recompute_nominal(netlist, id),
            EngineKind::Fassta => self.recompute_moments(netlist, id),
            EngineKind::FullSsta => self.recompute_pdf(netlist, config, id),
            EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
        }
    }

    fn recompute_nominal(&mut self, netlist: &Netlist, id: GateId) -> bool {
        let g = netlist.gate(id);
        let worst_in = g
            .fanins()
            .iter()
            .map(|f| self.arrivals[f.index()].mean)
            .fold(0.0f64, f64::max);
        let arrival = Moments::new(worst_in + self.timing.nominal_delay(id), 0.0);
        let changed = arrival != self.arrivals[id.index()];
        self.arrivals[id.index()] = arrival;
        changed
    }

    fn recompute_moments(&mut self, netlist: &Netlist, id: GateId) -> bool {
        let g = netlist.gate(id);
        let mut arrival = Moments::zero();
        let mut first = true;
        for &f in g.fanins() {
            let fa = self.arrivals[f.index()];
            arrival = if first {
                fa
            } else {
                fast_max_moments(arrival, fa)
            };
            first = false;
        }
        let arrival = arrival + self.timing.delay_moments(id);
        let changed = arrival != self.arrivals[id.index()];
        self.arrivals[id.index()] = arrival;
        changed
    }

    /// Folds the arrival PDFs (and contribution vectors) of `ids` with
    /// [`correlated_max`] — the one reduction both node propagation and
    /// the circuit-level output RV use.
    fn reduce_correlated(
        &self,
        ids: impl Iterator<Item = GateId>,
        n: usize,
        track: bool,
    ) -> Option<(DiscretePdf, Vec<f64>)> {
        let mut acc: Option<(DiscretePdf, Vec<f64>)> = None;
        for id in ids {
            let p = &self.pdfs[id.index()];
            let v = if track {
                self.contribs[id.index()].clone()
            } else {
                Vec::new()
            };
            acc = Some(match acc {
                None => (p.clone(), v),
                Some((apdf, av)) => correlated_max(&apdf, av, p, &v, n, track),
            });
        }
        acc
    }

    fn recompute_pdf(&mut self, netlist: &Netlist, config: &SstaConfig, id: GateId) -> bool {
        let g = netlist.gate(id);
        let n = config.pdf_samples;
        let track = !self.contribs.is_empty();
        let acc = self.reduce_correlated(g.fanins().iter().copied(), n, track);
        let (arrival, mut v) = acc.unwrap_or_else(|| {
            (
                DiscretePdf::deterministic(0.0),
                if track {
                    vec![0.0; self.bucket_count()]
                } else {
                    Vec::new()
                },
            )
        });
        let delay_m = self.timing.delay_moments(id);
        let delay = DiscretePdf::from_moments(delay_m, n);
        let pdf = arrival.add_rebinned(&delay, n);
        if track {
            v[self.levels[id.index()]] += delay_m.var;
        }

        let changed = pdf != self.pdfs[id.index()] || (track && v != self.contribs[id.index()]);
        self.arrivals[id.index()] = pdf.moments();
        self.pdfs[id.index()] = pdf;
        if track {
            self.contribs[id.index()] = v;
        }
        changed
    }

    /// Reduces the primary outputs into the circuit-level RV and picks
    /// the statistically-worst output.
    pub fn circuit(&self, netlist: &Netlist, config: &SstaConfig) -> CircuitSummary {
        match self.kind {
            EngineKind::Dsta => {
                let (&worst_output, max_delay) = netlist
                    .outputs()
                    .iter()
                    .map(|o| (o, self.arrivals[o.index()].mean))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments: Moments::new(max_delay, 0.0),
                    pdf: None,
                    worst_output,
                }
            }
            EngineKind::Fassta => {
                let moments = netlist
                    .outputs()
                    .iter()
                    .map(|o| self.arrivals[o.index()])
                    .reduce(fast_max_moments)
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments,
                    pdf: None,
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::FullSsta => {
                let n = config.pdf_samples;
                let track = !self.contribs.is_empty();
                let pdf = self
                    .reduce_correlated(netlist.outputs().iter().copied(), n, track)
                    .expect("netlists have at least one output")
                    .0;
                CircuitSummary {
                    moments: pdf.moments(),
                    pdf: Some(pdf),
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
        }
    }

    /// Statistically-worst output by pairwise dominance/sensitivity
    /// ranking — delegated to [`crate::WnssTracer`] so every engine uses
    /// the one rule.
    fn rank_worst_output(&self, netlist: &Netlist, config: &SstaConfig) -> GateId {
        crate::WnssTracer::new(config.variation.mu_sigma_coupling())
            .worst_output(netlist, &self.arrivals)
    }

    /// Packages the state as a [`TimingReport`], consuming it.
    pub fn into_report(self, netlist: &Netlist, config: &SstaConfig) -> TimingReport {
        let summary = self.circuit(netlist, config);
        TimingReport {
            kind: self.kind,
            arrivals: self.arrivals,
            pdfs: if self.kind == EngineKind::FullSsta {
                Some(self.pdfs)
            } else {
                None
            },
            circuit: summary.moments,
            circuit_pdf: summary.pdf,
            worst_output: summary.worst_output,
            timing: self.timing,
            samples: None,
        }
    }

    /// Packages the state as a [`TimingReport`] without consuming it.
    pub fn to_report(&self, netlist: &Netlist, config: &SstaConfig) -> TimingReport {
        self.clone().into_report(netlist, config)
    }
}

/// One pairwise PDF max with optional correlation handling; returns the
/// result PDF and the blended per-level contribution vector (the FULLSSTA
/// kernel, shared by from-scratch and incremental analysis).
pub(crate) fn correlated_max(
    a: &DiscretePdf,
    av: Vec<f64>,
    b: &DiscretePdf,
    bv: &[f64],
    n: usize,
    track: bool,
) -> (DiscretePdf, Vec<f64>) {
    if !track {
        return (a.max_rebinned(b, n), av);
    }
    let ma = a.moments();
    let mb = b.moments();
    let rho = overlap_correlation(&av, bv, ma.var, mb.var);
    let cm = clark_max_correlated(ma, mb, rho);
    let shape = a.max(b);
    let pdf = shape.with_moments(cm.max, n).rebin(n);
    let t = cm.tightness_a;
    let v = av
        .iter()
        .zip(bv)
        .map(|(x, y)| t * x + (1.0 - t) * y)
        .collect();
    (pdf, v)
}

/// Correlation estimate from shared per-level variance: the bucket-wise
/// minimum approximates the variance of the common path prefix.
fn overlap_correlation(av: &[f64], bv: &[f64], var_a: f64, var_b: f64) -> f64 {
    if var_a <= 1e-12 || var_b <= 1e-12 {
        return 0.0;
    }
    let shared: f64 = av.iter().zip(bv).map(|(x, y)| x.min(*y)).sum();
    (shared / (var_a * var_b).sqrt()).clamp(0.0, 1.0)
}
