//! The level-ordered propagation arena behind the analytic engines and
//! the incremental session.
//!
//! [`TimingState`] holds the electrical snapshot ([`CircuitTiming`]) and
//! the arrival state of one propagation flavor ([`EngineKind::Dsta`]
//! nominal, [`EngineKind::Fassta`] moments, [`EngineKind::FullSsta`]
//! discrete PDFs with optional per-level correlation buckets). Arrival
//! state lives in a struct-of-arrays [`LaneArena`]: nodes are permuted
//! once at levelization into **level-contiguous slots**
//! ([`LevelSchedule`]) and each conditioning lane's moments/PDFs/bucket
//! vectors are flat arrays indexed by `lane * nodes + slot`, so a level's
//! kernels read their fanins from the adjacent lower-level span instead
//! of chasing node indices across the whole array.
//!
//! # Level-frontier propagation
//!
//! [`TimingState::update`] is a per-level frontier, not a node-at-a-time
//! worklist: seed indices are scattered into per-level buckets, and each
//! level is processed in two phases —
//!
//! 1. **compute**, which evaluates the electrical values
//!    ([`CircuitTiming::compute_node`]) and then the per-lane arrival
//!    kernels ([`lane_nominal`]/[`lane_moments`]/[`lane_pdf`]) of every
//!    frontier node as *pure functions* of already-finalized lower-level
//!    state. Node kernels fan out over a [`ScopedPool`] when the level is
//!    wide enough ([`PARALLEL_LEVEL_MIN`]); Gauss–Hermite conditioning
//!    lanes are independent parallel work items, so a level with `w`
//!    frontier nodes and `q` lanes exposes `w·q`-way parallelism;
//! 2. **join**, which writes results back serially in ascending node
//!    order, re-runs the exact legacy change comparisons (bit compares on
//!    slew/delay, `PartialEq` on moments/PDFs/buckets), and pushes the
//!    fanouts of changed nodes into their (strictly higher) level
//!    buckets.
//!
//! # Why determinism survives parallelism
//!
//! The legacy worklist popped the smallest node index; node indices are
//! topological, so it processed nodes in one particular topological
//! order, each at most once. `(level, index)` order is *also* topological
//! — a fanout's level always exceeds its fanin's — and every kernel is a
//! pure function of its own electrical state plus fanin state finalized
//! at lower levels (same-level nodes can never feed each other). Two
//! topological schedules over the same pure per-node functions compute
//! identical values, make identical change decisions, and therefore
//! visit identical node sets: the arena reproduces the legacy
//! propagation **bit for bit at every thread width**, which the
//! engine-determinism suite and the pinned pre-refactor fixtures assert.
//! Threads ([`SstaConfig::threads`]) are purely a speed knob — the join
//! phase orders all writes by node index, and [`ScopedPool::map`]
//! returns results in task order regardless of which worker ran what.
//!
//! # Conditioning lanes (correlated variation)
//!
//! When the config's [`crate::variation::VariationModel`] declares global
//! (die-to-die) sources, the arena carries one **conditioning lane** per
//! Gauss–Hermite node: lane `q` propagates the engine's ordinary arrival
//! state with every gate delay conditioned on the combined global shift
//! (`mean + σ·shift_q`, residual variance) — see [`crate::variation`]
//! for the math. The node-indexed `arrivals` mirror always holds the
//! **unconditional** view, recombined per node by the law of total
//! expectation/variance, so every consumer (sessions, slack,
//! criticality, WNSS ranking) is correlation-aware without code changes.
//! The laneless (independent) path is the single lane
//! `shift = 0, residual = 1`, whose arithmetic (`x + σ·0.0`, `var·1.0`)
//! is IEEE-bit-identical to the pre-arena code. An incremental update
//! visits each frontier node once and refreshes all lanes for it, so a
//! resize still only recomputes the affected fanout cone.

use crate::config::{CorrelationMode, SstaConfig};
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingReport};
use crate::pool::ScopedPool;
use crate::variation::{condition_moments, mix_conditional_moments};
use std::collections::BTreeSet;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::clark::clark_max_correlated;
use vartol_stats::fast_max::fast_max_moments;
use vartol_stats::{DiscretePdf, Moments};

/// Minimum per-level work items (frontier nodes × lanes) before the
/// compute phase fans out over the pool; narrower levels run inline on
/// the calling thread.
///
/// This is the spawn-amortization strategy: [`ScopedPool`] spawns scoped
/// workers per call (tens of microseconds per thread), which per-level
/// fan-out would otherwise pay at *every* level. A level below this
/// width costs less to compute inline than to spawn for, so small
/// circuits like c17 (max level width ≤ 5) never spawn at any configured
/// width and are immune to per-level join overhead, while wide levels —
/// where kernel work actually dominates — amortize one spawn over at
/// least this many kernels. `benches/ssta_engines.rs` records the
/// crossover (`analytic_parallel` group).
pub(crate) const PARALLEL_LEVEL_MIN: usize = 16;

/// Circuit-level summary of a propagation state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CircuitSummary {
    pub moments: Moments,
    pub pdf: Option<DiscretePdf>,
    pub worst_output: GateId,
}

/// The level permutation computed once per netlist: nodes sorted by
/// `(level, index)` into contiguous **slots**, with the slot spans of
/// each level recorded so the frontier can address "all of level `l`"
/// as one slice.
#[derive(Debug, Clone)]
pub(crate) struct LevelSchedule {
    /// Topological level per node index (inputs are level 0).
    level_of: Vec<usize>,
    /// Slot → node index, sorted by `(level, index)`.
    order: Vec<u32>,
    /// Node index → slot (the inverse permutation).
    slot_of: Vec<u32>,
    /// Level → first slot; `starts[level_count()]` is the node count.
    starts: Vec<usize>,
}

impl LevelSchedule {
    fn build(netlist: &Netlist) -> Self {
        let level_of = netlist.levels();
        let n = level_of.len();
        let depth = level_of.iter().max().copied().unwrap_or(0);
        // Counting sort by level: stable, so slots within one level stay
        // in ascending node-index order — the join order the determinism
        // argument leans on.
        let mut starts = vec![0usize; depth + 2];
        for &l in &level_of {
            starts[l + 1] += 1;
        }
        for l in 1..starts.len() {
            starts[l] += starts[l - 1];
        }
        let mut next = starts.clone();
        let mut order = vec![0u32; n];
        for (i, &l) in level_of.iter().enumerate() {
            order[next[l]] = u32::try_from(i).expect("node counts fit in u32");
            next[l] += 1;
        }
        let mut slot_of = vec![0u32; n];
        for (s, &i) in order.iter().enumerate() {
            slot_of[i as usize] = u32::try_from(s).expect("node counts fit in u32");
        }
        Self {
            level_of,
            order,
            slot_of,
            starts,
        }
    }

    /// Number of levels (at least 1 for a non-empty netlist).
    pub(crate) fn level_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Level of a node.
    pub(crate) fn level(&self, id: GateId) -> usize {
        self.level_of[id.index()]
    }

    /// Slot of a node in the level-contiguous permutation.
    fn slot(&self, id: GateId) -> usize {
        self.slot_of[id.index()] as usize
    }

    /// Widest level (the parallelism ceiling of one propagation).
    pub(crate) fn max_width(&self) -> usize {
        (0..self.level_count())
            .map(|l| self.starts[l + 1] - self.starts[l])
            .max()
            .unwrap_or(0)
    }
}

/// Struct-of-arrays arrival storage: per lane, flat slot-indexed arrays
/// of moments (all flavors), PDFs (`FullSsta`), and per-level variance
/// buckets (`FullSsta` + [`CorrelationMode::LevelBuckets`]).
///
/// Laneless propagation is lane 0 with `shift = 0, weight = 1` — same
/// storage, same kernels, bit-identical arithmetic to the pre-arena
/// unconditioned code.
#[derive(Debug, Clone)]
pub(crate) struct LaneArena {
    nodes: usize,
    /// Per-lane mean displacement in per-gate σ units (`ρ·x_q`).
    shifts: Vec<f64>,
    /// Per-lane quadrature weights.
    weights: Vec<f64>,
    /// `lane * nodes + slot` → arrival moments.
    arrivals: Vec<Moments>,
    /// `lane * nodes + slot` → arrival PDF; empty unless `FullSsta`.
    pdfs: Vec<DiscretePdf>,
    /// `lane * nodes + slot` → per-level variance contributions; empty
    /// unless tracking level buckets.
    contribs: Vec<Vec<f64>>,
    /// Whether the lanes are real Gauss–Hermite conditioning lanes
    /// (true) or the single implicit laneless lane (false) — picks the
    /// reconvergence damping and whether reports must mix lanes.
    conditioned: bool,
}

impl LaneArena {
    fn build(kind: EngineKind, config: &SstaConfig, nodes: usize, buckets: usize) -> Self {
        let track =
            kind == EngineKind::FullSsta && config.correlation == CorrelationMode::LevelBuckets;
        let spec = config.model.conditioning_lanes();
        let (shifts, weights, conditioned) = if spec.is_empty() {
            (vec![0.0], vec![1.0], false)
        } else {
            let (s, w) = spec.iter().copied().unzip();
            (s, w, true)
        };
        let lanes = shifts.len();
        Self {
            nodes,
            shifts,
            weights,
            arrivals: vec![Moments::zero(); lanes * nodes],
            pdfs: if kind == EngineKind::FullSsta {
                vec![DiscretePdf::deterministic(0.0); lanes * nodes]
            } else {
                Vec::new()
            },
            contribs: if track {
                vec![vec![0.0; buckets]; lanes * nodes]
            } else {
                Vec::new()
            },
            conditioned,
        }
    }

    /// Number of lanes (1 when laneless).
    fn lanes(&self) -> usize {
        self.shifts.len()
    }

    /// Whether per-level variance buckets are tracked.
    fn track(&self) -> bool {
        !self.contribs.is_empty()
    }

    /// The reconvergence-overlap damping of this arena's kernels:
    /// conditioning lanes damp, the laneless lane keeps the historical
    /// estimator bit for bit.
    fn damp(&self) -> f64 {
        if self.conditioned {
            CONDITIONED_OVERLAP_DAMPING
        } else {
            1.0
        }
    }

    fn idx(&self, lane: usize, slot: usize) -> usize {
        lane * self.nodes + slot
    }

    /// A read view of one lane, for the kernels and circuit reductions.
    fn lane<'a>(&'a self, lane: usize, schedule: &'a LevelSchedule) -> LaneView<'a> {
        LaneView {
            arena: self,
            lane,
            schedule,
        }
    }

    /// Writes one `(lane, slot)` kernel result and reports whether
    /// anything observable downstream changed, using the exact legacy
    /// comparisons (`PartialEq` on moments, PDFs, and bucket vectors).
    fn store(&mut self, kind: EngineKind, lane: usize, slot: usize, value: LaneValue) -> bool {
        let i = self.idx(lane, slot);
        match kind {
            EngineKind::Dsta | EngineKind::Fassta => {
                let changed = value.moments != self.arrivals[i];
                self.arrivals[i] = value.moments;
                changed
            }
            EngineKind::FullSsta => {
                let pdf = value.pdf.expect("pdf kernels always produce a pdf");
                let track = self.track();
                let changed = pdf != self.pdfs[i] || (track && value.contrib != self.contribs[i]);
                self.arrivals[i] = value.moments;
                self.pdfs[i] = pdf;
                if track {
                    self.contribs[i] = value.contrib;
                }
                changed
            }
            EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
        }
    }
}

/// Slot-addressed read access to one lane's arrival state, keyed by node
/// id — the kernels' and circuit reductions' window into the arena.
#[derive(Clone, Copy)]
pub(crate) struct LaneView<'a> {
    arena: &'a LaneArena,
    lane: usize,
    schedule: &'a LevelSchedule,
}

impl LaneView<'_> {
    fn arrival(&self, id: GateId) -> Moments {
        self.arena.arrivals[self.arena.idx(self.lane, self.schedule.slot(id))]
    }

    fn pdf(&self, id: GateId) -> &DiscretePdf {
        &self.arena.pdfs[self.arena.idx(self.lane, self.schedule.slot(id))]
    }

    fn contrib(&self, id: GateId) -> &[f64] {
        &self.arena.contribs[self.arena.idx(self.lane, self.schedule.slot(id))]
    }

    fn shift(&self) -> f64 {
        self.arena.shifts[self.lane]
    }

    fn weight(&self) -> f64 {
        self.arena.weights[self.lane]
    }
}

/// One `(node, lane)` kernel result, produced by the pure compute phase
/// and written back by [`LaneArena::store`] in the join phase.
struct LaneValue {
    moments: Moments,
    /// `Some` for `FullSsta` kernels only.
    pdf: Option<DiscretePdf>,
    /// Empty unless tracking level buckets.
    contrib: Vec<f64>,
}

/// Per-node propagation state for one engine flavor.
#[derive(Debug, Clone)]
pub(crate) struct TimingState {
    pub kind: EngineKind,
    pub timing: CircuitTiming,
    /// Node-indexed **unconditional** arrival moments — the mirror every
    /// consumer (sessions, slack, criticality, WNSS) reads. Laneless it
    /// duplicates lane 0; with lanes it holds the per-node lane mixture.
    pub arrivals: Vec<Moments>,
    /// Cumulative number of per-node recomputations across updates (a
    /// lane-mode visit recomputes all lanes but counts once).
    pub visits: u64,
    /// The level permutation (shared by every update on this netlist).
    pub(crate) schedule: LevelSchedule,
    /// The SoA arrival storage.
    arena: LaneArena,
    /// Residual variance fraction after conditioning (1 without lanes).
    resid: f64,
}

impl TimingState {
    /// Builds the state from scratch: every node seeded into one update.
    pub fn full(
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        kind: EngineKind,
    ) -> Self {
        assert!(
            kind.supports_incremental(),
            "{kind} has no propagation state"
        );
        let n = netlist.node_count();
        let schedule = LevelSchedule::build(netlist);
        let arena = LaneArena::build(kind, config, n, schedule.level_count());
        let mut state = Self {
            kind,
            timing: CircuitTiming::empty(netlist, config),
            arrivals: vec![Moments::zero(); n],
            visits: 0,
            schedule,
            arena,
            // The per-gate variance multiplier the kernels apply. Empty
            // model: exactly 1.0 (the bit-identical legacy path). With a
            // model but no global source (nothing to condition on), the
            // laneless kernels still honor the model's marginal scale
            // `local² + s_sp²` — otherwise a spatial-only or local-scaled
            // model would be silently ignored by the analytic engines
            // while Monte Carlo applies it per draw.
            resid: if config.model.is_empty() {
                1.0
            } else {
                config.model.conditioned_residual_fraction()
            },
        };
        state.update(netlist, library, config, (0..n).collect());
        state
    }

    /// Propagates a seed set level by level, recomputing electrical and
    /// arrival state and chasing changes into the fanout cone. Returns
    /// the number of nodes visited.
    ///
    /// Each level runs compute (parallel when wide, inline when narrow)
    /// then a serial node-ordered join; see the module docs for why the
    /// result is bit-identical to the legacy smallest-index worklist at
    /// every [`SstaConfig::threads`] width.
    pub fn update(
        &mut self,
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        queue: BTreeSet<usize>,
    ) -> u64 {
        let pool = ScopedPool::new(config.threads);
        let levels = self.schedule.level_count();
        let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); levels];
        for i in queue {
            frontier[self.schedule.level_of[i]].push(u32::try_from(i).expect("node index"));
        }
        let mut visited = 0u64;
        for level in 0..levels {
            let mut nodes = std::mem::take(&mut frontier[level]);
            if nodes.is_empty() {
                continue;
            }
            // Seeds arrive sorted (BTreeSet order) but fanout pushes from
            // lower levels appended after them in discovery order.
            nodes.sort_unstable();
            nodes.dedup();
            visited += nodes.len() as u64;

            // Phase 1a: electrical compute — pure against the snapshot,
            // since fanin slews live at lower levels (already applied)
            // and loads read only the netlist's sizes.
            let timing = &self.timing;
            let electrical = run_level(&pool, nodes.len(), |k| {
                timing.compute_node(
                    netlist,
                    library,
                    config,
                    GateId::from_index(nodes[k] as usize),
                )
            });
            // Join 1a: bit-compare writes, ascending node order.
            let mut elec_changed = Vec::with_capacity(nodes.len());
            for (k, fresh) in electrical.into_iter().enumerate() {
                let id = GateId::from_index(nodes[k] as usize);
                let (slew_changed, delay_changed) = self.timing.apply_node(netlist, id, fresh);
                elec_changed.push(slew_changed || delay_changed);
            }

            // Primary inputs carry no arrival state and never chase
            // fanouts (their load is bookkeeping only) — same as the
            // legacy worklist's early `continue`.
            let gates: Vec<(u32, bool)> = nodes
                .iter()
                .zip(&elec_changed)
                .filter(|&(&i, _)| !netlist.gate(GateId::from_index(i as usize)).is_input())
                .map(|(&i, &c)| (i, c))
                .collect();
            if gates.is_empty() {
                continue;
            }

            // Phase 1b: arrival kernels over (node × lane) work items —
            // conditioning lanes are independent parallel work, so a
            // w-node level with q lanes exposes w·q-way parallelism.
            let lanes = self.arena.lanes();
            let m = gates.len();
            let arena = &self.arena;
            let schedule = &self.schedule;
            let timing = &self.timing;
            let resid = self.resid;
            let kind = self.kind;
            let values = run_level(&pool, m * lanes, |t| {
                let (lane, k) = (t / m, t % m);
                let id = GateId::from_index(gates[k].0 as usize);
                let view = arena.lane(lane, schedule);
                match kind {
                    EngineKind::Dsta => lane_nominal(netlist, timing, id, &view),
                    EngineKind::Fassta => lane_moments(netlist, timing, id, resid, &view),
                    EngineKind::FullSsta => {
                        lane_pdf(netlist, config, timing, schedule, id, resid, &view)
                    }
                    EngineKind::MonteCarlo => {
                        unreachable!("monte carlo has no propagation state")
                    }
                }
            });

            // Join 1b: store every (lane, node) result with the legacy
            // change comparisons, then refresh the unconditional mirror
            // and chase the fanouts of changed nodes.
            let mut item_changed = vec![false; m * lanes];
            for (t, value) in values.into_iter().enumerate() {
                let (lane, k) = (t / m, t % m);
                let slot = self.schedule.slot(GateId::from_index(gates[k].0 as usize));
                item_changed[t] = self.arena.store(kind, lane, slot, value);
            }
            for (k, &(i, electrical)) in gates.iter().enumerate() {
                let id = GateId::from_index(i as usize);
                let slot = self.schedule.slot(id);
                let mut changed = electrical;
                for lane in 0..lanes {
                    changed |= item_changed[lane * m + k];
                }
                if self.arena.conditioned {
                    let mixed = mix_conditional_moments((0..lanes).map(|lane| {
                        (
                            self.arena.weights[lane],
                            self.arena.arrivals[self.arena.idx(lane, slot)],
                        )
                    }));
                    changed |= mixed != self.arrivals[i as usize];
                    self.arrivals[i as usize] = mixed;
                } else {
                    self.arrivals[i as usize] = self.arena.arrivals[slot];
                }
                if changed {
                    for &f in netlist.gate(id).fanouts() {
                        frontier[self.schedule.level_of[f.index()]]
                            .push(u32::try_from(f.index()).expect("node index"));
                    }
                }
            }
        }
        self.visits += visited;
        visited
    }

    /// Reduces the primary outputs into the circuit-level RV and picks
    /// the statistically-worst output.
    pub fn circuit(&self, netlist: &Netlist, config: &SstaConfig) -> CircuitSummary {
        if !self.arena.conditioned {
            return self.circuit_unconditioned(netlist, config);
        }
        let lanes = self.arena.lanes();
        let views = (0..lanes).map(|l| self.arena.lane(l, &self.schedule));
        match self.kind {
            EngineKind::Dsta => {
                // Per lane: the deterministic longest path under that
                // lane's global shift; mixing the lanes spreads the
                // corners into circuit-level moments.
                let moments = mix_conditional_moments(views.map(|v| {
                    let max = netlist
                        .outputs()
                        .iter()
                        .map(|&o| v.arrival(o).mean)
                        .fold(f64::NEG_INFINITY, f64::max);
                    (v.weight(), Moments::new(max, 0.0))
                }));
                let (&worst_output, _) = netlist
                    .outputs()
                    .iter()
                    .map(|o| (o, self.arrivals[o.index()].mean))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments,
                    pdf: None,
                    worst_output,
                }
            }
            EngineKind::Fassta => {
                let moments = mix_conditional_moments(views.map(|v| {
                    let m = netlist
                        .outputs()
                        .iter()
                        .map(|&o| v.arrival(o))
                        .reduce(fast_max_moments)
                        .expect("netlists have at least one output");
                    (v.weight(), m)
                }));
                CircuitSummary {
                    moments,
                    pdf: None,
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::FullSsta => {
                let n = config.pdf_samples;
                let track = self.arena.track();
                let damp = self.arena.damp();
                let lane_pdfs: Vec<(f64, DiscretePdf)> = views
                    .map(|v| {
                        let pdf = reduce_correlated_outputs(
                            &v,
                            netlist.outputs().iter().copied(),
                            n,
                            track,
                            damp,
                        )
                        .expect("netlists have at least one output")
                        .0;
                        (v.weight(), pdf)
                    })
                    .collect();
                let moments =
                    mix_conditional_moments(lane_pdfs.iter().map(|(w, p)| (*w, p.moments())));
                let pdf = mix_lane_pdfs(lane_pdfs.iter().map(|(w, p)| (*w, p)), n);
                CircuitSummary {
                    moments,
                    pdf: Some(pdf),
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
        }
    }

    /// The legacy (laneless) circuit reduction over lane 0.
    fn circuit_unconditioned(&self, netlist: &Netlist, config: &SstaConfig) -> CircuitSummary {
        match self.kind {
            EngineKind::Dsta => {
                let (&worst_output, max_delay) = netlist
                    .outputs()
                    .iter()
                    .map(|o| (o, self.arrivals[o.index()].mean))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments: Moments::new(max_delay, 0.0),
                    pdf: None,
                    worst_output,
                }
            }
            EngineKind::Fassta => {
                let moments = netlist
                    .outputs()
                    .iter()
                    .map(|o| self.arrivals[o.index()])
                    .reduce(fast_max_moments)
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments,
                    pdf: None,
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::FullSsta => {
                let n = config.pdf_samples;
                let view = self.arena.lane(0, &self.schedule);
                let track = self.arena.track();
                let pdf = reduce_correlated_outputs(
                    &view,
                    netlist.outputs().iter().copied(),
                    n,
                    track,
                    1.0,
                )
                .expect("netlists have at least one output")
                .0;
                CircuitSummary {
                    moments: pdf.moments(),
                    pdf: Some(pdf),
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
        }
    }

    /// Statistically-worst output by pairwise dominance/sensitivity
    /// ranking — delegated to [`crate::WnssTracer`] so every engine uses
    /// the one rule (over the unconditional arrivals).
    fn rank_worst_output(&self, netlist: &Netlist, config: &SstaConfig) -> GateId {
        crate::WnssTracer::new(config.variation.mu_sigma_coupling())
            .worst_output(netlist, &self.arrivals)
    }

    /// Node-indexed **unconditional** arrival PDFs, materialized from the
    /// arena at report time: laneless, lane 0 permuted back to node
    /// order; with lanes, the weighted per-node lane mixture. Mixing at
    /// report time instead of per visit is observationally identical —
    /// the mixture depends only on the final lane PDFs, and the legacy
    /// per-visit mixture never fed the change detection.
    fn report_pdfs(&self, config: &SstaConfig) -> Vec<DiscretePdf> {
        let n = self.arena.nodes;
        let mut out = vec![DiscretePdf::deterministic(0.0); n];
        if !self.arena.conditioned {
            for (&node, pdf) in self.schedule.order.iter().zip(&self.arena.pdfs) {
                out[node as usize] = pdf.clone();
            }
            return out;
        }
        let lanes = self.arena.lanes();
        for (slot, &node) in self.schedule.order.iter().enumerate() {
            out[node as usize] = mix_lane_pdfs(
                (0..lanes).map(|lane| {
                    (
                        self.arena.weights[lane],
                        &self.arena.pdfs[self.arena.idx(lane, slot)],
                    )
                }),
                config.pdf_samples,
            );
        }
        out
    }

    /// Packages the state as a [`TimingReport`], consuming it.
    pub fn into_report(self, netlist: &Netlist, config: &SstaConfig) -> TimingReport {
        let summary = self.circuit(netlist, config);
        let pdfs = if self.kind == EngineKind::FullSsta {
            Some(self.report_pdfs(config))
        } else {
            None
        };
        TimingReport {
            kind: self.kind,
            arrivals: self.arrivals,
            pdfs,
            circuit: summary.moments,
            circuit_pdf: summary.pdf,
            worst_output: summary.worst_output,
            timing: self.timing,
            samples: None,
        }
    }

    /// Packages the state as a [`TimingReport`] without consuming it.
    pub fn to_report(&self, netlist: &Netlist, config: &SstaConfig) -> TimingReport {
        self.clone().into_report(netlist, config)
    }
}

/// Runs `job` over `0..tasks`, fanning out over the pool only when the
/// level is wide enough to amortize the spawn cost
/// ([`PARALLEL_LEVEL_MIN`]); narrow levels run inline.
fn run_level<T, F>(pool: &ScopedPool, tasks: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks >= PARALLEL_LEVEL_MIN && pool.threads() > 1 {
        pool.map(tasks, job)
    } else {
        (0..tasks).map(job).collect()
    }
}

/// The DSTA per-node kernel in one lane: nominal longest path with the
/// lane's shared mean shift.
fn lane_nominal(
    netlist: &Netlist,
    timing: &CircuitTiming,
    id: GateId,
    view: &LaneView<'_>,
) -> LaneValue {
    let g = netlist.gate(id);
    let worst_in = g
        .fanins()
        .iter()
        .map(|&f| view.arrival(f).mean)
        .fold(0.0f64, f64::max);
    let delay = timing.nominal_delay(id) + timing.delay_moments(id).var.sqrt() * view.shift();
    LaneValue {
        moments: Moments::new(worst_in + delay, 0.0),
        pdf: None,
        contrib: Vec::new(),
    }
}

/// The FASSTA per-node kernel in one lane: moment propagation with
/// conditioned delays.
fn lane_moments(
    netlist: &Netlist,
    timing: &CircuitTiming,
    id: GateId,
    resid: f64,
    view: &LaneView<'_>,
) -> LaneValue {
    let g = netlist.gate(id);
    let arrival = g
        .fanins()
        .iter()
        .map(|&f| view.arrival(f))
        .reduce(fast_max_moments)
        .unwrap_or_else(Moments::zero);
    let moments = arrival + condition_moments(timing.delay_moments(id), view.shift(), resid);
    LaneValue {
        moments,
        pdf: None,
        contrib: Vec::new(),
    }
}

/// The FULLSSTA per-node kernel in one lane: discrete-PDF propagation
/// (with optional level-bucket correlation tracking) under conditioned
/// delays.
fn lane_pdf(
    netlist: &Netlist,
    config: &SstaConfig,
    timing: &CircuitTiming,
    schedule: &LevelSchedule,
    id: GateId,
    resid: f64,
    view: &LaneView<'_>,
) -> LaneValue {
    let g = netlist.gate(id);
    let n = config.pdf_samples;
    let track = view.arena.track();
    let damp = view.arena.damp();
    let acc = reduce_correlated_outputs(view, g.fanins().iter().copied(), n, track, damp);
    let (arrival, mut v) = acc.unwrap_or_else(|| {
        (
            DiscretePdf::deterministic(0.0),
            if track {
                vec![0.0; schedule.level_count()]
            } else {
                Vec::new()
            },
        )
    });
    let delay_m = condition_moments(timing.delay_moments(id), view.shift(), resid);
    let delay = DiscretePdf::from_moments(delay_m, n);
    let pdf = arrival.add_rebinned(&delay, n);
    if track {
        v[schedule.level(id)] += delay_m.var;
    }
    LaneValue {
        moments: pdf.moments(),
        pdf: Some(pdf),
        contrib: v,
    }
}

/// Folds the arrival PDFs (and contribution vectors) of `ids` with
/// [`correlated_max`] — the one reduction both node propagation and the
/// circuit-level output RV use, reading one lane of the arena.
fn reduce_correlated_outputs(
    view: &LaneView<'_>,
    ids: impl Iterator<Item = GateId>,
    n: usize,
    track: bool,
    damp: f64,
) -> Option<(DiscretePdf, Vec<f64>)> {
    let mut acc: Option<(DiscretePdf, Vec<f64>)> = None;
    for id in ids {
        let p = view.pdf(id);
        let v = if track {
            view.contrib(id).to_vec()
        } else {
            Vec::new()
        };
        acc = Some(match acc {
            None => (p.clone(), v),
            Some((apdf, av)) => correlated_max(&apdf, av, p, &v, n, track, damp),
        });
    }
    acc
}

/// The weighted mixture of per-lane PDFs, rebinned to `n` support points
/// — the unconditional distribution of a quantity whose conditional
/// distributions the lanes hold.
fn mix_lane_pdfs<'a>(lanes: impl Iterator<Item = (f64, &'a DiscretePdf)>, n: usize) -> DiscretePdf {
    let mut points: Vec<(f64, f64)> = Vec::new();
    for (w, pdf) in lanes {
        points.extend(
            pdf.values()
                .iter()
                .zip(pdf.probs())
                .map(|(&v, &p)| (v, w * p)),
        );
    }
    DiscretePdf::from_points(points).rebin(n)
}

/// Damping applied to the bucket-overlap correlation estimate inside
/// **conditioning lanes** only. The bucket-wise minimum double-counts
/// disjoint sibling subtrees — in balanced fan-in trees the two sides
/// accumulate *identical* per-level variance without sharing a single
/// gate, so the raw overlap reads fully shared and the estimated max is
/// biased low. Halving the overlap splits the difference between the
/// raw estimator (which under-predicts the mean on reconvergent
/// circuits like `ecc_16`) and full independence (which over-predicts
/// it); calibrated against 30k-sample Monte Carlo on the benchmark
/// suite, it holds conditioned FULLSSTA within ~1% of MC (asserted at
/// 2% in `tests/correlated_variation.rs`). The **unconditioned** path
/// keeps the historical estimator (damping 1) bit for bit.
pub(crate) const CONDITIONED_OVERLAP_DAMPING: f64 = 0.5;

/// One pairwise PDF max with optional correlation handling; returns the
/// result PDF and the blended per-level contribution vector (the FULLSSTA
/// kernel, shared by from-scratch and incremental analysis).
pub(crate) fn correlated_max(
    a: &DiscretePdf,
    av: Vec<f64>,
    b: &DiscretePdf,
    bv: &[f64],
    n: usize,
    track: bool,
    damp: f64,
) -> (DiscretePdf, Vec<f64>) {
    if !track {
        return (a.max_rebinned(b, n), av);
    }
    let ma = a.moments();
    let mb = b.moments();
    let rho = overlap_correlation(&av, bv, ma.var, mb.var, damp);
    let cm = clark_max_correlated(ma, mb, rho);
    let shape = a.max(b);
    let pdf = shape.with_moments(cm.max, n).rebin(n);
    let t = cm.tightness_a;
    let v = av
        .iter()
        .zip(bv)
        .map(|(x, y)| t * x + (1.0 - t) * y)
        .collect();
    (pdf, v)
}

/// Correlation estimate from shared per-level variance: the bucket-wise
/// minimum approximates the variance of the common path prefix.
fn overlap_correlation(av: &[f64], bv: &[f64], var_a: f64, var_b: f64, damp: f64) -> f64 {
    if var_a <= 1e-12 || var_b <= 1e-12 {
        return 0.0;
    }
    let shared: f64 = av.iter().zip(bv).map(|(x, y)| x.min(*y)).sum();
    (damp * shared / (var_a * var_b).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vartol_netlist::generators::{random_dag, ripple_carry_adder, RandomDagConfig};

    #[test]
    fn schedule_orders_slots_by_level_then_index() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let s = LevelSchedule::build(&n);
        assert_eq!(s.order.len(), n.node_count());
        for slot in 1..s.order.len() {
            let (a, b) = (s.order[slot - 1] as usize, s.order[slot] as usize);
            assert!(
                (s.level_of[a], a) < (s.level_of[b], b),
                "slots sorted by (level, index)"
            );
        }
        for (i, &slot) in s.slot_of.iter().enumerate() {
            assert_eq!(s.order[slot as usize] as usize, i, "inverse permutation");
        }
        for l in 0..s.level_count() {
            for slot in s.starts[l]..s.starts[l + 1] {
                assert_eq!(s.level_of[s.order[slot] as usize], l);
            }
        }
    }

    #[test]
    fn fanouts_always_live_at_strictly_higher_levels() {
        // The frontier invariant: processing level l only ever pushes
        // into buckets > l, so each node is visited at most once.
        let lib = Library::synthetic_90nm();
        let n = random_dag(
            RandomDagConfig {
                inputs: 12,
                gates: 150,
                window: 32,
            },
            0xDA61,
            &lib,
        );
        let s = LevelSchedule::build(&n);
        for id in n.node_ids() {
            for &f in n.gate(id).fanouts() {
                assert!(s.level(f) > s.level(id), "{id:?} -> {f:?}");
            }
        }
    }

    #[test]
    fn small_circuits_never_cross_the_parallel_threshold() {
        // The spawn-amortization contract for tiny circuits: c17-sized
        // netlists stay below PARALLEL_LEVEL_MIN at every level, so
        // per-level fan-out never spawns a thread for them no matter how
        // wide the configured pool is.
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(2, &lib);
        let s = LevelSchedule::build(&n);
        assert!(
            s.max_width() < PARALLEL_LEVEL_MIN,
            "max level width {} must run inline",
            s.max_width()
        );
    }

    #[test]
    fn wide_dags_do_cross_the_parallel_threshold() {
        // ...while the determinism suites' wide circuits genuinely
        // exercise the parallel join path.
        let lib = Library::synthetic_90nm();
        let n = random_dag(
            RandomDagConfig {
                inputs: 32,
                gates: 600,
                window: 220,
            },
            0xBEEF,
            &lib,
        );
        let s = LevelSchedule::build(&n);
        assert!(
            s.max_width() >= PARALLEL_LEVEL_MIN,
            "max level width {} should fan out",
            s.max_width()
        );
    }

    #[test]
    fn arena_update_matches_for_serial_and_parallel_pools() {
        let lib = Library::synthetic_90nm();
        let n = random_dag(
            RandomDagConfig {
                inputs: 32,
                gates: 600,
                window: 220,
            },
            0xBEEF,
            &lib,
        );
        for kind in [EngineKind::Dsta, EngineKind::Fassta, EngineKind::FullSsta] {
            let serial = TimingState::full(&n, &lib, &SstaConfig::default().with_threads(1), kind);
            let wide = TimingState::full(&n, &lib, &SstaConfig::default().with_threads(8), kind);
            assert_eq!(serial.arrivals, wide.arrivals, "{kind}");
            assert_eq!(serial.visits, wide.visits, "{kind}");
            assert_eq!(
                serial.circuit(&n, &SstaConfig::default()),
                wide.circuit(&n, &SstaConfig::default()),
                "{kind}"
            );
        }
    }
}
