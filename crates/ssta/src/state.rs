//! Shared propagation state behind the engines and the incremental
//! session.
//!
//! [`TimingState`] holds, per node, the electrical snapshot
//! ([`CircuitTiming`]) and the arrival state of one propagation flavor
//! ([`EngineKind::Dsta`] nominal, [`EngineKind::Fassta`] moments,
//! [`EngineKind::FullSsta`] discrete PDFs with optional per-level
//! correlation buckets). A from-scratch analysis is simply
//! [`TimingState::update`] seeded with every node; incremental
//! re-analysis seeds only the resized gates (plus their fanins, whose
//! loads changed) and lets the worklist chase slew and arrival changes
//! through the transitive fanout cone. Because both paths run the same
//! per-node kernels, an incremental refresh reproduces a from-scratch run
//! bit for bit.
//!
//! # Conditioning lanes (correlated variation)
//!
//! When the config's [`crate::variation::VariationModel`] declares global
//! (die-to-die) sources, the state carries one **conditioning lane** per
//! Gauss–Hermite node: lane `q` propagates the engine's ordinary arrival
//! state with every gate delay conditioned on the combined global shift
//! (`mean + σ·shift_q`, residual variance) — see
//! [`crate::variation`] for the math. The public `arrivals`/`pdfs`
//! arrays always hold the **unconditional** view, recombined per node by
//! the law of total expectation/variance, so every consumer (sessions,
//! slack, criticality, WNSS ranking) is correlation-aware without code
//! changes. The per-node kernels are shared: the laneless (independent)
//! path is the single lane `shift = 0, residual = 1`, whose arithmetic
//! (`x + σ·0.0`, `var·1.0`) is IEEE-bit-identical to the legacy code —
//! the bit-identity regression the determinism suites pin. Incremental
//! updates visit each worklist node once and refresh all lanes for it,
//! so a resize still only recomputes the affected fanout cone.

use crate::config::{CorrelationMode, SstaConfig};
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingReport};
use crate::variation::{condition_moments, mix_conditional_moments};
use std::collections::BTreeSet;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::clark::clark_max_correlated;
use vartol_stats::fast_max::fast_max_moments;
use vartol_stats::{DiscretePdf, Moments};

/// Circuit-level summary of a propagation state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CircuitSummary {
    pub moments: Moments,
    pub pdf: Option<DiscretePdf>,
    pub worst_output: GateId,
}

/// One Gauss–Hermite conditioning lane: the engine's arrival state under
/// a fixed value of the combined global variation shift.
#[derive(Debug, Clone)]
pub(crate) struct CondLane {
    /// Mean displacement in per-gate σ units (`ρ·x_q`).
    shift: f64,
    /// Quadrature weight.
    weight: f64,
    arrivals: Vec<Moments>,
    /// Arrival PDFs; empty unless the flavor is `FullSsta`.
    pdfs: Vec<DiscretePdf>,
    /// Per-level variance contributions; empty unless `FullSsta` with
    /// [`CorrelationMode::LevelBuckets`].
    contribs: Vec<Vec<f64>>,
}

/// Per-node propagation state for one engine flavor.
#[derive(Debug, Clone)]
pub(crate) struct TimingState {
    pub kind: EngineKind,
    pub timing: CircuitTiming,
    /// Unconditional arrival moments (the only storage when no lanes).
    pub arrivals: Vec<Moments>,
    /// Unconditional arrival PDFs; empty unless `kind == FullSsta`.
    pub pdfs: Vec<DiscretePdf>,
    /// Per-level variance contributions; empty unless `kind == FullSsta`
    /// with [`CorrelationMode::LevelBuckets`] **and** no lanes (in lane
    /// mode each lane tracks its own buckets).
    pub contribs: Vec<Vec<f64>>,
    /// Cached levelization (bucket index per node).
    pub levels: Vec<usize>,
    /// Cumulative number of per-node recomputations across updates (a
    /// lane-mode visit recomputes all lanes but counts once).
    pub visits: u64,
    /// Conditioning lanes; empty without global variation sources.
    lanes: Vec<CondLane>,
    /// Residual variance fraction after conditioning (1 without lanes).
    resid: f64,
}

impl TimingState {
    /// Builds the state from scratch: every node seeded into one update.
    pub fn full(
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        kind: EngineKind,
    ) -> Self {
        assert!(
            kind.supports_incremental(),
            "{kind} has no propagation state"
        );
        let n = netlist.node_count();
        let levels = netlist.levels();
        let track =
            kind == EngineKind::FullSsta && config.correlation == CorrelationMode::LevelBuckets;
        let buckets = levels.iter().max().copied().unwrap_or(0) + 1;
        let lane_spec = config.model.conditioning_lanes();
        let lanes: Vec<CondLane> = lane_spec
            .iter()
            .map(|&(shift, weight)| CondLane {
                shift,
                weight,
                arrivals: vec![Moments::zero(); n],
                pdfs: if kind == EngineKind::FullSsta {
                    vec![DiscretePdf::deterministic(0.0); n]
                } else {
                    Vec::new()
                },
                contribs: if track {
                    vec![vec![0.0; buckets]; n]
                } else {
                    Vec::new()
                },
            })
            .collect();
        let mut state = Self {
            kind,
            timing: CircuitTiming::empty(netlist, config),
            arrivals: vec![Moments::zero(); n],
            pdfs: if kind == EngineKind::FullSsta {
                vec![DiscretePdf::deterministic(0.0); n]
            } else {
                Vec::new()
            },
            contribs: if track && lanes.is_empty() {
                vec![vec![0.0; buckets]; n]
            } else {
                Vec::new()
            },
            levels,
            visits: 0,
            // The per-gate variance multiplier the kernels apply. Empty
            // model: exactly 1.0 (the bit-identical legacy path). With a
            // model but no global source (nothing to condition on), the
            // laneless kernels still honor the model's marginal scale
            // `local² + s_sp²` — otherwise a spatial-only or local-scaled
            // model would be silently ignored by the analytic engines
            // while Monte Carlo applies it per draw.
            resid: if config.model.is_empty() {
                1.0
            } else {
                config.model.conditioned_residual_fraction()
            },
            lanes,
        };
        state.update(netlist, library, config, (0..n).collect());
        state
    }

    /// Processes a worklist of node indices in topological order,
    /// recomputing electrical and arrival state and chasing changes into
    /// the fanout cone. Returns the number of nodes visited.
    pub fn update(
        &mut self,
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        mut queue: BTreeSet<usize>,
    ) -> u64 {
        let mut visited = 0u64;
        while let Some(i) = queue.pop_first() {
            visited += 1;
            let id = GateId::from_index(i);
            let g = netlist.gate(id);
            if g.is_input() {
                // Loads of primary inputs are bookkeeping only: they drive
                // no delay, and input slew/arrival are constants.
                self.timing.refresh_node(netlist, library, config, id);
                continue;
            }
            let (slew_changed, delay_changed) =
                self.timing.refresh_node(netlist, library, config, id);
            let arrival_changed = self.recompute_arrival(netlist, config, id);
            if slew_changed || delay_changed || arrival_changed {
                for &f in g.fanouts() {
                    queue.insert(f.index());
                }
            }
        }
        self.visits += visited;
        visited
    }

    /// Recomputes the arrival state of one gate from its fanins — in
    /// every conditioning lane plus the unconditional view — and returns
    /// whether anything observable downstream changed.
    fn recompute_arrival(&mut self, netlist: &Netlist, config: &SstaConfig, id: GateId) -> bool {
        let kind = self.kind;
        let resid = self.resid;
        if self.lanes.is_empty() {
            // One implicit lane at shift 0: `resid` is exactly 1.0 for
            // the empty model (arithmetically bit-identical to the
            // legacy unconditioned kernels) and the model's marginal
            // variance scale otherwise (spatial-only / local-scaled
            // models with nothing to condition on).
            return match kind {
                EngineKind::Dsta => {
                    lane_nominal(netlist, &self.timing, id, 0.0, &mut self.arrivals)
                }
                EngineKind::Fassta => {
                    lane_moments(netlist, &self.timing, id, 0.0, resid, &mut self.arrivals)
                }
                EngineKind::FullSsta => lane_pdf(
                    netlist,
                    config,
                    &self.timing,
                    &self.levels,
                    id,
                    0.0,
                    resid,
                    1.0,
                    &mut self.arrivals,
                    &mut self.pdfs,
                    &mut self.contribs,
                ),
                EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
            };
        }
        let mut changed = false;
        for lane in &mut self.lanes {
            changed |= match kind {
                EngineKind::Dsta => {
                    lane_nominal(netlist, &self.timing, id, lane.shift, &mut lane.arrivals)
                }
                EngineKind::Fassta => lane_moments(
                    netlist,
                    &self.timing,
                    id,
                    lane.shift,
                    resid,
                    &mut lane.arrivals,
                ),
                EngineKind::FullSsta => lane_pdf(
                    netlist,
                    config,
                    &self.timing,
                    &self.levels,
                    id,
                    lane.shift,
                    resid,
                    CONDITIONED_OVERLAP_DAMPING,
                    &mut lane.arrivals,
                    &mut lane.pdfs,
                    &mut lane.contribs,
                ),
                EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
            };
        }
        // Refresh the unconditional view of this node from the lanes.
        let mixed = mix_conditional_moments(
            self.lanes
                .iter()
                .map(|l| (l.weight, l.arrivals[id.index()])),
        );
        changed |= mixed != self.arrivals[id.index()];
        self.arrivals[id.index()] = mixed;
        if kind == EngineKind::FullSsta {
            self.pdfs[id.index()] = mix_lane_pdfs(
                self.lanes.iter().map(|l| (l.weight, &l.pdfs[id.index()])),
                config.pdf_samples,
            );
        }
        changed
    }

    /// Reduces the primary outputs into the circuit-level RV and picks
    /// the statistically-worst output.
    pub fn circuit(&self, netlist: &Netlist, config: &SstaConfig) -> CircuitSummary {
        if self.lanes.is_empty() {
            return self.circuit_unconditioned(netlist, config);
        }
        match self.kind {
            EngineKind::Dsta => {
                // Per lane: the deterministic longest path under that
                // lane's global shift; mixing the lanes spreads the
                // corners into circuit-level moments.
                let moments = mix_conditional_moments(self.lanes.iter().map(|l| {
                    let max = netlist
                        .outputs()
                        .iter()
                        .map(|o| l.arrivals[o.index()].mean)
                        .fold(f64::NEG_INFINITY, f64::max);
                    (l.weight, Moments::new(max, 0.0))
                }));
                let (&worst_output, _) = netlist
                    .outputs()
                    .iter()
                    .map(|o| (o, self.arrivals[o.index()].mean))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments,
                    pdf: None,
                    worst_output,
                }
            }
            EngineKind::Fassta => {
                let moments = mix_conditional_moments(self.lanes.iter().map(|l| {
                    let m = netlist
                        .outputs()
                        .iter()
                        .map(|o| l.arrivals[o.index()])
                        .reduce(fast_max_moments)
                        .expect("netlists have at least one output");
                    (l.weight, m)
                }));
                CircuitSummary {
                    moments,
                    pdf: None,
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::FullSsta => {
                let n = config.pdf_samples;
                let lane_pdfs: Vec<(f64, DiscretePdf)> = self
                    .lanes
                    .iter()
                    .map(|l| {
                        let track = !l.contribs.is_empty();
                        let pdf = reduce_correlated_outputs(
                            &l.pdfs,
                            &l.contribs,
                            netlist.outputs().iter().copied(),
                            n,
                            track,
                            CONDITIONED_OVERLAP_DAMPING,
                        )
                        .expect("netlists have at least one output")
                        .0;
                        (l.weight, pdf)
                    })
                    .collect();
                let moments =
                    mix_conditional_moments(lane_pdfs.iter().map(|(w, p)| (*w, p.moments())));
                let pdf = mix_lane_pdfs(lane_pdfs.iter().map(|(w, p)| (*w, p)), n);
                CircuitSummary {
                    moments,
                    pdf: Some(pdf),
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
        }
    }

    /// The legacy (laneless) circuit reduction.
    fn circuit_unconditioned(&self, netlist: &Netlist, config: &SstaConfig) -> CircuitSummary {
        match self.kind {
            EngineKind::Dsta => {
                let (&worst_output, max_delay) = netlist
                    .outputs()
                    .iter()
                    .map(|o| (o, self.arrivals[o.index()].mean))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments: Moments::new(max_delay, 0.0),
                    pdf: None,
                    worst_output,
                }
            }
            EngineKind::Fassta => {
                let moments = netlist
                    .outputs()
                    .iter()
                    .map(|o| self.arrivals[o.index()])
                    .reduce(fast_max_moments)
                    .expect("netlists have at least one output");
                CircuitSummary {
                    moments,
                    pdf: None,
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::FullSsta => {
                let n = config.pdf_samples;
                let track = !self.contribs.is_empty();
                let pdf = reduce_correlated_outputs(
                    &self.pdfs,
                    &self.contribs,
                    netlist.outputs().iter().copied(),
                    n,
                    track,
                    1.0,
                )
                .expect("netlists have at least one output")
                .0;
                CircuitSummary {
                    moments: pdf.moments(),
                    pdf: Some(pdf),
                    worst_output: self.rank_worst_output(netlist, config),
                }
            }
            EngineKind::MonteCarlo => unreachable!("monte carlo has no propagation state"),
        }
    }

    /// Statistically-worst output by pairwise dominance/sensitivity
    /// ranking — delegated to [`crate::WnssTracer`] so every engine uses
    /// the one rule (over the unconditional arrivals).
    fn rank_worst_output(&self, netlist: &Netlist, config: &SstaConfig) -> GateId {
        crate::WnssTracer::new(config.variation.mu_sigma_coupling())
            .worst_output(netlist, &self.arrivals)
    }

    /// Packages the state as a [`TimingReport`], consuming it.
    pub fn into_report(self, netlist: &Netlist, config: &SstaConfig) -> TimingReport {
        let summary = self.circuit(netlist, config);
        TimingReport {
            kind: self.kind,
            arrivals: self.arrivals,
            pdfs: if self.kind == EngineKind::FullSsta {
                Some(self.pdfs)
            } else {
                None
            },
            circuit: summary.moments,
            circuit_pdf: summary.pdf,
            worst_output: summary.worst_output,
            timing: self.timing,
            samples: None,
        }
    }

    /// Packages the state as a [`TimingReport`] without consuming it.
    pub fn to_report(&self, netlist: &Netlist, config: &SstaConfig) -> TimingReport {
        self.clone().into_report(netlist, config)
    }
}

/// The DSTA per-node kernel in one lane: nominal longest path with the
/// lane's shared mean shift.
fn lane_nominal(
    netlist: &Netlist,
    timing: &CircuitTiming,
    id: GateId,
    shift: f64,
    arrivals: &mut [Moments],
) -> bool {
    let g = netlist.gate(id);
    let worst_in = g
        .fanins()
        .iter()
        .map(|f| arrivals[f.index()].mean)
        .fold(0.0f64, f64::max);
    let delay = timing.nominal_delay(id) + timing.delay_moments(id).var.sqrt() * shift;
    let arrival = Moments::new(worst_in + delay, 0.0);
    let changed = arrival != arrivals[id.index()];
    arrivals[id.index()] = arrival;
    changed
}

/// The FASSTA per-node kernel in one lane: moment propagation with
/// conditioned delays.
fn lane_moments(
    netlist: &Netlist,
    timing: &CircuitTiming,
    id: GateId,
    shift: f64,
    resid: f64,
    arrivals: &mut [Moments],
) -> bool {
    let g = netlist.gate(id);
    let mut arrival = Moments::zero();
    let mut first = true;
    for &f in g.fanins() {
        let fa = arrivals[f.index()];
        arrival = if first {
            fa
        } else {
            fast_max_moments(arrival, fa)
        };
        first = false;
    }
    let arrival = arrival + condition_moments(timing.delay_moments(id), shift, resid);
    let changed = arrival != arrivals[id.index()];
    arrivals[id.index()] = arrival;
    changed
}

/// The FULLSSTA per-node kernel in one lane: discrete-PDF propagation
/// (with optional level-bucket correlation tracking) under conditioned
/// delays.
#[allow(clippy::too_many_arguments)]
fn lane_pdf(
    netlist: &Netlist,
    config: &SstaConfig,
    timing: &CircuitTiming,
    levels: &[usize],
    id: GateId,
    shift: f64,
    resid: f64,
    damp: f64,
    arrivals: &mut [Moments],
    pdfs: &mut [DiscretePdf],
    contribs: &mut [Vec<f64>],
) -> bool {
    let g = netlist.gate(id);
    let n = config.pdf_samples;
    let track = !contribs.is_empty();
    let acc = reduce_correlated_outputs(pdfs, contribs, g.fanins().iter().copied(), n, track, damp);
    let (arrival, mut v) = acc.unwrap_or_else(|| {
        (
            DiscretePdf::deterministic(0.0),
            if track {
                vec![0.0; levels.iter().max().copied().unwrap_or(0) + 1]
            } else {
                Vec::new()
            },
        )
    });
    let delay_m = condition_moments(timing.delay_moments(id), shift, resid);
    let delay = DiscretePdf::from_moments(delay_m, n);
    let pdf = arrival.add_rebinned(&delay, n);
    if track {
        v[levels[id.index()]] += delay_m.var;
    }

    let changed = pdf != pdfs[id.index()] || (track && v != contribs[id.index()]);
    arrivals[id.index()] = pdf.moments();
    pdfs[id.index()] = pdf;
    if track {
        contribs[id.index()] = v;
    }
    changed
}

/// Folds the arrival PDFs (and contribution vectors) of `ids` with
/// [`correlated_max`] — the one reduction both node propagation and the
/// circuit-level output RV use, parametrized over the lane's storage.
fn reduce_correlated_outputs(
    pdfs: &[DiscretePdf],
    contribs: &[Vec<f64>],
    ids: impl Iterator<Item = GateId>,
    n: usize,
    track: bool,
    damp: f64,
) -> Option<(DiscretePdf, Vec<f64>)> {
    let mut acc: Option<(DiscretePdf, Vec<f64>)> = None;
    for id in ids {
        let p = &pdfs[id.index()];
        let v = if track {
            contribs[id.index()].clone()
        } else {
            Vec::new()
        };
        acc = Some(match acc {
            None => (p.clone(), v),
            Some((apdf, av)) => correlated_max(&apdf, av, p, &v, n, track, damp),
        });
    }
    acc
}

/// The weighted mixture of per-lane PDFs, rebinned to `n` support points
/// — the unconditional distribution of a quantity whose conditional
/// distributions the lanes hold.
fn mix_lane_pdfs<'a>(lanes: impl Iterator<Item = (f64, &'a DiscretePdf)>, n: usize) -> DiscretePdf {
    let mut points: Vec<(f64, f64)> = Vec::new();
    for (w, pdf) in lanes {
        points.extend(
            pdf.values()
                .iter()
                .zip(pdf.probs())
                .map(|(&v, &p)| (v, w * p)),
        );
    }
    DiscretePdf::from_points(points).rebin(n)
}

/// Damping applied to the bucket-overlap correlation estimate inside
/// **conditioning lanes** only. The bucket-wise minimum double-counts
/// disjoint sibling subtrees — in balanced fan-in trees the two sides
/// accumulate *identical* per-level variance without sharing a single
/// gate, so the raw overlap reads fully shared and the estimated max is
/// biased low. Halving the overlap splits the difference between the
/// raw estimator (which under-predicts the mean on reconvergent
/// circuits like `ecc_16`) and full independence (which over-predicts
/// it); calibrated against 30k-sample Monte Carlo on the benchmark
/// suite, it holds conditioned FULLSSTA within ~1% of MC (asserted at
/// 2% in `tests/correlated_variation.rs`). The **unconditioned** path
/// keeps the historical estimator (damping 1) bit for bit.
pub(crate) const CONDITIONED_OVERLAP_DAMPING: f64 = 0.5;

/// One pairwise PDF max with optional correlation handling; returns the
/// result PDF and the blended per-level contribution vector (the FULLSSTA
/// kernel, shared by from-scratch and incremental analysis).
pub(crate) fn correlated_max(
    a: &DiscretePdf,
    av: Vec<f64>,
    b: &DiscretePdf,
    bv: &[f64],
    n: usize,
    track: bool,
    damp: f64,
) -> (DiscretePdf, Vec<f64>) {
    if !track {
        return (a.max_rebinned(b, n), av);
    }
    let ma = a.moments();
    let mb = b.moments();
    let rho = overlap_correlation(&av, bv, ma.var, mb.var, damp);
    let cm = clark_max_correlated(ma, mb, rho);
    let shape = a.max(b);
    let pdf = shape.with_moments(cm.max, n).rebin(n);
    let t = cm.tightness_a;
    let v = av
        .iter()
        .zip(bv)
        .map(|(x, y)| t * x + (1.0 - t) * y)
        .collect();
    (pdf, v)
}

/// Correlation estimate from shared per-level variance: the bucket-wise
/// minimum approximates the variance of the common path prefix.
fn overlap_correlation(av: &[f64], bv: &[f64], var_a: f64, var_b: f64, damp: f64) -> f64 {
    if var_a <= 1e-12 || var_b <= 1e-12 {
        return 0.0;
    }
    let shared: f64 = av.iter().zip(bv).map(|(x, y)| x.min(*y)).sum();
    (damp * shared / (var_a * var_b).sqrt()).clamp(0.0, 1.0)
}
