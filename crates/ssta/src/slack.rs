//! Statistical required times and slacks.
//!
//! The paper names its central object the *Worst Negative Statistical
//! Slack* path "analogous to traditional worst negative slack (WNS)
//! paths". This module supplies the full slack picture behind that name:
//! required times propagate **backward** through the circuit with the
//! statistical `min` (the dual of the forward `max`), and the slack of a
//! node is the random variable `required − arrival`.
//!
//! With a deterministic timing target `T` at every output, a node's slack
//! moments expose both the mean margin and how uncertain that margin is —
//! the two quantities the `μ + α·σ` objective trades.
//!
//! The owned-handle session exposes this analysis directly:
//! [`TimingSession::slacks`](crate::TimingSession::slacks) computes it
//! from the session's refreshed arrivals and electrical snapshot, which
//! is how the `vartol::workspace` service answers slack queries.

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::clark::clark_min;
use vartol_stats::Moments;

/// Statistical slack analysis of one netlist at one required time.
#[derive(Debug, Clone, PartialEq)]
pub struct StatisticalSlacks {
    required: Vec<Moments>,
    slacks: Vec<Moments>,
}

impl StatisticalSlacks {
    /// Computes statistical required times and slacks.
    ///
    /// `arrivals` are forward arrival moments indexed by
    /// [`GateId::index`] (e.g. [`crate::TimingReport::arrivals`]);
    /// `t_req` is the required time imposed on every primary output.
    /// Required times propagate backward: the requirement at a node is the
    /// statistical `min` over its fanouts of (fanout requirement − fanout
    /// delay). Slack = required − arrival, treating the two as independent
    /// (their variances add) — pessimistic on common paths, like
    /// deterministic slack is.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals.len() != netlist.node_count()` or the netlist
    /// references cells missing from the library.
    #[must_use]
    pub fn compute(
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        arrivals: &[Moments],
        t_req: f64,
    ) -> Self {
        assert_eq!(
            arrivals.len(),
            netlist.node_count(),
            "arrival vector must cover every node"
        );
        let timing = CircuitTiming::compute(netlist, library, config);
        Self::compute_with_timing(netlist, &timing, arrivals, t_req)
    }

    /// Like [`StatisticalSlacks::compute`] but reusing an existing
    /// electrical snapshot.
    #[must_use]
    pub fn compute_with_timing(
        netlist: &Netlist,
        timing: &CircuitTiming,
        arrivals: &[Moments],
        t_req: f64,
    ) -> Self {
        let n = netlist.node_count();
        let mut required: Vec<Option<Moments>> = vec![None; n];
        for &o in netlist.outputs() {
            required[o.index()] = Some(Moments::deterministic(t_req));
        }

        // Reverse topological order: node ids descend along fanin edges.
        let ids: Vec<GateId> = netlist.node_ids().collect();
        for &id in ids.iter().rev() {
            let g = netlist.gate(id);
            if g.is_input() {
                continue;
            }
            // Requirement this gate imposes on each of its fanins:
            // its own requirement minus its (random) delay.
            let Some(req_here) = required[id.index()] else {
                continue; // dead logic that reaches no output
            };
            let delay = timing.delay_moments(id);
            let req_at_fanin = Moments::new(req_here.mean - delay.mean, req_here.var + delay.var);
            for &f in g.fanins() {
                required[f.index()] = Some(match required[f.index()] {
                    None => req_at_fanin,
                    Some(existing) => clark_min(existing, req_at_fanin),
                });
            }
        }

        let required: Vec<Moments> = required
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Moments::deterministic(f64::INFINITY.min(1e18))))
            .collect();
        let slacks = required
            .iter()
            .zip(arrivals)
            .map(|(r, a)| Moments::new(r.mean - a.mean, r.var + a.var))
            .collect();
        Self { required, slacks }
    }

    /// Statistical required time at a node.
    #[must_use]
    pub fn required(&self, id: GateId) -> Moments {
        self.required[id.index()]
    }

    /// Statistical slack (required − arrival) at a node.
    #[must_use]
    pub fn slack(&self, id: GateId) -> Moments {
        self.slacks[id.index()]
    }

    /// All slacks, indexed by [`GateId::index`].
    #[must_use]
    pub fn slacks(&self) -> &[Moments] {
        &self.slacks
    }

    /// The worst negative statistical slack under weight `alpha`: the
    /// minimum over nodes of `μ_slack − α·σ_slack`. Negative values mean
    /// the circuit misses the target with appreciable probability.
    #[must_use]
    pub fn worst_statistical_slack(&self, alpha: f64) -> f64 {
        self.slacks
            .iter()
            .map(|s| s.mean - alpha * s.std())
            .fold(f64::INFINITY, f64::min)
    }

    /// The node realizing [`StatisticalSlacks::worst_statistical_slack`].
    #[must_use]
    pub fn worst_node(&self, alpha: f64) -> GateId {
        let (idx, _) = self
            .slacks
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (a.mean - alpha * a.std()).total_cmp(&(b.mean - alpha * b.std()))
            })
            .expect("netlists are non-empty");
        GateId::from_index(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullssta::FullSsta;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::generators::ripple_carry_adder;
    use vartol_netlist::NetlistBuilder;

    fn analyzed(netlist: &Netlist) -> (Vec<Moments>, CircuitTiming, f64) {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(netlist);
        let worst = r.circuit_moments();
        (
            r.arrivals().to_vec(),
            r.timing().clone(),
            worst.mean + 3.0 * worst.std(),
        )
    }

    #[test]
    fn chain_slack_decreases_toward_the_middle() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        let g2 = b.gate("g2", LogicFunction::Inv, &[g1]);
        b.mark_output(g2);
        let n = b.build().expect("valid");
        let (arrivals, timing, t) = analyzed(&n);
        let s = StatisticalSlacks::compute_with_timing(&n, &timing, &arrivals, t);
        // On a single chain, slack *mean* is identical everywhere (same
        // path); variance differs. All slacks positive at a generous T.
        for g in [g0, g1, g2] {
            assert!(s.slack(g).mean > 0.0, "gate {g}");
        }
        assert!((s.slack(g0).mean - s.slack(g2).mean).abs() < 1e-6);
    }

    #[test]
    fn tight_target_gives_negative_worst_slack() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(6, &lib);
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(&n);
        let m = r.circuit_moments();
        // Target below the mean: the worst statistical slack must be
        // negative at any alpha >= 0.
        let s = StatisticalSlacks::compute(&n, &lib, &config, r.arrivals(), m.mean - 2.0 * m.std());
        assert!(s.worst_statistical_slack(0.0) < 0.0);
        assert!(s.worst_statistical_slack(3.0) < s.worst_statistical_slack(0.0));
    }

    #[test]
    fn generous_target_gives_positive_slack_everywhere() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(6, &lib);
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(&n);
        let m = r.circuit_moments();
        let s = StatisticalSlacks::compute(&n, &lib, &config, r.arrivals(), m.mean + 6.0 * m.std());
        for id in n.gate_ids() {
            assert!(s.slack(id).mean > 0.0, "gate {}", n.gate(id).name());
        }
        assert!(s.worst_statistical_slack(3.0) > 0.0);
    }

    #[test]
    fn required_time_decreases_upstream() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        b.mark_output(g1);
        let n = b.build().expect("valid");
        let (arrivals, timing, t) = analyzed(&n);
        let s = StatisticalSlacks::compute_with_timing(&n, &timing, &arrivals, t);
        assert!(s.required(g0).mean < s.required(g1).mean);
        assert_eq!(s.required(g1).mean, t);
        // Requirement uncertainty grows upstream (delays subtracted as RVs).
        assert!(s.required(g0).var > s.required(g1).var);
    }

    #[test]
    fn worst_node_is_on_a_long_path() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let config = SstaConfig::default();
        let r = FullSsta::new(&lib, &config).analyze(&n);
        let m = r.circuit_moments();
        let s = StatisticalSlacks::compute(&n, &lib, &config, r.arrivals(), m.mean);
        let worst = s.worst_node(3.0);
        let worst_slack = s.slack(worst);
        for id in n.node_ids() {
            let sl = s.slack(id);
            assert!(worst_slack.mean - 3.0 * worst_slack.std() <= sl.mean - 3.0 * sl.std() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "arrival vector must cover every node")]
    fn wrong_arrival_length_panics() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(4, &lib);
        let _ = StatisticalSlacks::compute(&n, &lib, &SstaConfig::default(), &[], 100.0);
    }
}
