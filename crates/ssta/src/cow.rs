//! Chunked copy-on-write vectors — the structural-sharing substrate of
//! circuit versioning.
//!
//! A [`CowVec`] stores its elements in fixed-width chunks, each behind an
//! [`Arc`]. Cloning is O(chunks) pointer bumps; writing path-copies only
//! the touched chunk ([`Arc::make_mut`]), so two versions that differ in
//! a handful of elements share every other segment physically. This is
//! what makes a [`SessionBranch`](crate::SessionBranch) cheap: the
//! branch's size vector and its arrival/electrical snapshots are
//! `CowVec`s derived from the fork base, and only the chunks its
//! divergent cone actually touched are private copies.
//!
//! Sharing is observable (and asserted in tests) through
//! [`CowVec::shared_chunks_with`], which counts physically shared
//! (`Arc::ptr_eq`) segments between two versions.
//!
//! # Example
//!
//! ```
//! use vartol_ssta::cow::CowVec;
//!
//! let base: CowVec<usize> = CowVec::from_slice(&[0; 256]);
//! let mut branch = base.clone();        // O(chunks), fully shared
//! branch.set(7, 3);                     // path-copies one chunk
//! assert_eq!(branch.get(7), &3);
//! assert_eq!(base.get(7), &0);          // the base is untouched
//! assert_eq!(base.shared_chunks_with(&branch), 3); // 3 of 4 still shared
//! ```

use std::sync::Arc;

/// Elements per chunk. Small enough that a single-gate divergence keeps
/// most of a circuit shared, large enough that the chunk table stays a
/// fraction of the payload.
pub const COW_CHUNK: usize = 64;

/// A persistent vector of `T` with chunked structural sharing (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    len: usize,
    chunks: Vec<Arc<Vec<T>>>,
}

impl<T: Clone> CowVec<T> {
    /// Builds a fresh (unshared) vector from a slice.
    #[must_use]
    pub fn from_slice(values: &[T]) -> Self {
        let chunks = values
            .chunks(COW_CHUNK)
            .map(|c| Arc::new(c.to_vec()))
            .collect();
        Self {
            len: values.len(),
            chunks,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &self.chunks[i / COW_CHUNK][i % COW_CHUNK]
    }

    /// Copies the elements out into a plain `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend(c.iter().cloned());
        }
        out
    }

    /// Iterates the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Number of chunks physically shared (`Arc::ptr_eq`) with another
    /// version — the observable measure of structural sharing.
    #[must_use]
    pub fn shared_chunks_with(&self, other: &Self) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Total chunk count.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

impl<T: Clone + PartialEq> CowVec<T> {
    /// Writes `value` at `i`, path-copying the containing chunk — unless
    /// the element already equals `value`, in which case the chunk (and
    /// its sharing) is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: T) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let chunk = &mut self.chunks[i / COW_CHUNK];
        if chunk[i % COW_CHUNK] == value {
            return;
        }
        Arc::make_mut(chunk)[i % COW_CHUNK] = value;
    }

    /// Derives a new version from `base` carrying the values of `fresh`:
    /// chunks whose values are unchanged stay physically shared with
    /// `base`; changed chunks are private copies.
    ///
    /// # Panics
    ///
    /// Panics if `fresh.len() != base.len()`.
    #[must_use]
    pub fn overlay(base: &Self, fresh: &[T]) -> Self {
        assert_eq!(base.len, fresh.len(), "overlay length mismatch");
        let chunks = base
            .chunks
            .iter()
            .zip(fresh.chunks(COW_CHUNK))
            .map(|(old, new)| {
                if old.as_slice() == new {
                    Arc::clone(old)
                } else {
                    Arc::new(new.to_vec())
                }
            })
            .collect();
        Self {
            len: base.len,
            chunks,
        }
    }

    /// Indices whose values differ from `other`, in ascending order.
    /// Chunks shared physically with `other` are skipped without a scan.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn diff_indices(&self, other: &Self) -> Vec<usize> {
        assert_eq!(self.len, other.len, "diff length mismatch");
        let mut out = Vec::new();
        for (ci, (a, b)) in self.chunks.iter().zip(&other.chunks).enumerate() {
            if Arc::ptr_eq(a, b) {
                continue;
            }
            for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                if x != y {
                    out.push(ci * COW_CHUNK + k);
                }
            }
        }
        out
    }
}

impl<T: Clone + PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .chunks
                .iter()
                .zip(&other.chunks)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a.as_slice() == b.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v: Vec<usize> = (0..200).collect();
        let cow = CowVec::from_slice(&v);
        assert_eq!(cow.len(), 200);
        assert_eq!(cow.to_vec(), v);
        assert_eq!(cow.iter().copied().collect::<Vec<_>>(), v);
        assert_eq!(*cow.get(131), 131);
    }

    #[test]
    fn clone_shares_every_chunk_and_set_path_copies_one() {
        let base = CowVec::from_slice(&vec![0usize; 4 * COW_CHUNK]);
        let mut branch = base.clone();
        assert_eq!(base.shared_chunks_with(&branch), 4);
        branch.set(COW_CHUNK + 1, 9);
        assert_eq!(base.shared_chunks_with(&branch), 3);
        assert_eq!(*branch.get(COW_CHUNK + 1), 9);
        assert_eq!(*base.get(COW_CHUNK + 1), 0);
    }

    #[test]
    fn writing_an_equal_value_preserves_sharing() {
        let base = CowVec::from_slice(&vec![7usize; 2 * COW_CHUNK]);
        let mut branch = base.clone();
        branch.set(3, 7); // no-op write
        assert_eq!(base.shared_chunks_with(&branch), 2);
    }

    #[test]
    fn overlay_shares_unchanged_chunks() {
        let v: Vec<u64> = (0..(3 * COW_CHUNK as u64 + 5)).collect();
        let base = CowVec::from_slice(&v);
        let mut fresh = v.clone();
        fresh[COW_CHUNK * 2] = 999;
        let over = CowVec::overlay(&base, &fresh);
        assert_eq!(over.to_vec(), fresh);
        assert_eq!(base.shared_chunks_with(&over), 3, "one of four diverged");
    }

    #[test]
    fn diff_indices_finds_exact_divergence() {
        let base = CowVec::from_slice(&vec![0usize; 300]);
        let mut branch = base.clone();
        branch.set(5, 1);
        branch.set(299, 2);
        branch.set(64, 3);
        assert_eq!(branch.diff_indices(&base), vec![5, 64, 299]);
        assert_eq!(base.diff_indices(&base.clone()), Vec::<usize>::new());
    }

    #[test]
    fn equality_is_by_value_not_by_sharing() {
        let a = CowVec::from_slice(&[1u32, 2, 3]);
        let b = CowVec::from_slice(&[1u32, 2, 3]);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.set(1, 9);
        assert_ne!(a, c);
    }
}
