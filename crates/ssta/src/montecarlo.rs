//! Monte-Carlo circuit timing — the golden reference for both statistical
//! engines.
//!
//! Samples every gate delay from its `N(nominal, σ²)` model — independently
//! under the default [`crate::variation::VariationModel::none`], or with
//! shared die-to-die and spatially-correlated components under a
//! configured [`crate::variation::VariationModel`] (each sample is one
//! manufactured die: the shared deviates are drawn once per sample and
//! enter every gate's delay) — runs deterministic longest-path analysis
//! per sample, and summarizes the empirical distribution of the circuit
//! delay. Slow but assumption-free (no normal-approximation of maxima, no
//! discretization, and — unlike the analytic engines — no approximation of
//! the spatial field's path covariance), so FULLSSTA and FASSTA are
//! validated against it in tests and the accuracy ablation.
//!
//! # Deterministic parallel sampling
//!
//! Being the reference, the timer dominates test and ablation wall-clock
//! at 20k-sample counts, so it samples in parallel — without giving up
//! reproducibility. The contract:
//!
//! * The sample budget is split into fixed-size chunks of
//!   [`MC_CHUNK_SAMPLES`] samples (the partition depends only on `n`,
//!   never on the thread count).
//! * Chunk `c` draws from its own `StdRng` stream seeded by a SplitMix64
//!   mix of `(seed, c)` — see [`MonteCarloTimer::chunk_seed`] — so chunks
//!   are independent of each other and of how they are scheduled.
//! * Chunks run on a [`ScopedPool`]; per-chunk
//!   summaries ([`RunningMoments`] per node plus the raw chunk samples)
//!   are gathered **in chunk order** and merged left-to-right.
//!
//! Together these make the result **bit-identical for every thread
//! count**: 1 thread ≡ N threads (asserted in this module's tests and in
//! `tests/mc_determinism.rs`). The thread count comes from
//! [`SstaConfig::threads`] or [`MonteCarloTimer::with_threads`] (0 = all
//! CPUs).
//!
//! As a [`TimingEngine`], the timer samples with a configurable count and
//! seed ([`MonteCarloTimer::with_samples`] /
//! [`MonteCarloTimer::with_seed`]) through the parallel path, so `analyze`
//! is deterministic; the explicit [`MonteCarloTimer::sample`] entry point
//! remains for callers that manage their own RNG (single-stream,
//! sequential).

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingEngine, TimingReport};
use crate::pool::ScopedPool;
use crate::variation::VariationContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::normal::standard_normal_sample;
use vartol_stats::{DiscretePdf, Moments, RunningMoments};

/// Default sample count for trait-driven analyses.
pub const DEFAULT_MC_SAMPLES: usize = 4000;

/// Samples per deterministic chunk. The chunk partition is a function of
/// the sample count only, so changing the thread count can never change
/// which samples exist — only which worker computes them.
pub const MC_CHUNK_SAMPLES: usize = 512;

/// Monte-Carlo timing engine.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloTimer<'a> {
    library: &'a Library,
    config: &'a SstaConfig,
    samples: usize,
    seed: u64,
    threads: usize,
}

/// Empirical circuit-delay distribution from sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    samples: Vec<f64>,
    moments: Moments,
    arrivals: Vec<Moments>,
}

/// Summary of one sampling pass (a chunk, or a whole sequential run):
/// the raw circuit-delay samples plus mergeable running moments.
struct SampleStats {
    samples: Vec<f64>,
    circuit: RunningMoments,
    /// Per-node arrival accumulators; empty unless node tracking is on.
    nodes: Vec<RunningMoments>,
}

impl SampleStats {
    /// Concatenates the streams: samples append, accumulators merge.
    /// Order matters for bit-reproducibility — always fold in chunk order.
    fn merge(mut self, other: Self) -> Self {
        self.samples.extend_from_slice(&other.samples);
        self.circuit = self.circuit.merge(other.circuit);
        debug_assert_eq!(self.nodes.len(), other.nodes.len());
        for (a, b) in self.nodes.iter_mut().zip(other.nodes) {
            *a = a.merge(b);
        }
        self
    }

    fn into_result(self) -> MonteCarloResult {
        MonteCarloResult {
            moments: self.circuit.sample_moments(),
            // Population moments per node, matching the empirical-arrival
            // semantics the engines validate against.
            arrivals: self.nodes.iter().map(RunningMoments::moments).collect(),
            samples: self.samples,
        }
    }
}

impl<'a> MonteCarloTimer<'a> {
    /// Creates an engine over a library with the given configuration
    /// (thread count taken from [`SstaConfig::threads`]).
    #[must_use]
    pub fn new(library: &'a Library, config: &'a SstaConfig) -> Self {
        Self {
            library,
            config,
            samples: DEFAULT_MC_SAMPLES,
            seed: 0,
            threads: config.threads,
        }
    }

    /// Sets the sample count used by [`TimingEngine::analyze`].
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2`.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "need at least two samples");
        self.samples = samples;
        self
    }

    /// Sets the RNG seed used by [`TimingEngine::analyze`] and the
    /// `sample_parallel*` entry points.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count (`0` = all available CPUs).
    /// Purely a speed knob: results are bit-identical for every value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Samples the circuit delay distribution `n` times (circuit-level
    /// statistics only; [`MonteCarloResult::arrivals`] stays empty — use
    /// [`MonteCarloTimer::sample_with_arrivals`] for per-node moments).
    ///
    /// Sequential, single-stream: the caller owns the RNG. For the
    /// deterministic multi-threaded path use
    /// [`MonteCarloTimer::sample_parallel`].
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the netlist references cells missing from the
    /// library.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        n: usize,
        rng: &mut R,
    ) -> MonteCarloResult {
        assert!(n >= 2, "need at least two samples");
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        let ctx = VariationContext::new(&self.config.model, netlist);
        self.run_samples(netlist, &timing, &ctx, n, rng, false)
            .into_result()
    }

    /// Like [`MonteCarloTimer::sample`], but also accumulates empirical
    /// per-node arrival moments (one extra pass over all nodes per
    /// sample).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the netlist references cells missing from the
    /// library.
    #[must_use]
    pub fn sample_with_arrivals<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        n: usize,
        rng: &mut R,
    ) -> MonteCarloResult {
        assert!(n >= 2, "need at least two samples");
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        let ctx = VariationContext::new(&self.config.model, netlist);
        self.run_samples(netlist, &timing, &ctx, n, rng, true)
            .into_result()
    }

    /// Samples the circuit delay distribution `n` times on the worker
    /// pool, seeded from [`MonteCarloTimer::with_seed`]. Bit-identical for
    /// every thread count (see the module docs for the contract).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the netlist references cells missing from the
    /// library.
    #[must_use]
    pub fn sample_parallel(&self, netlist: &Netlist, n: usize) -> MonteCarloResult {
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        self.sample_chunked(netlist, &timing, n, false)
            .into_result()
    }

    /// Like [`MonteCarloTimer::sample_parallel`], but also accumulates
    /// empirical per-node arrival moments.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the netlist references cells missing from the
    /// library.
    #[must_use]
    pub fn sample_parallel_with_arrivals(&self, netlist: &Netlist, n: usize) -> MonteCarloResult {
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        self.sample_chunked(netlist, &timing, n, true).into_result()
    }

    /// The RNG seed of chunk `chunk` under base seed `seed`: a SplitMix64
    /// finalizer over the pair, so nearby chunk indices get decorrelated
    /// streams. Chunk 0 maps to the base seed itself.
    #[must_use]
    pub fn chunk_seed(seed: u64, chunk: u64) -> u64 {
        if chunk == 0 {
            return seed;
        }
        let mut z = seed ^ chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Chunked deterministic sampling: fixed partition, per-chunk seeded
    /// streams, chunk-ordered merge.
    fn sample_chunked(
        &self,
        netlist: &Netlist,
        timing: &CircuitTiming,
        n: usize,
        track_nodes: bool,
    ) -> SampleStats {
        assert!(n >= 2, "need at least two samples");
        let chunks = n.div_ceil(MC_CHUNK_SAMPLES);
        // Shared-source structure (global scales + spatial PCA) is
        // precomputed once and read by every chunk; each chunk's RNG
        // stream covers its shared draws *and* its per-gate draws, so
        // the partition — and therefore the result — is still a pure
        // function of `(seed, n)`, never of the thread count.
        let ctx = VariationContext::new(&self.config.model, netlist);
        let pool = ScopedPool::new(self.threads);
        let summaries = pool.map(chunks, |chunk| {
            let lo = chunk * MC_CHUNK_SAMPLES;
            let count = MC_CHUNK_SAMPLES.min(n - lo);
            let mut rng = StdRng::seed_from_u64(Self::chunk_seed(self.seed, chunk as u64));
            self.run_samples(netlist, timing, &ctx, count, &mut rng, track_nodes)
        });
        summaries
            .into_iter()
            .reduce(SampleStats::merge)
            .expect("n >= 2 yields at least one chunk")
    }

    /// The sampling kernel: `count` longest-path evaluations under random
    /// delay draws, summarized with Welford accumulators (robust where the
    /// old `E[X²]−E[X]²` sums cancel catastrophically at large means).
    ///
    /// With an empty [`VariationContext`] every gate draws one
    /// independent standard normal (the legacy model, bit-identical).
    /// With shared sources, each **sample** (= one manufactured die)
    /// first draws the shared deviates — global sources, then spatial
    /// PCA components, in that fixed order — and every gate's delay
    /// combines its independent local draw with the die's shared shift:
    /// `nominal + σ·(local·ε + Σ s_g·G_g + s_sp·S(cell))`.
    fn run_samples<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        timing: &CircuitTiming,
        ctx: &VariationContext,
        count: usize,
        rng: &mut R,
        track_nodes: bool,
    ) -> SampleStats {
        let node_count = netlist.node_count();
        let mut arrivals = vec![0.0f64; node_count];
        let mut stats = SampleStats {
            samples: Vec::with_capacity(count),
            circuit: RunningMoments::new(),
            nodes: vec![RunningMoments::new(); if track_nodes { node_count } else { 0 }],
        };
        let correlated = !ctx.is_empty();
        let model = ctx.model();
        let local = model.local_sigma_scale;
        let sp_scale = model.spatial.as_ref().map_or(0.0, |g| g.sigma_scale);
        let mut spatial_z = vec![0.0f64; ctx.spatial().map_or(0, |p| p.components())];
        let mut field = vec![0.0f64; model.spatial.as_ref().map_or(0, |g| g.cells())];

        for _ in 0..count {
            // Shared draws for this die, in fixed order.
            let mut die_shift = 0.0f64;
            if correlated {
                for source in &model.global {
                    die_shift += source.sigma_scale * standard_normal_sample(rng);
                }
                if let Some(pca) = ctx.spatial() {
                    for z in &mut spatial_z {
                        *z = standard_normal_sample(rng);
                    }
                    pca.field_into(&spatial_z, &mut field);
                }
            }
            arrivals.fill(0.0);
            let mut worst = 0.0f64;
            for id in netlist.node_ids() {
                let g = netlist.gate(id);
                if g.is_input() {
                    continue;
                }
                let m = timing.delay_moments(id);
                let delay = if correlated {
                    let mut shift = die_shift + local * standard_normal_sample(rng);
                    if let Some(pca) = ctx.spatial() {
                        shift += sp_scale * field[pca.cell(id.index())];
                    }
                    (m.mean + m.std() * shift).max(0.0)
                } else {
                    (m.mean + m.std() * standard_normal_sample(rng)).max(0.0)
                };
                let arr_in = g
                    .fanins()
                    .iter()
                    .map(|f| arrivals[f.index()])
                    .fold(0.0f64, f64::max);
                arrivals[id.index()] = arr_in + delay;
            }
            if track_nodes {
                for (acc, &a) in stats.nodes.iter_mut().zip(&arrivals) {
                    acc.push(a);
                }
            }
            for &o in netlist.outputs() {
                worst = worst.max(arrivals[o.index()]);
            }
            stats.circuit.push(worst);
            stats.samples.push(worst);
        }
        stats
    }
}

impl TimingEngine for MonteCarloTimer<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::MonteCarlo
    }

    fn analyze(&self, netlist: &Netlist) -> TimingReport {
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        let result = self
            .sample_chunked(netlist, &timing, self.samples, true)
            .into_result();
        let worst_output = crate::WnssTracer::new(self.config.variation.mu_sigma_coupling())
            .worst_output(netlist, &result.arrivals);
        let circuit_pdf = result.empirical_pdf(self.config.pdf_samples);
        TimingReport {
            kind: EngineKind::MonteCarlo,
            arrivals: result.arrivals.clone(),
            pdfs: None,
            circuit: result.moments,
            circuit_pdf: Some(circuit_pdf),
            worst_output,
            timing,
            samples: Some(result.samples),
        }
    }
}

impl MonteCarloResult {
    /// Empirical mean/variance of the circuit delay.
    #[must_use]
    pub fn moments(&self) -> Moments {
        self.moments
    }

    /// Empirical per-node arrival moments, indexed by [`GateId::index`]
    /// (empty unless sampled via
    /// [`MonteCarloTimer::sample_with_arrivals`],
    /// [`MonteCarloTimer::sample_parallel_with_arrivals`], or the engine
    /// trait).
    #[must_use]
    pub fn arrivals(&self) -> &[Moments] {
        &self.arrivals
    }

    /// Empirical arrival moments at one node.
    #[must_use]
    pub fn arrival(&self, id: GateId) -> Moments {
        self.arrivals[id.index()]
    }

    /// The raw delay samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Histograms the delay samples into a discrete PDF with `bins`
    /// support points.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn empirical_pdf(&self, bins: usize) -> DiscretePdf {
        assert!(bins > 0, "need at least one bin");
        let lo = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = self
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if hi - lo < 1e-12 {
            return DiscretePdf::deterministic(lo);
        }
        let width = (hi - lo) / bins as f64;
        let mut mass = vec![0.0f64; bins];
        let p = 1.0 / self.samples.len() as f64;
        for &s in &self.samples {
            let k = (((s - lo) / width) as usize).min(bins - 1);
            mass[k] += p;
        }
        DiscretePdf::from_points(
            mass.iter()
                .enumerate()
                .filter(|(_, &m)| m > 0.0)
                .map(|(k, &m)| (lo + (k as f64 + 0.5) * width, m))
                .collect(),
        )
    }

    /// Empirical `p`-quantile of the delay distribution, by the
    /// **nearest-rank** convention: the sample at sorted index
    /// `round(p · (n − 1))`. In particular `quantile(0.0)` is exactly the
    /// minimum sample and `quantile(1.0)` exactly the maximum. Runs in
    /// O(n) expected time via `select_nth_unstable_by` (no full sort).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        let idx = ((self.samples.len() - 1) as f64 * p).round() as usize;
        let mut scratch = self.samples.clone();
        let (_, pivot, _) = scratch.select_nth_unstable_by(idx, f64::total_cmp);
        *pivot
    }

    /// Fraction of samples not exceeding a period `t` — parametric yield at
    /// clock period `t`, the quantity Fig. 1 of the paper reasons about.
    #[must_use]
    pub fn yield_at(&self, t: f64) -> f64 {
        let ok = self.samples.iter().filter(|&&s| s <= t).count();
        ok as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fassta::Fassta;
    use crate::fullssta::FullSsta;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vartol_netlist::generators::{parity_tree, ripple_carry_adder};

    #[test]
    fn engines_agree_with_monte_carlo() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let mut rng = StdRng::seed_from_u64(10);
        let mc = MonteCarloTimer::new(&lib, &config)
            .sample(&n, 20_000, &mut rng)
            .moments();
        let full = FullSsta::new(&lib, &config).analyze(&n).circuit_moments();
        let fast = Fassta::new(&lib, &config).analyze(&n).circuit_moments();

        // FULLSSTA (correlation-aware) is held to tighter tolerances than
        // FASSTA, whose independence assumption biases the mean up and the
        // sigma down by design.
        assert!(
            (full.mean - mc.mean).abs() / mc.mean < 0.03,
            "full mean {} vs MC {}",
            full.mean,
            mc.mean
        );
        assert!(
            (fast.mean - mc.mean).abs() / mc.mean < 0.08,
            "fast mean {} vs MC {}",
            fast.mean,
            mc.mean
        );
        assert!(
            (full.std() - mc.std()).abs() / mc.std() < 0.25,
            "full sigma {} vs MC {}",
            full.std(),
            mc.std()
        );
        assert!(
            (fast.std() - mc.std()).abs() / mc.std() < 0.40,
            "fast sigma {} vs MC {}",
            fast.std(),
            mc.std()
        );
    }

    #[test]
    fn trait_analysis_is_deterministic_and_complete() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(4, &lib);
        let timer = MonteCarloTimer::new(&lib, &config)
            .with_samples(500)
            .with_seed(7);
        let a = TimingEngine::analyze(&timer, &n);
        let b = TimingEngine::analyze(&timer, &n);
        assert_eq!(a.circuit_moments(), b.circuit_moments(), "seeded run");
        assert_eq!(a.samples().map(<[f64]>::len), Some(500));
        assert!(a.circuit_pdf().is_some());
        // Empirical arrivals are populated and grow along the circuit.
        let o = a.worst_output();
        assert!(a.arrival(o).mean > 0.0);
        assert!(n.is_output(o));
    }

    #[test]
    fn parallel_sampling_is_thread_count_invariant() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(6, &lib);
        let timer = MonteCarloTimer::new(&lib, &config).with_seed(99);
        // 3 full chunks plus a partial one.
        let samples = 3 * MC_CHUNK_SAMPLES + 100;
        let reference = timer
            .with_threads(1)
            .sample_parallel_with_arrivals(&n, samples);
        for threads in [2usize, 4, 8] {
            let got = timer
                .with_threads(threads)
                .sample_parallel_with_arrivals(&n, samples);
            assert_eq!(got, reference, "{threads} threads");
        }
        // The plain (arrival-free) path too.
        let plain = timer.with_threads(1).sample_parallel(&n, samples);
        assert_eq!(
            timer.with_threads(8).sample_parallel(&n, samples),
            plain,
            "plain path"
        );
        assert_eq!(plain.samples(), reference.samples());
        assert!(plain.arrivals().is_empty());
    }

    #[test]
    fn analyze_reports_are_thread_count_invariant() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(16, &lib);
        let timer = MonteCarloTimer::new(&lib, &config)
            .with_samples(2 * MC_CHUNK_SAMPLES + 17)
            .with_seed(5);
        let one = TimingEngine::analyze(&timer.with_threads(1), &n);
        let eight = TimingEngine::analyze(&timer.with_threads(8), &n);
        assert_eq!(one, eight);
    }

    #[test]
    fn chunk_seeds_are_distinct_and_stable() {
        assert_eq!(MonteCarloTimer::chunk_seed(42, 0), 42, "chunk 0 = base");
        let mut seen = std::collections::HashSet::new();
        for chunk in 0..1000u64 {
            assert!(seen.insert(MonteCarloTimer::chunk_seed(42, chunk)));
        }
    }

    #[test]
    fn empirical_node_arrivals_track_fullssta() {
        // Chain-dominated circuit: the level-bucket correlation heuristic
        // is accurate here (balanced trees overestimate correlation since
        // disjoint sibling subtrees have identical per-level variance).
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let mut rng = StdRng::seed_from_u64(11);
        let mc = MonteCarloTimer::new(&lib, &config).sample_with_arrivals(&n, 10_000, &mut rng);
        let full = FullSsta::new(&lib, &config).analyze(&n);
        for id in n.gate_ids() {
            let e = mc.arrival(id);
            let f = full.arrival(id);
            assert!(
                (e.mean - f.mean).abs() / f.mean.max(1.0) < 0.10,
                "node {id}: MC {e} vs FULLSSTA {f}"
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree_statistically() {
        // Different streams, same distribution: moments must line up
        // within Monte-Carlo error.
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let mut rng = StdRng::seed_from_u64(21);
        let seq = MonteCarloTimer::new(&lib, &config)
            .sample(&n, 20_000, &mut rng)
            .moments();
        let par = MonteCarloTimer::new(&lib, &config)
            .with_seed(22)
            .sample_parallel(&n, 20_000)
            .moments();
        assert!((seq.mean - par.mean).abs() / seq.mean < 0.01);
        assert!((seq.std() - par.std()).abs() / seq.std() < 0.10);
    }

    #[test]
    fn quantiles_are_ordered() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(16, &lib);
        let mut rng = StdRng::seed_from_u64(2);
        let mc = MonteCarloTimer::new(&lib, &config).sample(&n, 2_000, &mut rng);
        assert!(mc.quantile(0.05) < mc.quantile(0.5));
        assert!(mc.quantile(0.5) < mc.quantile(0.99));
    }

    #[test]
    fn quantile_nearest_rank_hits_min_max_and_matches_sort() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(8, &lib);
        let mut rng = StdRng::seed_from_u64(6);
        let mc = MonteCarloTimer::new(&lib, &config).sample(&n, 1_001, &mut rng);
        let min = mc.samples().iter().copied().fold(f64::INFINITY, f64::min);
        let max = mc
            .samples()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(mc.quantile(0.0), min, "p = 0 is exactly the minimum");
        assert_eq!(mc.quantile(1.0), max, "p = 1 is exactly the maximum");
        // Selection agrees with the full-sort reference at every rank.
        let mut sorted = mc.samples().to_vec();
        sorted.sort_by(f64::total_cmp);
        for p in [0.01, 0.25, 0.5, 0.75, 0.95, 0.999] {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            assert_eq!(mc.quantile(p), sorted[idx], "p = {p}");
        }
    }

    #[test]
    fn yield_monotone_in_period() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(8, &lib);
        let mut rng = StdRng::seed_from_u64(3);
        let mc = MonteCarloTimer::new(&lib, &config).sample(&n, 2_000, &mut rng);
        let m = mc.moments();
        assert!(mc.yield_at(m.mean - 3.0 * m.std()) < 0.1);
        assert!(mc.yield_at(m.mean + 3.0 * m.std()) > 0.95);
        assert!(mc.yield_at(m.mean) > 0.3 && mc.yield_at(m.mean) < 0.7);
    }

    #[test]
    fn deterministic_variation_gives_constant_samples() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::deterministic();
        let n = parity_tree(8, &lib);
        let mut rng = StdRng::seed_from_u64(4);
        let mc = MonteCarloTimer::new(&lib, &config).sample(&n, 100, &mut rng);
        assert!(mc.moments().std() < 1e-9);
    }

    #[test]
    fn correlated_sampling_is_thread_count_invariant() {
        use crate::variation::{GlobalSource, SpatialGrid, VariationModel};
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default().with_model(
            VariationModel::none()
                .with_global_source(GlobalSource::with_variance_share("d2d", 0.4))
                .with_spatial(SpatialGrid::with_variance_share(3, 3, 2.0, 0.2))
                .normalized(),
        );
        let n = ripple_carry_adder(6, &lib);
        let timer = MonteCarloTimer::new(&lib, &config).with_seed(123);
        let samples = 2 * MC_CHUNK_SAMPLES + 50;
        let reference = timer
            .with_threads(1)
            .sample_parallel_with_arrivals(&n, samples);
        for threads in [2usize, 8] {
            let got = timer
                .with_threads(threads)
                .sample_parallel_with_arrivals(&n, samples);
            assert_eq!(got, reference, "{threads} threads under a model");
        }
    }

    #[test]
    fn die_to_die_correlation_inflates_circuit_sigma() {
        // A shared source cannot average down along a path, so the
        // circuit-level σ must grow relative to the independent model
        // even though every per-gate marginal is identical.
        use crate::variation::VariationModel;
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let independent = SstaConfig::default();
        let correlated = SstaConfig::default().with_model(VariationModel::die_to_die(0.6));
        let base = MonteCarloTimer::new(&lib, &independent)
            .with_seed(7)
            .sample_parallel(&n, 8_000)
            .moments();
        let corr = MonteCarloTimer::new(&lib, &correlated)
            .with_seed(7)
            .sample_parallel(&n, 8_000)
            .moments();
        assert!(
            corr.std() > 1.2 * base.std(),
            "correlated σ {} vs independent σ {}",
            corr.std(),
            base.std()
        );
        assert!((corr.mean - base.mean).abs() / base.mean < 0.03);
    }

    #[test]
    fn spatial_only_model_preserves_marginals_and_runs() {
        use crate::variation::{SpatialGrid, VariationModel};
        let lib = Library::synthetic_90nm();
        let n = parity_tree(16, &lib);
        let model = VariationModel::none()
            .with_spatial(SpatialGrid::with_variance_share(4, 4, 1.5, 0.5))
            .normalized();
        assert!((model.total_variance_scale() - 1.0).abs() < 1e-12);
        let config = SstaConfig::default().with_model(model);
        let mc = MonteCarloTimer::new(&lib, &config)
            .with_seed(3)
            .sample_parallel_with_arrivals(&n, 6_000);
        let base_cfg = SstaConfig::default();
        let base = MonteCarloTimer::new(&lib, &base_cfg)
            .with_seed(3)
            .sample_parallel_with_arrivals(&n, 6_000);
        // Same marginal per-gate variance: node arrival moments track the
        // independent run loosely (correlation changes path covariance,
        // which a single arrival's marginal only sees through maxima).
        let o = n.outputs()[0];
        let (a, b) = (mc.arrival(o), base.arrival(o));
        assert!((a.mean - b.mean).abs() / b.mean < 0.05, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "need at least two samples")]
    fn single_sample_panics() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(4, &lib);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MonteCarloTimer::new(&lib, &config).sample(&n, 1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "need at least two samples")]
    fn single_parallel_sample_panics() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(4, &lib);
        let _ = MonteCarloTimer::new(&lib, &config).sample_parallel(&n, 1);
    }
}
