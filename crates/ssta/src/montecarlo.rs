//! Monte-Carlo circuit timing — the golden reference for both statistical
//! engines.
//!
//! Samples every gate delay independently from its `N(nominal, σ²)` model,
//! runs deterministic longest-path analysis per sample, and summarizes the
//! empirical distribution of the circuit delay. Slow but assumption-free
//! (no normal-approximation of maxima, no discretization), so FULLSSTA and
//! FASSTA are validated against it in tests and the accuracy ablation.
//!
//! As a [`TimingEngine`], the timer samples with a configurable count and
//! seed ([`MonteCarloTimer::with_samples`] /
//! [`MonteCarloTimer::with_seed`]) so `analyze` is deterministic; the
//! explicit [`MonteCarloTimer::sample`] entry point remains for callers
//! that manage their own RNG.

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingEngine, TimingReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::montecarlo::summarize;
use vartol_stats::normal::standard_normal_sample;
use vartol_stats::{DiscretePdf, Moments};

/// Default sample count for trait-driven analyses.
pub const DEFAULT_MC_SAMPLES: usize = 4000;

/// Monte-Carlo timing engine.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloTimer<'a> {
    library: &'a Library,
    config: &'a SstaConfig,
    samples: usize,
    seed: u64,
}

/// Empirical circuit-delay distribution from sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    samples: Vec<f64>,
    moments: Moments,
    arrivals: Vec<Moments>,
}

impl<'a> MonteCarloTimer<'a> {
    /// Creates an engine over a library with the given configuration.
    #[must_use]
    pub fn new(library: &'a Library, config: &'a SstaConfig) -> Self {
        Self {
            library,
            config,
            samples: DEFAULT_MC_SAMPLES,
            seed: 0,
        }
    }

    /// Sets the sample count used by [`TimingEngine::analyze`].
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2`.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "need at least two samples");
        self.samples = samples;
        self
    }

    /// Sets the RNG seed used by [`TimingEngine::analyze`].
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Samples the circuit delay distribution `n` times (circuit-level
    /// statistics only; [`MonteCarloResult::arrivals`] stays empty — use
    /// [`MonteCarloTimer::sample_with_arrivals`] for per-node moments).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the netlist references cells missing from the
    /// library.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        n: usize,
        rng: &mut R,
    ) -> MonteCarloResult {
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        self.sample_impl(netlist, n, rng, &timing, false)
    }

    /// Like [`MonteCarloTimer::sample`], but also accumulates empirical
    /// per-node arrival moments (one extra pass over all nodes per
    /// sample).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the netlist references cells missing from the
    /// library.
    #[must_use]
    pub fn sample_with_arrivals<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        n: usize,
        rng: &mut R,
    ) -> MonteCarloResult {
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        self.sample_impl(netlist, n, rng, &timing, true)
    }

    fn sample_impl<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        n: usize,
        rng: &mut R,
        timing: &CircuitTiming,
        track_nodes: bool,
    ) -> MonteCarloResult {
        assert!(n >= 2, "need at least two samples");
        let node_count = netlist.node_count();
        let mut arrivals = vec![0.0f64; node_count];
        // Per-node running sums for empirical arrival moments.
        let mut sums = vec![0.0f64; if track_nodes { node_count } else { 0 }];
        let mut sq_sums = vec![0.0f64; if track_nodes { node_count } else { 0 }];
        let mut samples = Vec::with_capacity(n);

        for _ in 0..n {
            arrivals.fill(0.0);
            let mut worst = 0.0f64;
            for id in netlist.node_ids() {
                let g = netlist.gate(id);
                if g.is_input() {
                    continue;
                }
                let m = timing.delay_moments(id);
                let delay = (m.mean + m.std() * standard_normal_sample(rng)).max(0.0);
                let arr_in = g
                    .fanins()
                    .iter()
                    .map(|f| arrivals[f.index()])
                    .fold(0.0f64, f64::max);
                arrivals[id.index()] = arr_in + delay;
            }
            if track_nodes {
                for (i, &a) in arrivals.iter().enumerate() {
                    sums[i] += a;
                    sq_sums[i] += a * a;
                }
            }
            for &o in netlist.outputs() {
                worst = worst.max(arrivals[o.index()]);
            }
            samples.push(worst);
        }

        let count = n as f64;
        let node_moments = sums
            .iter()
            .zip(&sq_sums)
            .map(|(&s, &sq)| {
                let mean = s / count;
                Moments::new(mean, (sq / count - mean * mean).max(0.0))
            })
            .collect();
        let s = summarize(&samples);
        MonteCarloResult {
            samples,
            moments: s.moments(),
            arrivals: node_moments,
        }
    }
}

impl TimingEngine for MonteCarloTimer<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::MonteCarlo
    }

    fn analyze(&self, netlist: &Netlist) -> TimingReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        let result = self.sample_impl(netlist, self.samples, &mut rng, &timing, true);
        let worst_output = crate::WnssTracer::new(self.config.variation.mu_sigma_coupling())
            .worst_output(netlist, &result.arrivals);
        let circuit_pdf = result.empirical_pdf(self.config.pdf_samples);
        TimingReport {
            kind: EngineKind::MonteCarlo,
            arrivals: result.arrivals.clone(),
            pdfs: None,
            circuit: result.moments,
            circuit_pdf: Some(circuit_pdf),
            worst_output,
            timing,
            samples: Some(result.samples),
        }
    }
}

impl MonteCarloResult {
    /// Empirical mean/variance of the circuit delay.
    #[must_use]
    pub fn moments(&self) -> Moments {
        self.moments
    }

    /// Empirical per-node arrival moments, indexed by [`GateId::index`]
    /// (empty unless sampled via
    /// [`MonteCarloTimer::sample_with_arrivals`] or the engine trait).
    #[must_use]
    pub fn arrivals(&self) -> &[Moments] {
        &self.arrivals
    }

    /// Empirical arrival moments at one node.
    #[must_use]
    pub fn arrival(&self, id: GateId) -> Moments {
        self.arrivals[id.index()]
    }

    /// The raw delay samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Histograms the delay samples into a discrete PDF with `bins`
    /// support points.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn empirical_pdf(&self, bins: usize) -> DiscretePdf {
        assert!(bins > 0, "need at least one bin");
        let lo = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = self
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if hi - lo < 1e-12 {
            return DiscretePdf::deterministic(lo);
        }
        let width = (hi - lo) / bins as f64;
        let mut mass = vec![0.0f64; bins];
        let p = 1.0 / self.samples.len() as f64;
        for &s in &self.samples {
            let k = (((s - lo) / width) as usize).min(bins - 1);
            mass[k] += p;
        }
        DiscretePdf::from_points(
            mass.iter()
                .enumerate()
                .filter(|(_, &m)| m > 0.0)
                .map(|(k, &m)| (lo + (k as f64 + 0.5) * width, m))
                .collect(),
        )
    }

    /// Empirical `p`-quantile of the delay distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Fraction of samples not exceeding a period `t` — parametric yield at
    /// clock period `t`, the quantity Fig. 1 of the paper reasons about.
    #[must_use]
    pub fn yield_at(&self, t: f64) -> f64 {
        let ok = self.samples.iter().filter(|&&s| s <= t).count();
        ok as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fassta::Fassta;
    use crate::fullssta::FullSsta;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vartol_netlist::generators::{parity_tree, ripple_carry_adder};

    #[test]
    fn engines_agree_with_monte_carlo() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let mut rng = StdRng::seed_from_u64(10);
        let mc = MonteCarloTimer::new(&lib, &config)
            .sample(&n, 20_000, &mut rng)
            .moments();
        let full = FullSsta::new(&lib, &config).analyze(&n).circuit_moments();
        let fast = Fassta::new(&lib, &config).analyze(&n).circuit_moments();

        // FULLSSTA (correlation-aware) is held to tighter tolerances than
        // FASSTA, whose independence assumption biases the mean up and the
        // sigma down by design.
        assert!(
            (full.mean - mc.mean).abs() / mc.mean < 0.03,
            "full mean {} vs MC {}",
            full.mean,
            mc.mean
        );
        assert!(
            (fast.mean - mc.mean).abs() / mc.mean < 0.08,
            "fast mean {} vs MC {}",
            fast.mean,
            mc.mean
        );
        assert!(
            (full.std() - mc.std()).abs() / mc.std() < 0.25,
            "full sigma {} vs MC {}",
            full.std(),
            mc.std()
        );
        assert!(
            (fast.std() - mc.std()).abs() / mc.std() < 0.40,
            "fast sigma {} vs MC {}",
            fast.std(),
            mc.std()
        );
    }

    #[test]
    fn trait_analysis_is_deterministic_and_complete() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(4, &lib);
        let timer = MonteCarloTimer::new(&lib, &config)
            .with_samples(500)
            .with_seed(7);
        let a = TimingEngine::analyze(&timer, &n);
        let b = TimingEngine::analyze(&timer, &n);
        assert_eq!(a.circuit_moments(), b.circuit_moments(), "seeded run");
        assert_eq!(a.samples().map(<[f64]>::len), Some(500));
        assert!(a.circuit_pdf().is_some());
        // Empirical arrivals are populated and grow along the circuit.
        let o = a.worst_output();
        assert!(a.arrival(o).mean > 0.0);
        assert!(n.is_output(o));
    }

    #[test]
    fn empirical_node_arrivals_track_fullssta() {
        // Chain-dominated circuit: the level-bucket correlation heuristic
        // is accurate here (balanced trees overestimate correlation since
        // disjoint sibling subtrees have identical per-level variance).
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let mut rng = StdRng::seed_from_u64(11);
        let mc = MonteCarloTimer::new(&lib, &config).sample_with_arrivals(&n, 10_000, &mut rng);
        let full = FullSsta::new(&lib, &config).analyze(&n);
        for id in n.gate_ids() {
            let e = mc.arrival(id);
            let f = full.arrival(id);
            assert!(
                (e.mean - f.mean).abs() / f.mean.max(1.0) < 0.10,
                "node {id}: MC {e} vs FULLSSTA {f}"
            );
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(16, &lib);
        let mut rng = StdRng::seed_from_u64(2);
        let mc = MonteCarloTimer::new(&lib, &config).sample(&n, 2_000, &mut rng);
        assert!(mc.quantile(0.05) < mc.quantile(0.5));
        assert!(mc.quantile(0.5) < mc.quantile(0.99));
    }

    #[test]
    fn yield_monotone_in_period() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(8, &lib);
        let mut rng = StdRng::seed_from_u64(3);
        let mc = MonteCarloTimer::new(&lib, &config).sample(&n, 2_000, &mut rng);
        let m = mc.moments();
        assert!(mc.yield_at(m.mean - 3.0 * m.std()) < 0.1);
        assert!(mc.yield_at(m.mean + 3.0 * m.std()) > 0.95);
        assert!(mc.yield_at(m.mean) > 0.3 && mc.yield_at(m.mean) < 0.7);
    }

    #[test]
    fn deterministic_variation_gives_constant_samples() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::deterministic();
        let n = parity_tree(8, &lib);
        let mut rng = StdRng::seed_from_u64(4);
        let mc = MonteCarloTimer::new(&lib, &config).sample(&n, 100, &mut rng);
        assert!(mc.moments().std() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least two samples")]
    fn single_sample_panics() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(4, &lib);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MonteCarloTimer::new(&lib, &config).sample(&n, 1, &mut rng);
    }
}
