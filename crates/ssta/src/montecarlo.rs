//! Monte-Carlo circuit timing — the golden reference for both statistical
//! engines.
//!
//! Samples every gate delay independently from its `N(nominal, σ²)` model,
//! runs deterministic longest-path analysis per sample, and summarizes the
//! empirical distribution of the circuit delay. Slow but assumption-free
//! (no normal-approximation of maxima, no discretization), so FULLSSTA and
//! FASSTA are validated against it in tests and the accuracy ablation.

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use rand::Rng;
use vartol_liberty::Library;
use vartol_netlist::Netlist;
use vartol_stats::montecarlo::summarize;
use vartol_stats::normal::standard_normal_sample;
use vartol_stats::Moments;

/// Monte-Carlo timing engine.
#[derive(Debug, Clone)]
pub struct MonteCarloTimer<'l> {
    library: &'l Library,
    config: SstaConfig,
}

/// Empirical circuit-delay distribution from sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    samples: Vec<f64>,
    moments: Moments,
}

impl<'l> MonteCarloTimer<'l> {
    /// Creates an engine over a library with the given configuration.
    #[must_use]
    pub fn new(library: &'l Library, config: SstaConfig) -> Self {
        Self { library, config }
    }

    /// Samples the circuit delay distribution `n` times.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the netlist references cells missing from the
    /// library.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        n: usize,
        rng: &mut R,
    ) -> MonteCarloResult {
        assert!(n >= 2, "need at least two samples");
        let timing = CircuitTiming::compute(netlist, self.library, &self.config);
        let node_count = netlist.node_count();
        let mut arrivals = vec![0.0f64; node_count];
        let mut samples = Vec::with_capacity(n);

        for _ in 0..n {
            arrivals.fill(0.0);
            let mut worst = 0.0f64;
            for id in netlist.node_ids() {
                let g = netlist.gate(id);
                if g.is_input() {
                    continue;
                }
                let m = timing.delay_moments(id);
                let delay = (m.mean + m.std() * standard_normal_sample(rng)).max(0.0);
                let arr_in = g
                    .fanins()
                    .iter()
                    .map(|f| arrivals[f.index()])
                    .fold(0.0f64, f64::max);
                arrivals[id.index()] = arr_in + delay;
            }
            for &o in netlist.outputs() {
                worst = worst.max(arrivals[o.index()]);
            }
            samples.push(worst);
        }

        let s = summarize(&samples);
        MonteCarloResult {
            samples,
            moments: s.moments(),
        }
    }
}

impl MonteCarloResult {
    /// Empirical mean/variance of the circuit delay.
    #[must_use]
    pub fn moments(&self) -> Moments {
        self.moments
    }

    /// The raw delay samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Empirical `p`-quantile of the delay distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Fraction of samples not exceeding a period `t` — parametric yield at
    /// clock period `t`, the quantity Fig. 1 of the paper reasons about.
    #[must_use]
    pub fn yield_at(&self, t: f64) -> f64 {
        let ok = self.samples.iter().filter(|&&s| s <= t).count();
        ok as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fassta::Fassta;
    use crate::fullssta::FullSsta;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vartol_netlist::generators::{parity_tree, ripple_carry_adder};

    #[test]
    fn engines_agree_with_monte_carlo() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let mut rng = StdRng::seed_from_u64(10);
        let mc = MonteCarloTimer::new(&lib, config.clone())
            .sample(&n, 20_000, &mut rng)
            .moments();
        let full = FullSsta::new(&lib, config.clone())
            .analyze(&n)
            .circuit_moments();
        let fast = Fassta::new(&lib, config).analyze(&n).circuit_moments();

        // FULLSSTA (correlation-aware) is held to tighter tolerances than
        // FASSTA, whose independence assumption biases the mean up and the
        // sigma down by design.
        assert!(
            (full.mean - mc.mean).abs() / mc.mean < 0.03,
            "full mean {} vs MC {}",
            full.mean,
            mc.mean
        );
        assert!(
            (fast.mean - mc.mean).abs() / mc.mean < 0.08,
            "fast mean {} vs MC {}",
            fast.mean,
            mc.mean
        );
        assert!(
            (full.std() - mc.std()).abs() / mc.std() < 0.25,
            "full sigma {} vs MC {}",
            full.std(),
            mc.std()
        );
        assert!(
            (fast.std() - mc.std()).abs() / mc.std() < 0.40,
            "fast sigma {} vs MC {}",
            fast.std(),
            mc.std()
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let lib = Library::synthetic_90nm();
        let n = parity_tree(16, &lib);
        let mut rng = StdRng::seed_from_u64(2);
        let mc = MonteCarloTimer::new(&lib, SstaConfig::default()).sample(&n, 2_000, &mut rng);
        assert!(mc.quantile(0.05) < mc.quantile(0.5));
        assert!(mc.quantile(0.5) < mc.quantile(0.99));
    }

    #[test]
    fn yield_monotone_in_period() {
        let lib = Library::synthetic_90nm();
        let n = parity_tree(8, &lib);
        let mut rng = StdRng::seed_from_u64(3);
        let mc = MonteCarloTimer::new(&lib, SstaConfig::default()).sample(&n, 2_000, &mut rng);
        let m = mc.moments();
        assert!(mc.yield_at(m.mean - 3.0 * m.std()) < 0.1);
        assert!(mc.yield_at(m.mean + 3.0 * m.std()) > 0.95);
        assert!(mc.yield_at(m.mean) > 0.3 && mc.yield_at(m.mean) < 0.7);
    }

    #[test]
    fn deterministic_variation_gives_constant_samples() {
        let lib = Library::synthetic_90nm();
        let n = parity_tree(8, &lib);
        let mut rng = StdRng::seed_from_u64(4);
        let mc = MonteCarloTimer::new(&lib, SstaConfig::deterministic()).sample(&n, 100, &mut rng);
        assert!(mc.moments().std() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least two samples")]
    fn single_sample_panics() {
        let lib = Library::synthetic_90nm();
        let n = parity_tree(4, &lib);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MonteCarloTimer::new(&lib, SstaConfig::default()).sample(&n, 1, &mut rng);
    }
}
