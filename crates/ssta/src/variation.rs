//! The correlated process-variation model shared by every engine.
//!
//! # Why the independent model is not enough
//!
//! The library's per-gate [`vartol_liberty::VariationModel`] assigns each
//! gate delay a standard deviation σ (proportional component shrinking
//! with drive strength plus a random floor), and the engines historically
//! sampled every gate **independently** from `N(nominal, σ²)`. Real
//! process variation is not independent: die-to-die (D2D) parameter
//! shifts move *every* gate on a die together, and within-die systematic
//! variation is **spatially correlated** — nearby gates see nearly the
//! same deviation (Chang & Sapatnekar, ICCAD'03). Both effects change
//! circuit-level statistics dramatically: perfectly correlated variation
//! does not average down along a path the way independent variation
//! does, so the σ of the circuit delay grows, while the relative spread
//! between parallel paths shrinks.
//!
//! # The decomposition
//!
//! [`VariationModel`] decomposes each gate's delay deviation into three
//! zero-mean components, scaled by the gate's own σ from the library
//! model (so upsizing a gate still shrinks *all* of its variation):
//!
//! ```text
//! delay_i = nominal_i + σ_i · ( local · ε_i                       (independent)
//!                             + Σ_g  s_g · G_g                    (global / die-to-die)
//!                             + s_sp · S(x_i, y_i) )              (spatially correlated)
//! ```
//!
//! * `ε_i` — independent standard normals, one per gate (the legacy
//!   model); `local` is [`VariationModel::local_sigma_scale`].
//! * `G_g` — one standard normal **per global source** `g`, shared by
//!   every gate on the die ([`GlobalSource::sigma_scale`] is `s_g`).
//! * `S(x, y)` — a unit-variance spatially correlated Gaussian field
//!   sampled at the gate's position, with
//!   `Corr(S(p), S(q)) = exp(-d(p,q)/L)` ([`SpatialGrid`]).
//!
//! The marginal per-gate variance is
//! `σ_i² · (local² + Σ s_g² + s_sp²)`; models built with
//! [`VariationModel::normalized`] keep that factor at exactly 1 so the
//! per-gate marginals match the legacy independent model and only the
//! *correlations* change.
//!
//! # PCA of the spatial field
//!
//! The spatial field is discretized onto a small grid: every gate maps
//! to a cell (deterministically, from its topological level and its rank
//! within the level — netlists carry no placement, so this synthetic
//! floorplan stands in for one), and the cell-to-cell correlation matrix
//! `exp(-d/L)` is decomposed with the principal-component analysis in
//! [`vartol_stats::correlation`]: each cell's field value becomes a
//! linear combination of **independent** standard-normal components,
//! `S_c = Σ_k loadings[c][k] · Z_k` with
//! `Σ_k loadings[c][k]·loadings[d][k] = Corr(c, d)` (see
//! [`vartol_stats::correlation::PcaModel::covariance`]). Sampling
//! engines draw the `Z_k` once per sample; the covariance they induce is
//! exact (no truncation — the grid is small).
//!
//! # Gauss–Hermite conditioning for the analytic engines
//!
//! FULLSSTA, FASSTA, and DSTA cannot sample, so they **condition** on
//! the global sources. Because every gate carries the same loadings
//! `s_g`, the sources only enter through the scalar
//! `Y = Σ_g s_g · G_g ~ N(0, ρ²)` with `ρ² = Σ_g s_g²` — so
//! conditioning is one-dimensional regardless of how many sources the
//! model declares. For each node `y_q` of an `n`-point Gauss–Hermite
//! rule (nodes `x_q`, weights `w_q` for a standard normal,
//! [`gauss_hermite`]), the engine runs its ordinary propagation with
//! every gate delay transformed as
//!
//! ```text
//! mean_i(q) = nominal_i + σ_i · ρ · x_q        (the shared shift)
//! var_i(q)  = σ_i² · (local² + s_sp²)          (the residual variance)
//! ```
//!
//! and the unconditional moments of any arrival `X` recombine by the law
//! of total expectation/variance:
//!
//! ```text
//! E[X]   = Σ_q w_q · μ_q
//! Var[X] = Σ_q w_q · (σ_q² + μ_q²) − E[X]²
//! ```
//!
//! This happens *per node inside the propagation state*, so incremental
//! sessions still recompute only the fanout cone of an edit — each cone
//! node is simply refreshed in all `n` conditional "lanes" at once. The
//! spatial component is **not** conditioned on (that would be a
//! many-dimensional grid); analytic engines keep it in the residual
//! variance — its per-gate marginal is exact, only the path *covariance*
//! it induces is ignored — while the Monte-Carlo engine models it fully.
//!
//! # Worked example (c17)
//!
//! ```
//! use vartol_liberty::Library;
//! use vartol_netlist::iscas::parse_bench;
//! use vartol_ssta::{FullSsta, SstaConfig, TimingEngine, VariationModel};
//!
//! // The smallest ISCAS-85 benchmark: six NAND2 gates.
//! let lib = Library::synthetic_90nm();
//! let c17 = parse_bench(
//!     "INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n\
//!      OUTPUT(G22)\nOUTPUT(G23)\n\
//!      G10 = NAND(G1, G3)\nG11 = NAND(G3, G6)\nG16 = NAND(G2, G11)\n\
//!      G19 = NAND(G11, G7)\nG22 = NAND(G10, G16)\nG23 = NAND(G16, G19)\n",
//!     "c17",
//! ).expect("well-formed bench text");
//!
//! // Legacy: every gate independent.
//! let independent = SstaConfig::default();
//! let base = FullSsta::new(&lib, &independent).analyze(&c17).circuit_moments();
//!
//! // 60% of each gate's delay variance moves with the die; per-gate
//! // marginals stay identical (`normalized` sets local = sqrt(0.4)).
//! let d2d = independent.clone().with_model(VariationModel::die_to_die(0.6));
//! let corr = FullSsta::new(&lib, &d2d).analyze(&c17).circuit_moments();
//!
//! // Correlated variation cannot average down along a path: the circuit
//! // sigma grows even though every individual gate varies just as much.
//! assert!((corr.mean - base.mean).abs() / base.mean < 0.05);
//! assert!(corr.std() > base.std());
//! ```

use vartol_netlist::Netlist;
use vartol_stats::correlation::{CorrelationMatrix, PcaModel};
use vartol_stats::Moments;

/// Default number of Gauss–Hermite points the analytic engines condition
/// with (exact for polynomial statistics up to degree `2·7−1 = 13`).
pub const DEFAULT_QUADRATURE_POINTS: usize = 7;

/// One die-wide variation source: a standard-normal deviate shared by
/// every gate, entering each gate's delay as `σ_gate · sigma_scale · G`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GlobalSource {
    /// Human-readable source name (`"d2d"`, `"vth_global"`, …).
    pub name: String,
    /// Fraction of each gate's σ carried by this source; the source's
    /// share of the gate's delay *variance* is `sigma_scale²`.
    pub sigma_scale: f64,
}

impl GlobalSource {
    /// Creates a named source carrying `share` of each gate's delay
    /// variance (`sigma_scale = sqrt(share)`).
    ///
    /// # Panics
    ///
    /// Panics if `share` is not in `[0, 1]`.
    #[must_use]
    pub fn with_variance_share(name: impl Into<String>, share: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&share),
            "variance share must be in [0,1], got {share}"
        );
        Self {
            name: name.into(),
            sigma_scale: share.sqrt(),
        }
    }
}

/// The spatially correlated within-die component: a unit-variance
/// Gaussian field with `exp(-d/L)` correlation, discretized on a
/// `rows × cols` grid of unit-spaced cells.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpatialGrid {
    /// Grid rows (≥ 1).
    pub rows: usize,
    /// Grid columns (≥ 1).
    pub cols: usize,
    /// Correlation length `L` in cell units: two cells a distance `d`
    /// apart correlate as `exp(-d/L)`.
    pub correlation_length: f64,
    /// Fraction of each gate's σ carried by the field (the field's share
    /// of the gate's delay variance is `sigma_scale²`).
    pub sigma_scale: f64,
}

impl SpatialGrid {
    /// Creates a grid carrying `share` of each gate's delay variance.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, `correlation_length <= 0`, or
    /// `share` is outside `[0, 1]`.
    #[must_use]
    pub fn with_variance_share(
        rows: usize,
        cols: usize,
        correlation_length: f64,
        share: f64,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "grid needs at least one cell");
        assert!(
            correlation_length > 0.0,
            "correlation length must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&share),
            "variance share must be in [0,1], got {share}"
        );
        Self {
            rows,
            cols,
            correlation_length,
            sigma_scale: share.sqrt(),
        }
    }

    /// Number of grid cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// The correlated process-variation model threaded through every engine
/// (see the [module docs](self) for the decomposition and its math).
///
/// The default — [`VariationModel::none`] — has no shared sources and
/// `local_sigma_scale = 1`, under which **every engine is bit-identical
/// to the legacy independent model** (the correlated code paths are not
/// even entered).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VariationModel {
    /// Die-wide sources shared by every gate.
    pub global: Vec<GlobalSource>,
    /// The spatially correlated within-die component, if any.
    pub spatial: Option<SpatialGrid>,
    /// Fraction of each gate's σ that remains gate-local (independent).
    pub local_sigma_scale: f64,
    /// Gauss–Hermite points the analytic engines condition with.
    pub quadrature_points: usize,
}

impl VariationModel {
    /// The legacy model: all variation gate-local and independent.
    #[must_use]
    pub fn none() -> Self {
        Self {
            global: Vec::new(),
            spatial: None,
            local_sigma_scale: 1.0,
            quadrature_points: DEFAULT_QUADRATURE_POINTS,
        }
    }

    /// A pure die-to-die model: one global source carrying `share` of
    /// each gate's delay variance, the rest gate-local
    /// (per-gate marginals match the independent model exactly).
    ///
    /// # Panics
    ///
    /// Panics if `share` is outside `[0, 1]`.
    #[must_use]
    pub fn die_to_die(share: f64) -> Self {
        Self::none()
            .with_global_source(GlobalSource::with_variance_share("d2d", share))
            .normalized()
    }

    /// Adds a global source (keeps `local_sigma_scale` untouched; call
    /// [`VariationModel::normalized`] to re-balance).
    #[must_use]
    pub fn with_global_source(mut self, source: GlobalSource) -> Self {
        self.global.push(source);
        self
    }

    /// Sets the spatial component (keeps `local_sigma_scale` untouched;
    /// call [`VariationModel::normalized`] to re-balance).
    #[must_use]
    pub fn with_spatial(mut self, grid: SpatialGrid) -> Self {
        self.spatial = Some(grid);
        self
    }

    /// Sets the Gauss–Hermite point count for analytic conditioning.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64` (the same range [`gauss_hermite`]
    /// and [`VariationModel::validate`] enforce — failing here keeps the
    /// panic at the misconfiguration site instead of deep inside a later
    /// analysis).
    #[must_use]
    pub fn with_quadrature_points(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one quadrature point");
        assert!(n <= 64, "quadrature order capped at 64, got {n}");
        self.quadrature_points = n;
        self
    }

    /// Rebalances `local_sigma_scale` so the total variance factor
    /// `local² + Σ s_g² + s_sp²` is exactly 1 — per-gate marginal
    /// variance then matches the legacy independent model.
    ///
    /// # Panics
    ///
    /// Panics if the shared components already claim more than the whole
    /// variance (`Σ s_g² + s_sp² > 1`).
    #[must_use]
    pub fn normalized(mut self) -> Self {
        let shared = self.shared_variance_fraction();
        assert!(
            shared <= 1.0 + 1e-12,
            "shared sources claim {shared:.4} of the variance (> 1)"
        );
        self.local_sigma_scale = (1.0 - shared).max(0.0).sqrt();
        self
    }

    /// Whether the model adds nothing over the independent one: no
    /// global sources, no spatial component, and an unscaled local term.
    /// Engines take the legacy bit-identical code paths when this holds;
    /// any non-empty model (including a bare `local_sigma_scale != 1`)
    /// is honored by every engine — the Monte-Carlo sampler applies the
    /// component scales per draw, and the analytic engines scale the
    /// per-gate residual variance to match even when there is nothing to
    /// condition on.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.global.is_empty() && self.spatial.is_none() && self.local_sigma_scale == 1.0
    }

    /// Whether any global (die-to-die) source is present — the condition
    /// under which analytic engines run Gauss–Hermite lanes.
    #[must_use]
    pub fn has_global(&self) -> bool {
        !self.global.is_empty()
    }

    /// `ρ = sqrt(Σ s_g²)`: the standard deviation of the combined global
    /// shift `Y = Σ s_g G_g` in per-gate σ units.
    #[must_use]
    pub fn global_shift_sigma(&self) -> f64 {
        self.global
            .iter()
            .map(|s| s.sigma_scale * s.sigma_scale)
            .sum::<f64>()
            .sqrt()
    }

    /// Variance fraction claimed by the shared components
    /// (`Σ s_g² + s_sp²`).
    #[must_use]
    pub fn shared_variance_fraction(&self) -> f64 {
        let global: f64 = self
            .global
            .iter()
            .map(|s| s.sigma_scale * s.sigma_scale)
            .sum();
        let spatial = self
            .spatial
            .as_ref()
            .map_or(0.0, |g| g.sigma_scale * g.sigma_scale);
        global + spatial
    }

    /// Variance fraction left after conditioning on the global sources
    /// (`local² + s_sp²`) — the per-lane residual of the analytic
    /// engines.
    #[must_use]
    pub fn conditioned_residual_fraction(&self) -> f64 {
        let local = self.local_sigma_scale * self.local_sigma_scale;
        let spatial = self
            .spatial
            .as_ref()
            .map_or(0.0, |g| g.sigma_scale * g.sigma_scale);
        local + spatial
    }

    /// Total variance scale factor `local² + Σ s_g² + s_sp²` (1 for
    /// normalized models).
    #[must_use]
    pub fn total_variance_scale(&self) -> f64 {
        self.local_sigma_scale * self.local_sigma_scale + self.shared_variance_fraction()
    }

    /// Validates every parameter, for models arriving over a service
    /// boundary (the typed constructors enforce this at build time).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        let check_scale = |what: &str, s: f64| -> Result<(), String> {
            if s.is_finite() && (0.0..=1.0).contains(&s) {
                Ok(())
            } else {
                Err(format!("{what} sigma_scale must be in [0,1], got {s}"))
            }
        };
        check_scale("local", self.local_sigma_scale)?;
        for g in &self.global {
            check_scale(&format!("global source `{}`", g.name), g.sigma_scale)?;
        }
        if let Some(grid) = &self.spatial {
            check_scale("spatial", grid.sigma_scale)?;
            if grid.rows == 0 || grid.cols == 0 {
                return Err("spatial grid needs at least one cell".into());
            }
            if grid.cells() > 1024 {
                return Err(format!(
                    "spatial grid has {} cells; the PCA is dense, keep it <= 1024",
                    grid.cells()
                ));
            }
            if !grid.correlation_length.is_finite() || grid.correlation_length <= 0.0 {
                return Err(format!(
                    "spatial correlation length must be positive, got {}",
                    grid.correlation_length
                ));
            }
        }
        if self.shared_variance_fraction() > 1.0 + 1e-9 {
            return Err(format!(
                "shared sources claim {:.4} of the variance (> 1)",
                self.shared_variance_fraction()
            ));
        }
        if self.quadrature_points == 0 || self.quadrature_points > 64 {
            return Err(format!(
                "quadrature_points must be in 1..=64, got {}",
                self.quadrature_points
            ));
        }
        Ok(())
    }

    /// The conditioning lanes of the analytic engines: one
    /// `(shift, weight)` pair per Gauss–Hermite node, where `shift`
    /// (in per-gate σ units, `ρ·x_q`) displaces every gate's mean delay
    /// by `σ_gate · shift`. Empty when no global source is present.
    #[must_use]
    pub fn conditioning_lanes(&self) -> Vec<(f64, f64)> {
        if !self.has_global() {
            return Vec::new();
        }
        let rho = self.global_shift_sigma();
        let (nodes, weights) = gauss_hermite(self.quadrature_points);
        nodes
            .into_iter()
            .zip(weights)
            .map(|(x, w)| (rho * x, w))
            .collect()
    }

    /// The delay moments of a gate **conditioned** on the combined
    /// global shift being `shift` σ-units: the mean moves by
    /// `σ·shift`, the variance shrinks to the residual fraction.
    #[must_use]
    pub fn conditioned_delay(&self, m: Moments, shift: f64) -> Moments {
        condition_moments(m, shift, self.conditioned_residual_fraction())
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::none()
    }
}

impl std::fmt::Display for VariationModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "independent");
        }
        write!(f, "local {:.2}", self.local_sigma_scale)?;
        for g in &self.global {
            write!(f, " + {} {:.2}", g.name, g.sigma_scale)?;
        }
        if let Some(grid) = &self.spatial {
            write!(
                f,
                " + spatial {:.2} ({}x{}, L={})",
                grid.sigma_scale, grid.rows, grid.cols, grid.correlation_length
            )?;
        }
        Ok(())
    }
}

/// The conditioning transform shared by [`VariationModel::conditioned_delay`]
/// and the engines' propagation kernels: mean displaced by `σ·shift`,
/// variance scaled to `resid`. `(0.0, 1.0)` is IEEE-bit-identical to the
/// input (`x + σ·0.0 == x`, `var·1.0 == var`) — the legacy laneless path.
#[must_use]
pub fn condition_moments(m: Moments, shift: f64, resid: f64) -> Moments {
    let sigma = m.var.sqrt();
    Moments::new(m.mean + sigma * shift, m.var * resid)
}

/// Recombines per-lane conditional moments into unconditional moments by
/// the law of total expectation/variance:
/// `E[X] = Σ w μ_q`, `Var[X] = Σ w σ_q² + Σ w (μ_q − E[X])²`.
///
/// The variance uses the **centered** form, not `E[X²] − E[X]²` — at
/// arrival means around `1e8` the uncentered subtraction cancels
/// catastrophically (the failure mode `RunningMoments` was introduced
/// for in the Monte-Carlo accumulators), whereas centered squared
/// deviations keep full precision at any offset.
#[must_use]
pub fn mix_conditional_moments(lanes: impl Iterator<Item = (f64, Moments)>) -> Moments {
    let lanes: Vec<(f64, Moments)> = lanes.collect();
    let mut mean = 0.0f64;
    for (w, m) in &lanes {
        mean += w * m.mean;
    }
    let mut var = 0.0f64;
    for (w, m) in &lanes {
        let d = m.mean - mean;
        var += w * (m.var + d * d);
    }
    Moments::new(mean, var.max(0.0))
}

/// Gauss–Hermite quadrature for a **standard normal** weight: returns
/// `(nodes, weights)` such that `Σ w_q f(x_q) ≈ E[f(Z)]`, exact for
/// polynomials up to degree `2n − 1`. Nodes ascend; weights sum to 1.
///
/// Nodes are the roots of the probabilists' Hermite polynomial `Heₙ`,
/// found by interlacing bisection (roots of `He_{k+1}` strictly
/// interlace those of `He_k`, so each lies in a bracket with a sign
/// change); weights use the Golub–Welsch identity
/// `w_i = 1 / Σ_{k<n} Heₖ(x_i)²/k!`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 64` (the three-term recurrence overflows
/// factorials far beyond any useful conditioning order).
#[must_use]
pub fn gauss_hermite(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n > 0, "need at least one quadrature point");
    assert!(n <= 64, "quadrature order capped at 64, got {n}");
    // Evaluate He_n(x) by the three-term recurrence.
    let he = |order: usize, x: f64| -> f64 {
        let mut prev = 1.0f64; // He_0
        if order == 0 {
            return prev;
        }
        let mut cur = x; // He_1
        for k in 1..order {
            let next = x * cur - k as f64 * prev;
            prev = cur;
            cur = next;
        }
        cur
    };

    // Roots by interlacing: grow from He_1 (root {0}) upward; the roots
    // of He_{k+1} lie strictly between consecutive roots of He_k,
    // extended by an outer bound that encloses every Hermite root.
    let mut roots = vec![0.0f64];
    for order in 2..=n {
        let bound = 2.0 * (order as f64).sqrt() + 2.0;
        let mut brackets = Vec::with_capacity(order + 1);
        brackets.push(-bound);
        brackets.extend_from_slice(&roots);
        brackets.push(bound);
        let mut next = Vec::with_capacity(order);
        for w in brackets.windows(2) {
            let (mut lo, mut hi) = (w[0], w[1]);
            let flo = he(order, lo);
            debug_assert!(flo * he(order, hi) <= 0.0, "interlacing bracket");
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if flo * he(order, mid) <= 0.0 {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            next.push(0.5 * (lo + hi));
        }
        roots = next;
    }

    // Golub–Welsch weights via the orthonormal Christoffel sum.
    let weights: Vec<f64> = roots
        .iter()
        .map(|&x| {
            let mut sum = 0.0f64;
            let mut factorial = 1.0f64;
            for k in 0..n {
                if k > 0 {
                    factorial *= k as f64;
                }
                let h = he(k, x);
                sum += h * h / factorial;
            }
            1.0 / sum
        })
        .collect();
    (roots, weights)
}

/// The PCA-reduced spatial field of one netlist under one model: a
/// deterministic gate-to-cell floorplan plus per-cell component
/// loadings (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialPca {
    /// Grid cell of every node, indexed by
    /// [`GateId::index`](vartol_netlist::GateId::index).
    cell_of: Vec<usize>,
    /// `loadings[cell][k]`: weight of independent component `k` in the
    /// cell's unit-variance field value.
    loadings: Vec<Vec<f64>>,
}

impl SpatialPca {
    /// Builds the synthetic floorplan and the field PCA for a netlist:
    /// gate `i` maps to the cell at (column ∝ topological level,
    /// row ∝ rank within the level), and the cell correlation matrix
    /// `exp(-d/L)` is decomposed into independent components.
    #[must_use]
    pub fn build(grid: &SpatialGrid, netlist: &Netlist) -> Self {
        let levels = netlist.levels();
        let depth = levels.iter().max().copied().unwrap_or(0);
        // Rank of each node within its level, and each level's size.
        let mut level_counts = vec![0usize; depth + 1];
        let ranks: Vec<usize> = levels
            .iter()
            .map(|&l| {
                let r = level_counts[l];
                level_counts[l] += 1;
                r
            })
            .collect();
        let place = |span: usize, pos: f64| -> usize {
            // pos in [0,1] -> nearest of `span` cells.
            ((pos * (span.saturating_sub(1)) as f64).round() as usize).min(span - 1)
        };
        let cell_of: Vec<usize> = levels
            .iter()
            .zip(&ranks)
            .map(|(&l, &r)| {
                let x = if depth == 0 {
                    0.0
                } else {
                    l as f64 / depth as f64
                };
                let n_in_level = level_counts[l];
                let y = if n_in_level <= 1 {
                    0.5
                } else {
                    r as f64 / (n_in_level - 1) as f64
                };
                place(grid.rows, y) * grid.cols + place(grid.cols, x)
            })
            .collect();

        let centers: Vec<(f64, f64)> = (0..grid.cells())
            .map(|c| ((c % grid.cols) as f64, (c / grid.cols) as f64))
            .collect();
        let corr = CorrelationMatrix::spatial(&centers, grid.correlation_length);
        let unit = vec![Moments::from_mean_std(0.0, 1.0); grid.cells()];
        let pca = PcaModel::decompose(&unit, &corr);
        Self {
            cell_of,
            loadings: pca.loadings,
        }
    }

    /// Number of independent components (= grid cells; no truncation).
    #[must_use]
    pub fn components(&self) -> usize {
        self.loadings.first().map_or(0, Vec::len)
    }

    /// The grid cell a node maps to.
    #[must_use]
    pub fn cell(&self, node_index: usize) -> usize {
        self.cell_of[node_index]
    }

    /// Evaluates the field at every cell for one draw of the component
    /// vector `z` (length [`SpatialPca::components`]), into `field`
    /// (length = cell count).
    pub fn field_into(&self, z: &[f64], field: &mut [f64]) {
        debug_assert_eq!(field.len(), self.loadings.len());
        for (f, loadings) in field.iter_mut().zip(&self.loadings) {
            *f = loadings.iter().zip(z).map(|(a, b)| a * b).sum();
        }
    }

    /// The field correlation the loadings induce between two cells
    /// (exactly `exp(-d/L)` — no truncation).
    #[must_use]
    pub fn cell_correlation(&self, a: usize, b: usize) -> f64 {
        self.loadings[a]
            .iter()
            .zip(&self.loadings[b])
            .map(|(x, y)| x * y)
            .sum()
    }
}

/// Everything the Monte-Carlo engine precomputes to sample one netlist
/// under one model: the model's scales plus the spatial PCA (if any).
#[derive(Debug, Clone, PartialEq)]
pub struct VariationContext {
    model: VariationModel,
    spatial: Option<SpatialPca>,
}

impl VariationContext {
    /// Builds the sampling context for a netlist. Cheap when the model
    /// is empty; otherwise dominated by the (small, dense) grid PCA.
    #[must_use]
    pub fn new(model: &VariationModel, netlist: &Netlist) -> Self {
        let spatial = model
            .spatial
            .as_ref()
            .map(|grid| SpatialPca::build(grid, netlist));
        Self {
            model: model.clone(),
            spatial,
        }
    }

    /// The model this context was built from.
    #[must_use]
    pub fn model(&self) -> &VariationModel {
        &self.model
    }

    /// The spatial PCA, when the model has a spatial component.
    #[must_use]
    pub fn spatial(&self) -> Option<&SpatialPca> {
        self.spatial.as_ref()
    }

    /// Whether sampling should take the legacy independent path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.model.is_empty()
    }

    /// Number of shared standard-normal draws one sample needs
    /// (global sources first, then spatial components — the fixed draw
    /// order of the deterministic sampling contract).
    #[must_use]
    pub fn shared_dims(&self) -> usize {
        self.model.global.len() + self.spatial.as_ref().map_or(0, SpatialPca::components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vartol_liberty::Library;
    use vartol_netlist::generators::ripple_carry_adder;

    #[test]
    fn gauss_hermite_low_orders_are_exact() {
        let (x, w) = gauss_hermite(1);
        assert_eq!(x, vec![0.0]);
        assert_eq!(w, vec![1.0]);

        let (x, w) = gauss_hermite(2);
        assert!((x[0] + 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
        assert!((w[0] - 0.5).abs() < 1e-12 && (w[1] - 0.5).abs() < 1e-12);

        let (x, w) = gauss_hermite(3);
        assert!((x[0] + 3.0f64.sqrt()).abs() < 1e-10, "{x:?}");
        assert!(x[1].abs() < 1e-10);
        assert!((w[1] - 2.0 / 3.0).abs() < 1e-10, "{w:?}");
    }

    #[test]
    fn gauss_hermite_matches_normal_moments() {
        for n in [1usize, 2, 3, 5, 7, 9, 15] {
            let (x, w) = gauss_hermite(n);
            assert_eq!(x.len(), n);
            let total: f64 = w.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "order {n}: mass {total}");
            let mean: f64 = x.iter().zip(&w).map(|(x, w)| w * x).sum();
            assert!(mean.abs() < 1e-10, "order {n}: mean {mean}");
            if n >= 2 {
                let var: f64 = x.iter().zip(&w).map(|(x, w)| w * x * x).sum();
                assert!((var - 1.0).abs() < 1e-9, "order {n}: var {var}");
            }
            if n >= 3 {
                let kurt: f64 = x.iter().zip(&w).map(|(x, w)| w * x.powi(4)).sum();
                assert!((kurt - 3.0).abs() < 1e-8, "order {n}: kurtosis {kurt}");
            }
            // Nodes ascend and are symmetric.
            for pair in x.windows(2) {
                assert!(pair[0] < pair[1]);
            }
            for i in 0..n {
                assert!((x[i] + x[n - 1 - i]).abs() < 1e-9, "order {n} symmetry");
            }
        }
    }

    #[test]
    fn none_model_is_empty_and_unit_scaled() {
        let m = VariationModel::none();
        assert!(m.is_empty());
        assert!(!m.has_global());
        assert_eq!(m.local_sigma_scale, 1.0);
        assert_eq!(m.total_variance_scale(), 1.0);
        assert!(m.conditioning_lanes().is_empty());
        assert!(m.validate().is_ok());
        assert_eq!(m, VariationModel::default());
        assert_eq!(m.to_string(), "independent");
    }

    #[test]
    fn die_to_die_preserves_marginal_variance() {
        let m = VariationModel::die_to_die(0.6);
        assert!(m.has_global());
        assert!((m.total_variance_scale() - 1.0).abs() < 1e-12);
        assert!((m.global_shift_sigma() - 0.6f64.sqrt()).abs() < 1e-12);
        assert!((m.conditioned_residual_fraction() - 0.4).abs() < 1e-12);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn conditioning_lanes_reproduce_the_shift_distribution() {
        let m = VariationModel::die_to_die(0.5);
        let lanes = m.conditioning_lanes();
        assert_eq!(lanes.len(), DEFAULT_QUADRATURE_POINTS);
        let mass: f64 = lanes.iter().map(|(_, w)| w).sum();
        let var: f64 = lanes.iter().map(|(s, w)| w * s * s).sum();
        assert!((mass - 1.0).abs() < 1e-10);
        assert!((var - 0.5).abs() < 1e-9, "shift variance = rho^2");
    }

    #[test]
    fn conditioned_delay_shifts_mean_and_shrinks_variance() {
        let m = VariationModel::die_to_die(0.75);
        let d = Moments::from_mean_std(100.0, 8.0);
        let up = m.conditioned_delay(d, 1.5);
        assert!((up.mean - (100.0 + 8.0 * 1.5)).abs() < 1e-12);
        assert!((up.var - 64.0 * 0.25).abs() < 1e-12);
        // Mixing the lanes recovers the unconditional moments exactly.
        let mixed = mix_conditional_moments(
            m.conditioning_lanes()
                .into_iter()
                .map(|(s, w)| (w, m.conditioned_delay(d, s))),
        );
        assert!((mixed.mean - 100.0).abs() < 1e-9);
        assert!((mixed.var - 64.0).abs() < 1e-6, "{}", mixed.var);
    }

    #[test]
    fn mixing_identical_lanes_is_identity() {
        let m = Moments::from_mean_std(42.0, 3.0);
        let mixed = mix_conditional_moments([(0.25, m), (0.5, m), (0.25, m)].into_iter());
        assert!((mixed.mean - 42.0).abs() < 1e-12);
        assert!((mixed.var - 9.0).abs() < 1e-9);
    }

    #[test]
    fn mixing_is_stable_at_large_means() {
        // The uncentered E[X²] − E[X]² form loses the entire variance to
        // cancellation at means ~1e8 (ulp(1e16) = 2); the centered form
        // must recover it exactly.
        let m = Moments::from_mean_std(1.0e8, 3.0);
        let mixed = mix_conditional_moments([(0.5, m), (0.5, m)].into_iter());
        assert!((mixed.var - 9.0).abs() < 1e-6, "var {}", mixed.var);
        let shifted = mix_conditional_moments(
            [
                (0.5, Moments::from_mean_std(1.0e8 - 2.0, 3.0)),
                (0.5, Moments::from_mean_std(1.0e8 + 2.0, 3.0)),
            ]
            .into_iter(),
        );
        assert!((shifted.var - 13.0).abs() < 1e-6, "var {}", shifted.var);
    }

    #[test]
    fn validation_rejects_bad_scales() {
        let mut m = VariationModel::die_to_die(0.5);
        m.global[0].sigma_scale = f64::NAN;
        assert!(m.validate().is_err());
        let m = VariationModel::none()
            .with_global_source(GlobalSource {
                name: "a".into(),
                sigma_scale: 0.9,
            })
            .with_global_source(GlobalSource {
                name: "b".into(),
                sigma_scale: 0.9,
            });
        assert!(m.validate().is_err(), "shares sum over 1");
        let mut m = VariationModel::die_to_die(0.5);
        m.quadrature_points = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "variance share must be in [0,1]")]
    fn over_unit_share_panics() {
        let _ = VariationModel::die_to_die(1.5);
    }

    #[test]
    fn spatial_pca_reconstructs_grid_correlation() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(4, &lib);
        let grid = SpatialGrid::with_variance_share(3, 4, 2.0, 0.5);
        let pca = SpatialPca::build(&grid, &n);
        assert_eq!(pca.components(), 12);
        let centers: Vec<(f64, f64)> = (0..12).map(|c| ((c % 4) as f64, (c / 4) as f64)).collect();
        for a in 0..12 {
            for b in 0..12 {
                let dx = centers[a].0 - centers[b].0;
                let dy = centers[a].1 - centers[b].1;
                let want = (-(dx * dx + dy * dy).sqrt() / 2.0).exp();
                let got = pca.cell_correlation(a, b);
                assert!((got - want).abs() < 1e-6, "corr({a},{b}) {got} vs {want}");
            }
        }
    }

    #[test]
    fn floorplan_is_deterministic_and_in_range() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let grid = SpatialGrid::with_variance_share(4, 4, 1.5, 0.4);
        let a = SpatialPca::build(&grid, &n);
        let b = SpatialPca::build(&grid, &n);
        assert_eq!(a, b, "floorplan and PCA are pure functions of topology");
        for i in 0..n.node_count() {
            assert!(a.cell(i) < grid.cells());
        }
        // A non-trivial circuit spreads over more than one cell.
        let distinct: std::collections::BTreeSet<usize> =
            (0..n.node_count()).map(|i| a.cell(i)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn context_counts_shared_dims() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(4, &lib);
        let empty = VariationContext::new(&VariationModel::none(), &n);
        assert!(empty.is_empty());
        assert_eq!(empty.shared_dims(), 0);

        let model = VariationModel::none()
            .with_global_source(GlobalSource::with_variance_share("d2d", 0.3))
            .with_spatial(SpatialGrid::with_variance_share(2, 3, 1.0, 0.2))
            .normalized();
        let ctx = VariationContext::new(&model, &n);
        assert!(!ctx.is_empty());
        assert_eq!(ctx.shared_dims(), 1 + 6);
        assert!((model.total_variance_scale() - 1.0).abs() < 1e-12);
    }
}
