//! Deterministic static timing analysis (nominal delays only).
//!
//! The classical engine underlying the mean-delay baseline optimizer: the
//! "original" column of the paper's Table 1 is a circuit "obtained by
//! optimizing ... with a goal of minimizing the mean of the longest delay",
//! which is exactly deterministic STA-driven sizing.

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};

/// Deterministic static timing engine.
#[derive(Debug, Clone)]
pub struct Dsta<'l> {
    library: &'l Library,
    config: SstaConfig,
}

/// Result of a deterministic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DstaResult {
    arrivals: Vec<f64>,
    max_delay: f64,
    worst_output: GateId,
    timing: CircuitTiming,
}

impl<'l> Dsta<'l> {
    /// Creates an engine over a library with the given configuration.
    #[must_use]
    pub fn new(library: &'l Library, config: SstaConfig) -> Self {
        Self { library, config }
    }

    /// Runs nominal longest-path analysis.
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    #[must_use]
    pub fn analyze(&self, netlist: &Netlist) -> DstaResult {
        let timing = CircuitTiming::compute(netlist, self.library, &self.config);
        let mut arrivals = vec![0.0f64; netlist.node_count()];
        for id in netlist.node_ids() {
            let g = netlist.gate(id);
            if g.is_input() {
                continue;
            }
            let worst_in = g
                .fanins()
                .iter()
                .map(|f| arrivals[f.index()])
                .fold(0.0f64, f64::max);
            arrivals[id.index()] = worst_in + timing.nominal_delay(id);
        }
        let (&worst_output, max_delay) = netlist
            .outputs()
            .iter()
            .map(|o| (o, arrivals[o.index()]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("netlists have at least one output");
        DstaResult {
            arrivals,
            max_delay,
            worst_output,
            timing,
        }
    }
}

impl DstaResult {
    /// Nominal arrival time at a node.
    #[must_use]
    pub fn arrival(&self, id: GateId) -> f64 {
        self.arrivals[id.index()]
    }

    /// The circuit's nominal longest delay.
    #[must_use]
    pub fn max_delay(&self) -> f64 {
        self.max_delay
    }

    /// The output pin realizing the longest delay.
    #[must_use]
    pub fn worst_output(&self) -> GateId {
        self.worst_output
    }

    /// The electrical snapshot the analysis used.
    #[must_use]
    pub fn timing(&self) -> &CircuitTiming {
        &self.timing
    }

    /// Traces the deterministic critical (worst-slack) path from the worst
    /// output back to a primary input, returned input-first. Contains cell
    /// gates only.
    #[must_use]
    pub fn critical_path(&self, netlist: &Netlist) -> Vec<GateId> {
        let mut path = Vec::new();
        let mut cursor = self.worst_output;
        loop {
            let g = netlist.gate(cursor);
            if g.is_input() {
                break;
            }
            path.push(cursor);
            let Some(&next) = g
                .fanins()
                .iter()
                .max_by(|a, b| self.arrivals[a.index()].total_cmp(&self.arrivals[b.index()]))
            else {
                break;
            };
            cursor = next;
        }
        path.reverse();
        path
    }

    /// Slack of every node against a required time `t_req` at all outputs
    /// (required times propagate backward as `min` over fanouts).
    #[must_use]
    pub fn slacks(&self, netlist: &Netlist, t_req: f64) -> Vec<f64> {
        let mut required = vec![f64::INFINITY; netlist.node_count()];
        for &o in netlist.outputs() {
            required[o.index()] = t_req;
        }
        // Reverse topological order.
        let ids: Vec<GateId> = netlist.node_ids().collect();
        for &id in ids.iter().rev() {
            let g = netlist.gate(id);
            if g.is_input() {
                continue;
            }
            let req_here = required[id.index()];
            let req_at_fanin = req_here - self.timing.nominal_delay(id);
            for &f in g.fanins() {
                if req_at_fanin < required[f.index()] {
                    required[f.index()] = req_at_fanin;
                }
            }
        }
        (0..netlist.node_count())
            .map(|i| required[i] - self.arrivals[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::generators::ripple_carry_adder;
    use vartol_netlist::NetlistBuilder;

    fn engine(lib: &Library) -> Dsta<'_> {
        Dsta::new(lib, SstaConfig::default())
    }

    #[test]
    fn arrivals_accumulate_along_chain() {
        let lib = Library::synthetic_90nm();
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        b.mark_output(g1);
        let n = b.build().expect("valid");
        let r = engine(&lib).analyze(&n);
        assert!(r.arrival(g0) > 0.0);
        assert!(r.arrival(g1) > r.arrival(g0));
        assert_eq!(r.max_delay(), r.arrival(g1));
        assert_eq!(r.worst_output(), g1);
    }

    #[test]
    fn critical_path_is_connected_and_input_first() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let r = engine(&lib).analyze(&n);
        let path = r.critical_path(&n);
        assert!(!path.is_empty());
        // Consecutive path elements are fanin->fanout related.
        for w in path.windows(2) {
            assert!(n.gate(w[1]).fanins().contains(&w[0]));
        }
        // Last element is the worst output.
        assert_eq!(*path.last().expect("non-empty"), r.worst_output());
        // First element is fed by at least one primary input.
        assert!(n
            .gate(path[0])
            .fanins()
            .iter()
            .any(|&f| n.gate(f).is_input()));
    }

    #[test]
    fn carry_chain_dominates_adder_delay() {
        let lib = Library::synthetic_90nm();
        let n4 = ripple_carry_adder(4, &lib);
        let n16 = ripple_carry_adder(16, &lib);
        let d4 = engine(&lib).analyze(&n4).max_delay();
        let d16 = engine(&lib).analyze(&n16).max_delay();
        assert!(
            d16 > 2.0 * d4,
            "16-bit carry chain much longer: {d16} vs {d4}"
        );
    }

    #[test]
    fn slacks_zero_on_critical_path_at_exact_requirement() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(6, &lib);
        let r = engine(&lib).analyze(&n);
        let slacks = r.slacks(&n, r.max_delay());
        let path = r.critical_path(&n);
        for &g in &path {
            assert!(slacks[g.index()].abs() < 1e-9, "critical gate slack ~0");
        }
        // All slacks non-negative at the exact requirement.
        for id in n.node_ids() {
            assert!(slacks[id.index()] >= -1e-9);
        }
    }

    #[test]
    fn upsizing_the_output_driver_under_heavy_load_reduces_delay() {
        // Uniformly upsizing a whole path does not help (the next stage's
        // input cap scales along — logical effort), but upsizing the driver
        // of a heavy fixed load does: the classic sizing win.
        let lib = Library::synthetic_90nm();
        let config = SstaConfig {
            po_load: 16.0,
            ..SstaConfig::default()
        };
        let mut b = NetlistBuilder::new("drv");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        b.mark_output(g1);
        let mut n = b.build().expect("valid");

        let d0 = Dsta::new(&lib, config.clone()).analyze(&n).max_delay();
        n.set_size(g1, 6); // X8 inverter
        let d1 = Dsta::new(&lib, config).analyze(&n).max_delay();
        assert!(d1 < d0, "upsized driver: {d1} < {d0}");
    }
}
