//! Deterministic static timing analysis (nominal delays only).
//!
//! The classical engine underlying the mean-delay baseline optimizer: the
//! "original" column of the paper's Table 1 is a circuit "obtained by
//! optimizing ... with a goal of minimizing the mean of the longest delay",
//! which is exactly deterministic STA-driven sizing.
//!
//! [`Dsta::analyze`] returns the unified [`TimingReport`] (zero-variance
//! arrivals); [`Dsta::detailed`] returns the richer [`DstaResult`] with
//! critical-path tracing and deterministic slacks.
//!
//! Under a correlated [`VariationModel`](crate::variation::VariationModel)
//! with global sources, [`Dsta::analyze`] becomes a **corner sweep**: the
//! deterministic longest path is evaluated once per Gauss–Hermite lane
//! (all gate delays shifted together by the lane's die-wide deviation)
//! and the lanes recombine into circuit moments whose variance is purely
//! the die-to-die spread — classical multi-corner STA, derived from the
//! same model the statistical engines condition on. [`Dsta::detailed`]
//! stays strictly nominal.
//!
//! Propagation runs through the level-ordered arena
//! (`state.rs`): wide levels fan their (node × lane) kernels
//! out over [`SstaConfig::threads`](crate::SstaConfig) workers and
//! join serially in node order, so reports are **bit-identical at
//! every thread width**.

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingEngine, TimingReport};
use crate::state::TimingState;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};

/// Deterministic static timing engine.
#[derive(Debug, Clone, Copy)]
pub struct Dsta<'a> {
    library: &'a Library,
    config: &'a SstaConfig,
}

/// Result of a detailed deterministic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DstaResult {
    arrivals: Vec<f64>,
    max_delay: f64,
    worst_output: GateId,
    timing: CircuitTiming,
}

impl<'a> Dsta<'a> {
    /// Creates an engine over a library with the given configuration.
    #[must_use]
    pub fn new(library: &'a Library, config: &'a SstaConfig) -> Self {
        Self { library, config }
    }

    /// Runs nominal longest-path analysis, returning the unified report
    /// (arrivals carry zero variance).
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    #[must_use]
    pub fn analyze(&self, netlist: &Netlist) -> TimingReport {
        TimingState::full(netlist, self.library, self.config, EngineKind::Dsta)
            .into_report(netlist, self.config)
    }

    /// Runs nominal longest-path analysis with the deterministic extras
    /// (critical-path tracing, slacks).
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    #[must_use]
    pub fn detailed(&self, netlist: &Netlist) -> DstaResult {
        let timing = CircuitTiming::compute(netlist, self.library, self.config);
        let mut arrivals = vec![0.0f64; netlist.node_count()];
        for id in netlist.node_ids() {
            let g = netlist.gate(id);
            if g.is_input() {
                continue;
            }
            let worst_in = g
                .fanins()
                .iter()
                .map(|f| arrivals[f.index()])
                .fold(0.0f64, f64::max);
            arrivals[id.index()] = worst_in + timing.nominal_delay(id);
        }
        let (&worst_output, max_delay) = netlist
            .outputs()
            .iter()
            .map(|o| (o, arrivals[o.index()]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("netlists have at least one output");
        DstaResult {
            arrivals,
            max_delay,
            worst_output,
            timing,
        }
    }
}

impl TimingEngine for Dsta<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Dsta
    }

    fn analyze(&self, netlist: &Netlist) -> TimingReport {
        Dsta::analyze(self, netlist)
    }
}

impl DstaResult {
    /// Nominal arrival time at a node.
    #[must_use]
    pub fn arrival(&self, id: GateId) -> f64 {
        self.arrivals[id.index()]
    }

    /// The circuit's nominal longest delay.
    #[must_use]
    pub fn max_delay(&self) -> f64 {
        self.max_delay
    }

    /// The output pin realizing the longest delay.
    #[must_use]
    pub fn worst_output(&self) -> GateId {
        self.worst_output
    }

    /// The electrical snapshot the analysis used.
    #[must_use]
    pub fn timing(&self) -> &CircuitTiming {
        &self.timing
    }

    /// Traces the deterministic critical (worst-slack) path from the worst
    /// output back to a primary input, returned input-first. Contains cell
    /// gates only.
    #[must_use]
    pub fn critical_path(&self, netlist: &Netlist) -> Vec<GateId> {
        let mut path = Vec::new();
        let mut cursor = self.worst_output;
        loop {
            let g = netlist.gate(cursor);
            if g.is_input() {
                break;
            }
            path.push(cursor);
            let Some(&next) = g
                .fanins()
                .iter()
                .max_by(|a, b| self.arrivals[a.index()].total_cmp(&self.arrivals[b.index()]))
            else {
                break;
            };
            cursor = next;
        }
        path.reverse();
        path
    }

    /// Slack of every node against a required time `t_req` at all outputs
    /// (required times propagate backward as `min` over fanouts).
    #[must_use]
    pub fn slacks(&self, netlist: &Netlist, t_req: f64) -> Vec<f64> {
        let mut required = vec![f64::INFINITY; netlist.node_count()];
        for &o in netlist.outputs() {
            required[o.index()] = t_req;
        }
        // Reverse topological order.
        let ids: Vec<GateId> = netlist.node_ids().collect();
        for &id in ids.iter().rev() {
            let g = netlist.gate(id);
            if g.is_input() {
                continue;
            }
            let req_here = required[id.index()];
            let req_at_fanin = req_here - self.timing.nominal_delay(id);
            for &f in g.fanins() {
                if req_at_fanin < required[f.index()] {
                    required[f.index()] = req_at_fanin;
                }
            }
        }
        (0..netlist.node_count())
            .map(|i| required[i] - self.arrivals[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::generators::ripple_carry_adder;
    use vartol_netlist::NetlistBuilder;

    #[test]
    fn arrivals_accumulate_along_chain() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        b.mark_output(g1);
        let n = b.build().expect("valid");
        let r = Dsta::new(&lib, &config).detailed(&n);
        assert!(r.arrival(g0) > 0.0);
        assert!(r.arrival(g1) > r.arrival(g0));
        assert_eq!(r.max_delay(), r.arrival(g1));
        assert_eq!(r.worst_output(), g1);
    }

    #[test]
    fn unified_report_agrees_with_detailed_result() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let engine = Dsta::new(&lib, &config);
        let detailed = engine.detailed(&n);
        let report = engine.analyze(&n);
        assert_eq!(report.max_delay(), detailed.max_delay());
        assert_eq!(report.worst_output(), detailed.worst_output());
        for id in n.node_ids() {
            assert_eq!(report.arrival(id).mean, detailed.arrival(id));
            assert_eq!(report.arrival(id).var, 0.0);
        }
    }

    #[test]
    fn critical_path_is_connected_and_input_first() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let r = Dsta::new(&lib, &config).detailed(&n);
        let path = r.critical_path(&n);
        assert!(!path.is_empty());
        // Consecutive path elements are fanin->fanout related.
        for w in path.windows(2) {
            assert!(n.gate(w[1]).fanins().contains(&w[0]));
        }
        // Last element is the worst output.
        assert_eq!(*path.last().expect("non-empty"), r.worst_output());
        // First element is fed by at least one primary input.
        assert!(n
            .gate(path[0])
            .fanins()
            .iter()
            .any(|&f| n.gate(f).is_input()));
    }

    #[test]
    fn carry_chain_dominates_adder_delay() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n4 = ripple_carry_adder(4, &lib);
        let n16 = ripple_carry_adder(16, &lib);
        let d4 = Dsta::new(&lib, &config).analyze(&n4).max_delay();
        let d16 = Dsta::new(&lib, &config).analyze(&n16).max_delay();
        assert!(
            d16 > 2.0 * d4,
            "16-bit carry chain much longer: {d16} vs {d4}"
        );
    }

    #[test]
    fn slacks_zero_on_critical_path_at_exact_requirement() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(6, &lib);
        let r = Dsta::new(&lib, &config).detailed(&n);
        let slacks = r.slacks(&n, r.max_delay());
        let path = r.critical_path(&n);
        for &g in &path {
            assert!(slacks[g.index()].abs() < 1e-9, "critical gate slack ~0");
        }
        // All slacks non-negative at the exact requirement.
        for id in n.node_ids() {
            assert!(slacks[id.index()] >= -1e-9);
        }
    }

    #[test]
    fn upsizing_the_output_driver_under_heavy_load_reduces_delay() {
        // Uniformly upsizing a whole path does not help (the next stage's
        // input cap scales along — logical effort), but upsizing the driver
        // of a heavy fixed load does: the classic sizing win.
        let lib = Library::synthetic_90nm();
        let config = SstaConfig {
            po_load: 16.0,
            ..SstaConfig::default()
        };
        let mut b = NetlistBuilder::new("drv");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        b.mark_output(g1);
        let mut n = b.build().expect("valid");

        let d0 = Dsta::new(&lib, &config).analyze(&n).max_delay();
        n.set_size(g1, 6); // X8 inverter
        let d1 = Dsta::new(&lib, &config).analyze(&n).max_delay();
        assert!(d1 < d0, "upsized driver: {d1} < {d0}");
    }
}
