//! Worst Negative Statistical Slack (WNSS) path tracing (§4.4).
//!
//! The statistical analogue of critical-path extraction: starting from the
//! statistically-worst primary output, walk backward; at each gate compare
//! the fanin arrivals **pair-wise**:
//!
//! 1. if a dominance shortcut (eq. 5/6) applies — the normalized mean gap
//!    exceeds 2.6 — the higher-mean input clearly controls the output;
//! 2. otherwise compare forward finite-difference sensitivities
//!    `∂Var(max)/∂μ` with the coupled update `Δσ = c·Δμ`, where `c` is the
//!    variation model's proportional coefficient.
//!
//! The traced path is the optimization frontier for one StatisticalGreedy
//! iteration.

use vartol_netlist::{GateId, Netlist};
use vartol_stats::sensitivity::{rank_inputs, InputChoice};
use vartol_stats::Moments;

/// Traces WNSS paths over stored arrival statistics.
///
/// # Example
///
/// ```
/// use vartol_liberty::Library;
/// use vartol_netlist::generators::ripple_carry_adder;
/// use vartol_ssta::{FullSsta, SstaConfig, WnssTracer};
///
/// let lib = Library::synthetic_90nm();
/// let n = ripple_carry_adder(8, &lib);
/// let config = SstaConfig::default();
/// let report = FullSsta::new(&lib, &config).analyze(&n);
/// let tracer = WnssTracer::new(config.variation.mu_sigma_coupling());
/// let path = tracer.trace(&n, report.arrivals());
/// assert!(!path.is_empty());
/// // The path ends at a primary output.
/// assert!(n.is_output(*path.last().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WnssTracer {
    /// The linear μ→σ coupling constant `c` used in the sensitivity
    /// comparison (the paper sets it "equal to those assumed to relate mean
    /// delay through a gate to its variance").
    coupling: f64,
}

impl WnssTracer {
    /// Creates a tracer with the given μ→σ coupling constant.
    #[must_use]
    pub fn new(coupling: f64) -> Self {
        Self { coupling }
    }

    /// The coupling constant.
    #[must_use]
    pub fn coupling(&self) -> f64 {
        self.coupling
    }

    /// Picks the statistically-worst primary output by pairwise ranking.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no outputs (builders prevent this).
    #[must_use]
    pub fn worst_output(&self, netlist: &Netlist, arrivals: &[Moments]) -> GateId {
        let mut outputs = netlist.outputs().iter().copied();
        let first = outputs.next().expect("netlists have at least one output");
        outputs.fold(first, |best, cand| {
            match rank_inputs(
                arrivals[best.index()],
                arrivals[cand.index()],
                self.coupling,
            ) {
                InputChoice::First => best,
                InputChoice::Second => cand,
            }
        })
    }

    /// Traces the WNSS path from the worst output back to the primary
    /// inputs. Returns cell gates only, ordered input-first (the order the
    /// optimizer visits them).
    ///
    /// `arrivals` is indexed by [`GateId::index`] — typically
    /// [`TimingReport::arrivals`](crate::TimingReport::arrivals) or
    /// [`TimingSession::arrivals`](crate::TimingSession::arrivals).
    #[must_use]
    pub fn trace(&self, netlist: &Netlist, arrivals: &[Moments]) -> Vec<GateId> {
        let start = self.worst_output(netlist, arrivals);
        self.trace_from(netlist, arrivals, start)
    }

    /// Traces one WNSS path per primary output and returns the union of
    /// their gates, deduplicated, in topological order — the "statistical
    /// critical paths" (plural) the paper's optimizer works along. Outputs
    /// with low arrival cost still contribute a path; gates shared between
    /// paths appear once.
    #[must_use]
    pub fn trace_all(&self, netlist: &Netlist, arrivals: &[Moments]) -> Vec<GateId> {
        let mut gates: std::collections::BTreeSet<GateId> = std::collections::BTreeSet::new();
        for &o in netlist.outputs() {
            gates.extend(self.trace_from(netlist, arrivals, o));
        }
        gates.into_iter().collect()
    }

    /// Traces the WNSS path ending at a specific node.
    #[must_use]
    pub fn trace_from(
        &self,
        netlist: &Netlist,
        arrivals: &[Moments],
        output: GateId,
    ) -> Vec<GateId> {
        let mut path = Vec::new();
        let mut cursor = output;
        loop {
            let g = netlist.gate(cursor);
            if g.is_input() {
                break;
            }
            path.push(cursor);
            let mut fanins = g.fanins().iter().copied();
            let Some(first) = fanins.next() else { break };
            let dominant = fanins.fold(first, |best, cand| {
                match rank_inputs(
                    arrivals[best.index()],
                    arrivals[cand.index()],
                    self.coupling,
                ) {
                    InputChoice::First => best,
                    InputChoice::Second => cand,
                }
            });
            cursor = dominant;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SstaConfig;
    use crate::fullssta::FullSsta;
    use vartol_liberty::{Library, LogicFunction};
    use vartol_netlist::generators::benchmark;
    use vartol_netlist::NetlistBuilder;
    use vartol_stats::Moments;

    /// Builds the paper's Fig. 3 topology: two 2-gate branches whose
    /// arrival statistics at node X's inputs are (320,27) and (310,45);
    /// a side branch (190,41) merges below. We reproduce the *decision
    /// structure* with explicit arrival stats rather than delays.
    #[test]
    fn figure3_trace_follows_higher_variance_branch() {
        let mut b = NetlistBuilder::new("fig3");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let g1 = b.gate("g1", LogicFunction::Buf, &[i1]); // arrival (320, 27)
        let g2 = b.gate("g2", LogicFunction::Buf, &[i2]); // arrival (310, 45)
        let g3 = b.gate("g3", LogicFunction::Buf, &[i3]); // arrival (190, 41)
        let g2b = b.gate("g2b", LogicFunction::Nand, &[g2, g3]); // (357, 32) pre-X
        let x = b.gate("x", LogicFunction::Nand, &[g1, g2b]);
        b.mark_output(x);
        let n = b.build().expect("valid");

        // Hand-planted arrival statistics from the figure.
        let mut arrivals = vec![Moments::zero(); n.node_count()];
        arrivals[g1.index()] = Moments::from_mean_std(320.0, 27.0);
        arrivals[g2.index()] = Moments::from_mean_std(310.0, 45.0);
        arrivals[g3.index()] = Moments::from_mean_std(190.0, 41.0);
        arrivals[g2b.index()] = Moments::from_mean_std(357.0, 32.0);
        arrivals[x.index()] = Moments::from_mean_std(392.0, 35.0);

        let tracer = WnssTracer::new(0.05);
        let path = tracer.trace_from(&n, &arrivals, x);

        // From X: inputs are g1 (320,27) vs g2b (357,32): dominance gap =
        // (357-320)/sqrt(27^2+32^2) = 0.88 < 2.6, sensitivities favor g2b
        // (higher mean AND higher sigma). From g2b: g2 (310,45) dominates
        // g3 (190,41) by eq. (5). The shaded WNSS path is x <- g2b <- g2.
        assert_eq!(path, vec![g2, g2b, x]);
    }

    #[test]
    fn path_is_structurally_connected() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        for name in ["c432", "c880", "alu2"] {
            let n = benchmark(name, &lib).expect("known");
            let r = FullSsta::new(&lib, &config).analyze(&n);
            let tracer = WnssTracer::new(config.variation.mu_sigma_coupling());
            let path = tracer.trace(&n, r.arrivals());
            assert!(!path.is_empty(), "{name}");
            for w in path.windows(2) {
                assert!(
                    n.gate(w[1]).fanins().contains(&w[0]),
                    "{name}: path must follow fanin edges"
                );
            }
            assert!(n.is_output(*path.last().expect("non-empty")), "{name}");
            assert!(
                n.gate(path[0])
                    .fanins()
                    .iter()
                    .any(|&f| n.gate(f).is_input()),
                "{name}: path starts at the inputs"
            );
        }
    }

    #[test]
    fn worst_output_prefers_high_cost_arrivals() {
        let mut b = NetlistBuilder::new("two_outs");
        let i1 = b.input("i1");
        let slow = b.gate("slow", LogicFunction::Buf, &[i1]);
        let fast = b.gate("fast", LogicFunction::Buf, &[i1]);
        b.mark_output(slow);
        b.mark_output(fast);
        let n = b.build().expect("valid");
        let mut arrivals = vec![Moments::zero(); n.node_count()];
        arrivals[slow.index()] = Moments::from_mean_std(500.0, 10.0);
        arrivals[fast.index()] = Moments::from_mean_std(100.0, 10.0);
        assert_eq!(WnssTracer::new(0.05).worst_output(&n, &arrivals), slow);
    }

    #[test]
    fn close_race_picks_higher_variance_output() {
        // Two outputs with near-equal means: the wider one matters more
        // (the paper: "a circuit may have multiple outputs with close mean
        // delays but different variances").
        let mut b = NetlistBuilder::new("race");
        let i1 = b.input("i1");
        let narrow = b.gate("narrow", LogicFunction::Buf, &[i1]);
        let wide = b.gate("wide", LogicFunction::Buf, &[i1]);
        b.mark_output(narrow);
        b.mark_output(wide);
        let n = b.build().expect("valid");
        let mut arrivals = vec![Moments::zero(); n.node_count()];
        arrivals[narrow.index()] = Moments::from_mean_std(300.0, 5.0);
        arrivals[wide.index()] = Moments::from_mean_std(300.0, 40.0);
        assert_eq!(WnssTracer::new(0.05).worst_output(&n, &arrivals), wide);
    }

    #[test]
    fn wnss_can_differ_from_deterministic_critical_path() {
        // A fork where the lower-mean branch has much higher variance: the
        // deterministic tracer follows the mean, the WNSS tracer can follow
        // the variance when means are close.
        let mut b = NetlistBuilder::new("fork");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let meanish = b.gate("meanish", LogicFunction::Buf, &[i1]);
        let wide = b.gate("wide", LogicFunction::Buf, &[i2]);
        let join = b.gate("join", LogicFunction::Nand, &[meanish, wide]);
        b.mark_output(join);
        let n = b.build().expect("valid");
        let mut arrivals = vec![Moments::zero(); n.node_count()];
        arrivals[meanish.index()] = Moments::from_mean_std(305.0, 5.0);
        arrivals[wide.index()] = Moments::from_mean_std(300.0, 50.0);
        arrivals[join.index()] = Moments::from_mean_std(330.0, 40.0);

        let path = WnssTracer::new(0.05).trace_from(&n, &arrivals, join);
        assert_eq!(
            path,
            vec![wide, join],
            "variance-driven choice despite the lower mean"
        );
    }
}
