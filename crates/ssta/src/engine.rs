//! The unified timing-engine API.
//!
//! Every timing engine in this crate — deterministic STA ([`crate::Dsta`]),
//! the accurate discrete-PDF engine ([`crate::FullSsta`]), the fast moment
//! engine ([`crate::Fassta`]), and the Monte-Carlo reference
//! ([`crate::MonteCarloTimer`]) — implements one trait:
//!
//! ```text
//! fn analyze(&self, netlist: &Netlist) -> TimingReport
//! ```
//!
//! and returns the same [`TimingReport`]: per-node arrival [`Moments`],
//! the statistically-worst primary output, circuit-level moments, and —
//! for engines that compute them — full arrival PDFs. [`EngineKind`]
//! selects an engine dynamically; incremental re-analysis on top of the
//! shared propagation kernels lives in
//! [`TimingSession`](crate::TimingSession).
//!
//! # Example
//!
//! ```
//! use vartol_liberty::Library;
//! use vartol_netlist::generators::ripple_carry_adder;
//! use vartol_ssta::{EngineKind, SstaConfig, TimingEngine};
//!
//! let lib = Library::synthetic_90nm();
//! let netlist = ripple_carry_adder(8, &lib);
//! let config = SstaConfig::default();
//!
//! // Dynamic engine selection through the shared trait.
//! for kind in [EngineKind::Dsta, EngineKind::Fassta, EngineKind::FullSsta] {
//!     let report = kind.engine(&lib, &config).analyze(&netlist);
//!     assert_eq!(report.kind(), kind);
//!     assert!(report.circuit_moments().mean > 0.0);
//! }
//! ```

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::{DiscretePdf, Moments};

/// Which timing engine produced (or should produce) an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// Deterministic static timing (nominal delays only).
    Dsta,
    /// Fast moment-only propagation (the paper's FASSTA, §4.3).
    Fassta,
    /// Accurate discrete-PDF propagation (the paper's FULLSSTA, §4.2).
    FullSsta,
    /// Sampling-based golden reference.
    MonteCarlo,
}

impl EngineKind {
    /// Every engine kind, cheapest first.
    pub const ALL: [Self; 4] = [Self::Dsta, Self::Fassta, Self::FullSsta, Self::MonteCarlo];

    /// Whether a [`TimingSession`](crate::TimingSession) can re-analyze
    /// this engine's results incrementally after a resize (Monte Carlo is
    /// sampling-based and always re-runs from scratch).
    #[must_use]
    pub fn supports_incremental(self) -> bool {
        self != Self::MonteCarlo
    }

    /// Instantiates the engine behind this kind for dynamic dispatch.
    #[must_use]
    pub fn engine<'a>(
        self,
        library: &'a Library,
        config: &'a SstaConfig,
    ) -> Box<dyn TimingEngine + 'a> {
        match self {
            Self::Dsta => Box::new(crate::Dsta::new(library, config)),
            Self::Fassta => Box::new(crate::Fassta::new(library, config)),
            Self::FullSsta => Box::new(crate::FullSsta::new(library, config)),
            Self::MonteCarlo => Box::new(crate::MonteCarloTimer::new(library, config)),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Dsta => "dsta",
            Self::Fassta => "fassta",
            Self::FullSsta => "fullssta",
            Self::MonteCarlo => "montecarlo",
        };
        write!(f, "{name}")
    }
}

/// The common interface of all timing engines.
///
/// Implementations are cheap handles over a borrowed [`Library`] and
/// [`SstaConfig`]; `analyze` does all the work and returns a self-contained
/// [`TimingReport`].
pub trait TimingEngine {
    /// The engine's kind tag.
    fn kind(&self) -> EngineKind;

    /// Analyzes the netlist at its current sizes.
    fn analyze(&self, netlist: &Netlist) -> TimingReport;
}

/// The shared result of any timing analysis.
///
/// Always present: per-node arrival moments, the statistically-worst
/// primary output, circuit-level output moments, and the electrical
/// snapshot the analysis used. Optionally present (engine-dependent):
/// per-node and circuit-level discrete PDFs (FULLSSTA) and raw delay
/// samples (Monte Carlo).
///
/// Under a correlated [`VariationModel`](crate::variation::VariationModel)
/// every reported statistic is **unconditional** — arrival moments and
/// PDFs are recombined over the engine's conditioning lanes (or, for
/// Monte Carlo, sampled across dies), so consumers read the same shapes
/// whether or not a model is configured.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    pub(crate) kind: EngineKind,
    pub(crate) arrivals: Vec<Moments>,
    pub(crate) pdfs: Option<Vec<DiscretePdf>>,
    pub(crate) circuit: Moments,
    pub(crate) circuit_pdf: Option<DiscretePdf>,
    pub(crate) worst_output: GateId,
    pub(crate) timing: CircuitTiming,
    pub(crate) samples: Option<Vec<f64>>,
}

impl TimingReport {
    /// The engine that produced this report.
    #[must_use]
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Arrival moments at a node (deterministic engines report zero
    /// variance).
    #[must_use]
    pub fn arrival(&self, id: GateId) -> Moments {
        self.arrivals[id.index()]
    }

    /// All arrival moments, indexed by [`GateId::index`] — the boundary
    /// data the fast engine and the WNSS tracer consume.
    #[must_use]
    pub fn arrivals(&self) -> &[Moments] {
        &self.arrivals
    }

    /// The full arrival PDF at a node, when the engine propagates PDFs.
    #[must_use]
    pub fn arrival_pdf(&self, id: GateId) -> Option<&DiscretePdf> {
        self.pdfs.as_ref().map(|p| &p[id.index()])
    }

    /// Mean and variance of the circuit output RV `max over outputs` —
    /// the quantity the optimization problem in §3 minimizes.
    #[must_use]
    pub fn circuit_moments(&self) -> Moments {
        self.circuit
    }

    /// The circuit-level output distribution, when the engine computes one.
    #[must_use]
    pub fn circuit_pdf(&self) -> Option<&DiscretePdf> {
        self.circuit_pdf.as_ref()
    }

    /// The statistically-worst primary output (for [`EngineKind::Dsta`],
    /// the output with the longest nominal arrival).
    #[must_use]
    pub fn worst_output(&self) -> GateId {
        self.worst_output
    }

    /// The circuit's worst delay: mean of the circuit output RV. For
    /// deterministic analyses this is exactly the longest nominal path.
    #[must_use]
    pub fn max_delay(&self) -> f64 {
        self.circuit.mean
    }

    /// The electrical snapshot (loads, slews, delay moments) the analysis
    /// used.
    #[must_use]
    pub fn timing(&self) -> &CircuitTiming {
        &self.timing
    }

    /// Raw circuit-delay samples, for sampling engines.
    #[must_use]
    pub fn samples(&self) -> Option<&[f64]> {
        self.samples.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vartol_netlist::generators::{parity_tree, ripple_carry_adder};

    #[test]
    fn all_kinds_produce_reports_through_the_trait() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(4, &lib);
        for kind in EngineKind::ALL {
            let report = kind.engine(&lib, &config).analyze(&n);
            assert_eq!(report.kind(), kind, "{kind}");
            assert_eq!(report.arrivals().len(), n.node_count(), "{kind}");
            assert!(report.circuit_moments().mean > 0.0, "{kind}");
            assert!(n.is_output(report.worst_output()), "{kind}");
        }
    }

    #[test]
    fn pdf_presence_is_engine_specific() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = parity_tree(8, &lib);
        let o = n.outputs()[0];
        let full = EngineKind::FullSsta.engine(&lib, &config).analyze(&n);
        assert!(full.circuit_pdf().is_some());
        assert!(full.arrival_pdf(o).is_some());
        let fast = EngineKind::Fassta.engine(&lib, &config).analyze(&n);
        assert!(fast.circuit_pdf().is_none());
        assert!(fast.arrival_pdf(o).is_none());
        assert!(fast.samples().is_none());
    }

    #[test]
    fn engines_rank_by_fidelity_on_the_mean() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(6, &lib);
        let det = EngineKind::Dsta.engine(&lib, &config).analyze(&n);
        let full = EngineKind::FullSsta.engine(&lib, &config).analyze(&n);
        // Statistical mean of the max dominates the max of the means.
        assert!(full.circuit_moments().mean >= det.max_delay() - 1e-9);
        assert!(det.circuit_moments().var == 0.0);
    }

    #[test]
    fn only_monte_carlo_lacks_incremental_support() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.supports_incremental(), kind != EngineKind::MonteCarlo);
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(EngineKind::FullSsta.to_string(), "fullssta");
        assert_eq!(EngineKind::Dsta.to_string(), "dsta");
    }
}
