//! # vartol-ssta
//!
//! Timing engines for statistical gate sizing, mirroring the paper's nested
//! architecture (§4):
//!
//! * [`dsta::Dsta`] — deterministic static timing (nominal delays only),
//!   used by the mean-delay baseline optimizer and as a sanity anchor.
//! * [`fullssta::FullSsta`] — the accurate outer engine: discrete-PDF
//!   propagation (after Liou et al., DAC'01) at 10–15 samples per PDF,
//!   storing mean/variance at every node for the fast engine to consume.
//! * [`fassta::Fassta`] — the fast inner engine: moment-only propagation
//!   with the paper's max approximation (dominance shortcuts + quadratic
//!   erf), evaluating whole circuits or extracted subcircuits against
//!   stored boundary statistics.
//! * [`wnss`] — the Worst Negative Statistical Slack path tracer (§4.4):
//!   walks back from the statistically-worst output choosing the dominant
//!   input by the dominance test or finite-difference variance sensitivity.
//! * [`montecarlo`] — sampling-based golden timing reference.
//!
//! All engines share the electrical model in [`delay`]: NLDM table delays
//! driven by fanout loads and nominal slews, widened into random variables
//! by the library's [`VariationModel`](vartol_liberty::VariationModel).
//!
//! # Example
//!
//! ```
//! use vartol_liberty::Library;
//! use vartol_netlist::generators::ripple_carry_adder;
//! use vartol_ssta::{FullSsta, Fassta, SstaConfig};
//!
//! let lib = Library::synthetic_90nm();
//! let netlist = ripple_carry_adder(8, &lib);
//! let config = SstaConfig::default();
//!
//! let full = FullSsta::new(&lib, config.clone()).analyze(&netlist);
//! let fast = Fassta::new(&lib, config).analyze(&netlist);
//!
//! // The fast engine tracks the accurate one closely.
//! let a = full.circuit_moments();
//! let b = fast.circuit_moments();
//! assert!((a.mean - b.mean).abs() / a.mean < 0.05);
//! ```

pub mod config;
pub mod criticality;
pub mod delay;
pub mod dsta;
pub mod fassta;
pub mod fullssta;
pub mod montecarlo;
pub mod slack;
pub mod wnss;

pub use config::{CorrelationMode, SstaConfig};
pub use criticality::Criticality;
pub use delay::CircuitTiming;
pub use dsta::{Dsta, DstaResult};
pub use fassta::{Fassta, FasstaResult};
pub use fullssta::{FullSsta, FullSstaResult};
pub use montecarlo::{MonteCarloResult, MonteCarloTimer};
pub use slack::StatisticalSlacks;
pub use wnss::WnssTracer;
