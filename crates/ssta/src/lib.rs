//! # vartol-ssta
//!
//! Timing engines for statistical gate sizing, mirroring the paper's nested
//! architecture (§4) behind one unified API:
//!
//! * [`engine::TimingEngine`] — the shared trait: every engine analyzes a
//!   netlist into the same [`engine::TimingReport`] (per-node arrival
//!   moments, worst output, circuit moments, optional PDFs);
//!   [`engine::EngineKind`] selects engines dynamically.
//! * [`session::TimingSession`] — the incremental API, an **owned
//!   handle**: the session holds an `Arc<Library>` and the netlist
//!   itself (no lifetime parameters), so it can live in structs, maps,
//!   and services. Resize gates and re-analyze only the affected fanout
//!   cone, with results identical to a from-scratch run. This is what
//!   the optimizers' inner loops and the `vartol::workspace` query
//!   service run on.
//!
//! The engines:
//!
//! * [`dsta::Dsta`] — deterministic static timing (nominal delays only),
//!   used by the mean-delay baseline optimizer and as a sanity anchor.
//! * [`fullssta::FullSsta`] — the accurate outer engine: discrete-PDF
//!   propagation (after Liou et al., DAC'01) at 10–15 samples per PDF,
//!   storing mean/variance at every node for the fast engine to consume.
//! * [`fassta::Fassta`] — the fast inner engine: moment-only propagation
//!   with the paper's max approximation (dominance shortcuts + quadratic
//!   erf), evaluating whole circuits or extracted subcircuits against
//!   stored boundary statistics.
//! * [`montecarlo::MonteCarloTimer`] — sampling-based golden reference,
//!   with deterministic parallel sampling: the budget splits into fixed
//!   chunks, each chunk draws from its own `(seed, chunk_index)`-derived
//!   RNG stream on a [`pool::ScopedPool`], and chunk summaries merge in
//!   chunk order — bit-identical results for any thread count
//!   ([`SstaConfig::threads`]).
//! * [`wnss`] — the Worst Negative Statistical Slack path tracer (§4.4):
//!   walks back from the statistically-worst output choosing the dominant
//!   input by the dominance test or finite-difference variance sensitivity.
//! * [`sequential`] — clocked timing on top of any engine's report:
//!   registers cut the graph into startpoints (Q pins, launched at the
//!   DFF's clk→Q delay) and endpoints (D pins and primary outputs),
//!   classified into the four path groups (in→reg, reg→reg, reg→out,
//!   in→out) with per-group setup slack, WNS, and TNS under a
//!   [`ClockConstraint`].
//!
//! All engines share the electrical model in [`delay`]: NLDM table delays
//! driven by fanout loads and nominal slews, widened into random variables
//! by the library's [`VariationModel`](vartol_liberty::VariationModel).
//!
//! On top of the per-gate model, [`variation`] supplies the **correlated**
//! process-variation model ([`variation::VariationModel`] on
//! [`SstaConfig::model`](config::SstaConfig)): die-to-die sources shared by
//! every gate and a spatially correlated within-die field (PCA-decomposed
//! via `vartol_stats::correlation`). The Monte-Carlo engine samples the
//! shared sources once per die; the analytic engines condition on them
//! with Gauss–Hermite lanes inside the shared propagation state, so
//! sessions and everything built on them stay incremental and
//! correlation-aware. The default (empty) model is bit-identical to the
//! independent legacy behavior. See the repo-root `README.md` and
//! `ARCHITECTURE.md` for the workspace-level picture.
//!
//! # Example
//!
//! ```
//! use vartol_liberty::Library;
//! use vartol_netlist::generators::ripple_carry_adder;
//! use vartol_ssta::{SstaConfig, TimingSession};
//!
//! let lib = Library::synthetic_90nm();
//! let netlist = ripple_carry_adder(8, &lib);
//!
//! // A session owns everything the analysis needs across edits.
//! let mut session = TimingSession::new(&lib, SstaConfig::default(), netlist);
//! let before = session.refresh();
//!
//! // Resize one gate; the refresh only revisits its fanout cone.
//! let gate = session.netlist().gate_ids().next().unwrap();
//! session.resize(gate, 5);
//! let after = session.refresh();
//!
//! assert_ne!(before, after);
//! // The incremental result matches a from-scratch engine run exactly.
//! let scratch = session.report(vartol_ssta::EngineKind::FullSsta);
//! assert_eq!(after, scratch.circuit_moments());
//! ```

pub mod branch;
pub mod config;
pub mod cow;
pub mod criticality;
pub mod delay;
pub mod dsta;
pub mod engine;
pub mod fassta;
pub mod fingerprint;
pub mod fullssta;
pub mod montecarlo;
pub mod optimize;
pub mod pool;
pub mod sequential;
pub mod session;
pub mod slack;
mod state;
pub mod variation;
pub mod wnss;

pub use branch::{BranchError, SessionBranch};
pub use config::{CorrelationMode, SstaConfig};
pub use cow::CowVec;
pub use criticality::Criticality;
pub use delay::CircuitTiming;
pub use dsta::{Dsta, DstaResult};
pub use engine::{EngineKind, TimingEngine, TimingReport};
pub use fassta::Fassta;
pub use fingerprint::{config_fingerprint, fingerprint_bytes, size_fingerprint, Fnv64};
pub use fullssta::FullSsta;
pub use montecarlo::{MonteCarloResult, MonteCarloTimer, DEFAULT_MC_SAMPLES, MC_CHUNK_SAMPLES};
pub use optimize::{
    AnnealingConfig, AnnealingSizer, LagrangianConfig, LagrangianSizer, Objective, OptimizerKind,
    Sizer, SizingOutcome, SizingPass,
};
pub use pool::ScopedPool;
pub use sequential::{ClockConstraint, GroupTiming, PathGroup, SequentialTiming};
pub use session::TimingSession;
pub use slack::StatisticalSlacks;
pub use variation::{GlobalSource, SpatialGrid, VariationContext, VariationModel};
pub use wnss::WnssTracer;
