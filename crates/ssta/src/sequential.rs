//! Clocked timing: path groups, setup slack, WNS and TNS.
//!
//! A sequential netlist is cut at its registers
//! ([`Register`](vartol_netlist::Register)): every register's Q pin is a
//! *startpoint* whose launch offset is the DFF cell's clk→Q delay (its
//! ordinary cell delay, since the clock input arrives at 0), and every
//! register's D pin plus every primary output is an *endpoint*. This
//! module classifies endpoints into the four classic path groups —
//!
//! * `in2reg` — primary input to register D pin,
//! * `reg2reg` — register Q pin to register D pin,
//! * `reg2out` — register Q pin to primary output,
//! * `in2out` — unregistered input-to-output paths,
//!
//! — and evaluates per-group setup slack from any engine's
//! [`TimingReport`]. The required time at a D pin is
//! `period − uncertainty − setup(cell)`; at a primary output it is
//! `period − uncertainty`. Slack is that limit minus the endpoint's
//! arrival RV, so WNS is the minimum slack *mean* over endpoints and TNS
//! the sum of negative slack means.
//!
//! Classification is by reachability over the *merged* arrival surface
//! (each endpoint sees one arrival RV, the max over all paths into it),
//! so an endpoint fed by both a register and an unregistered input
//! contributes the same — pessimistic — arrival to both of its groups.
//! That is exactly graph-based analysis (GBA) pessimism, and it is what
//! keeps the computation a linear pass over the existing level-ordered
//! propagation results: determinism at every thread count carries over
//! unchanged, because this module only *reads* a report, in fixed
//! endpoint order (registers first, then outputs, each in declaration
//! order).
//!
//! The probability a group meets the clock is statistical where the
//! engine is: FULLSSTA evaluates its discrete arrival CDF at the limit,
//! FASSTA and Monte Carlo use a normal approximation from the endpoint
//! moments (the Monte-Carlo report keeps raw samples only at circuit
//! level), and DSTA degenerates to a 0/1 step.

use crate::engine::TimingReport;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::{Moments, Normal};

/// A single-clock constraint: every register launches and captures on
/// one clock of the given period; `uncertainty` (jitter/skew margin) is
/// subtracted from every required time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClockConstraint {
    period: f64,
    uncertainty: f64,
}

impl ClockConstraint {
    /// Creates a clock constraint.
    ///
    /// # Panics
    ///
    /// Panics unless `period` is finite and positive and `uncertainty`
    /// is finite, non-negative, and below the period.
    #[must_use]
    pub fn new(period: f64, uncertainty: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "clock period must be finite and positive"
        );
        assert!(
            uncertainty.is_finite() && (0.0..period).contains(&uncertainty),
            "clock uncertainty must be in [0, period)"
        );
        Self {
            period,
            uncertainty,
        }
    }

    /// The clock period.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The uncertainty margin subtracted from every required time.
    #[must_use]
    pub fn uncertainty(&self) -> f64 {
        self.uncertainty
    }

    /// The timing budget a zero-delay path would have:
    /// `period − uncertainty`.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.period - self.uncertainty
    }
}

/// The four startpoint/endpoint classes of a clocked design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PathGroup {
    /// Primary input → register D pin.
    InToReg,
    /// Register Q pin → register D pin.
    RegToReg,
    /// Register Q pin → primary output.
    RegToOut,
    /// Primary input → primary output (unregistered).
    InToOut,
}

impl PathGroup {
    /// Every group, in the canonical reporting order.
    pub const ALL: [Self; 4] = [Self::InToReg, Self::RegToReg, Self::RegToOut, Self::InToOut];

    /// The group's stable wire/report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::InToReg => "in2reg",
            Self::RegToReg => "reg2reg",
            Self::RegToOut => "reg2out",
            Self::InToOut => "in2out",
        }
    }

    /// Parses a [`PathGroup::name`] back to a group.
    #[must_use]
    pub fn parse_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|g| g.name() == name)
    }
}

impl std::fmt::Display for PathGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Setup-slack summary of one path group.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroupTiming {
    group: PathGroup,
    endpoints: usize,
    wns: f64,
    tns: f64,
    prob_met: f64,
    worst_endpoint: Option<GateId>,
}

impl GroupTiming {
    fn empty(group: PathGroup, clock: ClockConstraint) -> Self {
        Self {
            group,
            endpoints: 0,
            wns: clock.budget(),
            tns: 0.0,
            prob_met: 1.0,
            worst_endpoint: None,
        }
    }

    /// Which group this summarizes.
    #[must_use]
    pub fn group(&self) -> PathGroup {
        self.group
    }

    /// Number of endpoints classified into the group.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    /// Worst (minimum) mean setup slack over the group's endpoints. An
    /// empty group reports the full clock budget — the slack of a
    /// zero-delay path.
    #[must_use]
    pub fn wns(&self) -> f64 {
        self.wns
    }

    /// Total negative slack: the sum of negative mean slacks (0 when
    /// every endpoint meets the clock).
    #[must_use]
    pub fn tns(&self) -> f64 {
        self.tns
    }

    /// Minimum over endpoints of `P(arrival ≤ required)` — the
    /// statistical counterpart of [`GroupTiming::wns`]. Deterministic
    /// reports degrade to a 0/1 step; empty groups report 1.
    #[must_use]
    pub fn prob_met(&self) -> f64 {
        self.prob_met
    }

    /// The endpoint realizing [`GroupTiming::wns`] (`None` when empty).
    #[must_use]
    pub fn worst_endpoint(&self) -> Option<GateId> {
        self.worst_endpoint
    }
}

/// Per-group setup slack plus circuit-level WNS/TNS, computed from one
/// engine's [`TimingReport`] under one [`ClockConstraint`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SequentialTiming {
    clock: ClockConstraint,
    groups: [GroupTiming; 4],
    wns: f64,
    tns: f64,
}

impl SequentialTiming {
    /// Classifies every endpoint and folds per-group and circuit-level
    /// setup slack out of `report`.
    ///
    /// Works on purely combinational netlists too: the three registered
    /// groups are then empty and `in2out` carries every output. Each
    /// register contributes one endpoint (its D pin) and each primary
    /// output one endpoint; a node that is both appears once per role.
    ///
    /// # Panics
    ///
    /// Panics if `report` does not cover `netlist` (arrival length
    /// mismatch) or a register's Q cell is missing from `library`.
    #[must_use]
    pub fn analyze(
        netlist: &Netlist,
        library: &Library,
        clock: ClockConstraint,
        report: &TimingReport,
    ) -> Self {
        assert_eq!(
            report.arrivals().len(),
            netlist.node_count(),
            "report must cover every node of the netlist"
        );
        let (from_pi, from_q) = reachability(netlist);
        let budget = clock.budget();

        struct Acc {
            endpoints: usize,
            wns: f64,
            tns: f64,
            prob_met: f64,
            worst: Option<GateId>,
        }
        impl Acc {
            fn note(&mut self, id: GateId, slack_mean: f64, prob: f64) {
                self.endpoints += 1;
                if slack_mean < self.wns {
                    self.wns = slack_mean;
                    self.worst = Some(id);
                }
                self.tns += slack_mean.min(0.0);
                self.prob_met = self.prob_met.min(prob);
            }
        }
        let mut accs: [Acc; 4] = PathGroup::ALL.map(|_| Acc {
            endpoints: 0,
            wns: f64::INFINITY,
            tns: 0.0,
            prob_met: 1.0,
            worst: None,
        });
        let idx = |g: PathGroup| {
            PathGroup::ALL
                .iter()
                .position(|&x| x == g)
                .expect("ALL is exhaustive")
        };
        let mut wns = f64::INFINITY;
        let mut tns = 0.0;

        // Fixed endpoint order: registers in declaration order, then
        // primary outputs in declaration order. Per-endpoint slack is a
        // pure function of the report, so determinism is inherited.
        for r in netlist.registers() {
            let d = r.d();
            let setup = netlist.cell(r.q(), library).setup();
            let limit = budget - setup;
            let arrival = report.arrival(d);
            let slack = limit - arrival.mean;
            let prob = prob_arrival_below(report, d, arrival, limit);
            if from_pi[d.index()] {
                accs[idx(PathGroup::InToReg)].note(d, slack, prob);
            }
            if from_q[d.index()] {
                accs[idx(PathGroup::RegToReg)].note(d, slack, prob);
            }
            wns = wns.min(slack);
            tns += slack.min(0.0);
        }
        for &o in netlist.outputs() {
            let arrival = report.arrival(o);
            let slack = budget - arrival.mean;
            let prob = prob_arrival_below(report, o, arrival, budget);
            if from_q[o.index()] {
                accs[idx(PathGroup::RegToOut)].note(o, slack, prob);
            }
            if from_pi[o.index()] {
                accs[idx(PathGroup::InToOut)].note(o, slack, prob);
            }
            wns = wns.min(slack);
            tns += slack.min(0.0);
        }

        let groups: [GroupTiming; 4] = std::array::from_fn(|i| {
            let group = PathGroup::ALL[i];
            let a = &accs[i];
            if a.endpoints == 0 {
                GroupTiming::empty(group, clock)
            } else {
                GroupTiming {
                    group,
                    endpoints: a.endpoints,
                    wns: a.wns,
                    tns: a.tns,
                    prob_met: a.prob_met,
                    worst_endpoint: a.worst,
                }
            }
        });
        // A netlist always has outputs, so at least one group is
        // populated and the circuit-level fold is finite.
        Self {
            clock,
            groups,
            wns,
            tns,
        }
    }

    /// The constraint the analysis ran under.
    #[must_use]
    pub fn clock(&self) -> ClockConstraint {
        self.clock
    }

    /// All four groups in [`PathGroup::ALL`] order.
    #[must_use]
    pub fn groups(&self) -> &[GroupTiming; 4] {
        &self.groups
    }

    /// One group's summary.
    #[must_use]
    pub fn group(&self, group: PathGroup) -> &GroupTiming {
        &self.groups[PathGroup::ALL
            .iter()
            .position(|&g| g == group)
            .expect("ALL is exhaustive")]
    }

    /// Worst mean setup slack over every endpoint (each register D pin
    /// and each primary output counted once).
    #[must_use]
    pub fn wns(&self) -> f64 {
        self.wns
    }

    /// Total negative slack over every endpoint.
    #[must_use]
    pub fn tns(&self) -> f64 {
        self.tns
    }
}

/// `P(arrival at id ≤ limit)`, using the best distribution the report
/// carries: the discrete PDF where propagated, a normal approximation
/// from the moments otherwise, and a 0/1 step for zero variance.
fn prob_arrival_below(report: &TimingReport, id: GateId, arrival: Moments, limit: f64) -> f64 {
    if let Some(pdf) = report.arrival_pdf(id) {
        return pdf.cdf(limit);
    }
    if arrival.var <= 0.0 {
        return if arrival.mean <= limit { 1.0 } else { 0.0 };
    }
    Normal::from_moments(arrival).cdf(limit)
}

/// Forward reachability over the DAG: `(from_pi, from_q)` per node.
/// `from_pi` seeds at every primary input except the clock; `from_q`
/// seeds at register Q gates (whose only graph fanin is the clock, so
/// the two sets stay disjoint at the cut).
fn reachability(netlist: &Netlist) -> (Vec<bool>, Vec<bool>) {
    let n = netlist.node_count();
    let clock = netlist.clock();
    let mut from_pi = vec![false; n];
    let mut from_q = vec![false; n];
    for &i in netlist.inputs() {
        if Some(i) != clock {
            from_pi[i.index()] = true;
        }
    }
    for r in netlist.registers() {
        from_q[r.q().index()] = true;
    }
    // Node ids ascend in topological order by construction. The cut
    // needs no special casing: a register Q gate's only graph fanin is
    // the clock, which carries neither flag, so nothing flows through.
    for id in netlist.node_ids() {
        for &f in netlist.gate(id).fanins() {
            from_pi[id.index()] |= from_pi[f.index()];
            from_q[id.index()] |= from_q[f.index()];
        }
    }
    (from_pi, from_q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SstaConfig;
    use crate::engine::EngineKind;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::generators::pipeline_adder;
    use vartol_netlist::NetlistBuilder;

    /// A four-group circuit with one path per group:
    /// in→g1→D1 (in2reg), Q1→g2→D2 (reg2reg), Q2→g3→PO (reg2out),
    /// in→g4→PO (in2out).
    fn four_group_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("fourgroup");
        let clk = b.input("clk");
        let a = b.input("a");
        let q1 = b.dff("q1", clk);
        let q2 = b.dff("q2", clk);
        let g1 = b.gate("g1", LogicFunction::Inv, &[a]);
        let g2 = b.gate("g2", LogicFunction::Inv, &[q1]);
        let g3 = b.gate("g3", LogicFunction::Inv, &[q2]);
        let g4 = b.gate("g4", LogicFunction::Inv, &[a]);
        b.bind_d(q1, g1);
        b.bind_d(q2, g2);
        b.mark_output(g3);
        b.mark_output(g4);
        b.build().expect("valid")
    }

    fn analyze(netlist: &Netlist, kind: EngineKind, clock: ClockConstraint) -> SequentialTiming {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let report = kind.engine(&lib, &config).analyze(netlist);
        SequentialTiming::analyze(netlist, &lib, clock, &report)
    }

    #[test]
    fn four_groups_classify_one_endpoint_each() {
        let n = four_group_circuit();
        let st = analyze(&n, EngineKind::FullSsta, ClockConstraint::new(1000.0, 0.0));
        for group in PathGroup::ALL {
            assert_eq!(st.group(group).endpoints(), 1, "{group}");
            assert!(st.group(group).worst_endpoint().is_some(), "{group}");
        }
    }

    #[test]
    fn combinational_circuit_has_only_in2out_paths() {
        let lib = Library::synthetic_90nm();
        let n = vartol_netlist::generators::ripple_carry_adder(4, &lib);
        let st = analyze(&n, EngineKind::Fassta, ClockConstraint::new(1000.0, 0.0));
        assert_eq!(st.group(PathGroup::InToOut).endpoints(), n.output_count());
        for group in [PathGroup::InToReg, PathGroup::RegToReg, PathGroup::RegToOut] {
            let g = st.group(group);
            assert_eq!(g.endpoints(), 0, "{group}");
            assert_eq!(g.wns(), 1000.0, "empty group reports the budget");
            assert_eq!(g.tns(), 0.0);
            assert_eq!(g.prob_met(), 1.0);
            assert!(g.worst_endpoint().is_none());
        }
    }

    #[test]
    fn register_slack_subtracts_setup_and_clkq_shows_in_launch() {
        let n = four_group_circuit();
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let report = EngineKind::Dsta.engine(&lib, &config).analyze(&n);
        let clock = ClockConstraint::new(1000.0, 25.0);
        let st = SequentialTiming::analyze(&n, &lib, clock, &report);

        // in2reg endpoint: g1. Slack = (T − U − setup) − arrival(g1).
        let g1 = n.gate_by_name("g1").expect("exists");
        let q1 = n.gate_by_name("q1").expect("exists");
        let setup = n.cell(q1, &lib).setup();
        assert!(setup > 0.0, "register family carries a real setup");
        let want = (1000.0 - 25.0 - setup) - report.arrival(g1).mean;
        let got = st.group(PathGroup::InToReg).wns();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");

        // reg2reg arrival includes the clk→Q launch offset: arrival at
        // g2 = clkq(q1) + delay(g2), so it exceeds the launch alone.
        let g2 = n.gate_by_name("g2").expect("exists");
        assert!(report.arrival(q1).mean > 0.0, "clk→Q launch offset");
        assert!(report.arrival(g2).mean > report.arrival(q1).mean);
    }

    #[test]
    fn period_shift_moves_reg2reg_slack_exactly() {
        let n = pipeline_adder(8, &Library::synthetic_90nm());
        let a = analyze(&n, EngineKind::Fassta, ClockConstraint::new(800.0, 0.0));
        let b = analyze(&n, EngineKind::Fassta, ClockConstraint::new(900.0, 0.0));
        let delta = b.group(PathGroup::RegToReg).wns() - a.group(PathGroup::RegToReg).wns();
        assert!(
            (delta - 100.0).abs() < 1e-9,
            "slack must track the period, got {delta}"
        );
        assert!((b.wns() - a.wns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn every_engine_agrees_on_classification() {
        let lib = Library::synthetic_90nm();
        let n = pipeline_adder(8, &lib);
        let clock = ClockConstraint::new(1200.0, 10.0);
        let counts: Vec<[usize; 4]> = EngineKind::ALL
            .iter()
            .map(|&k| {
                let st = analyze(&n, k, clock);
                PathGroup::ALL.map(|g| st.group(g).endpoints())
            })
            .collect();
        for c in &counts[1..] {
            assert_eq!(c, &counts[0], "classification is engine-independent");
        }
        // The pipeline has endpoints in all four groups.
        assert!(counts[0].iter().all(|&e| e > 0), "{:?}", counts[0]);
    }

    #[test]
    fn tight_clock_goes_negative_and_tns_accumulates() {
        let lib = Library::synthetic_90nm();
        let n = pipeline_adder(8, &lib);
        let tight = analyze(&n, EngineKind::FullSsta, ClockConstraint::new(120.0, 0.0));
        assert!(tight.wns() < 0.0);
        assert!(tight.tns() <= tight.wns(), "TNS bounds WNS from below");
        let loose = analyze(&n, EngineKind::FullSsta, ClockConstraint::new(5000.0, 0.0));
        assert!(loose.wns() > 0.0);
        assert_eq!(loose.tns(), 0.0);
    }

    #[test]
    fn probability_is_statistical_per_engine() {
        let lib = Library::synthetic_90nm();
        let n = pipeline_adder(8, &lib);
        // Pick a period near the critical arrival so probabilities are
        // strictly between 0 and 1 for statistical engines.
        let config = SstaConfig::default();
        let r = EngineKind::FullSsta.engine(&lib, &config).analyze(&n);
        let clock = ClockConstraint::new(r.circuit_moments().mean, 0.0);

        let dsta = analyze(&n, EngineKind::Dsta, clock);
        for g in dsta.groups() {
            let p = g.prob_met();
            assert!(p == 0.0 || p == 1.0, "deterministic step, got {p}");
        }
        for kind in [
            EngineKind::Fassta,
            EngineKind::FullSsta,
            EngineKind::MonteCarlo,
        ] {
            let st = analyze(&n, kind, clock);
            let p = st.group(PathGroup::InToOut).prob_met();
            assert!((0.0..=1.0).contains(&p), "{kind}: {p}");
            assert!(
                p > 0.0 && p < 1.0,
                "{kind}: expected interior prob, got {p}"
            );
        }
    }

    #[test]
    fn path_group_names_round_trip() {
        for g in PathGroup::ALL {
            assert_eq!(PathGroup::parse_name(g.name()), Some(g));
            assert_eq!(g.to_string(), g.name());
        }
        assert_eq!(PathGroup::parse_name("sideways"), None);
    }

    #[test]
    #[should_panic(expected = "clock period must be finite and positive")]
    fn zero_period_panics() {
        let _ = ClockConstraint::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "clock uncertainty must be in [0, period)")]
    fn oversized_uncertainty_panics() {
        let _ = ClockConstraint::new(10.0, 10.0);
    }
}
