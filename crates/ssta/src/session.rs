//! Incremental timing sessions — long-lived **owned handles**.
//!
//! A [`TimingSession`] owns the whole analysis context an optimizer or a
//! query service needs across thousands of what-if resizes: a shared
//! [`Arc<Library>`], the [`SstaConfig`], the **netlist itself**, cached
//! levelization/fanout data, and the live propagation state of one
//! engine flavor. Because the session borrows nothing, it has no
//! lifetime parameters: it can be stored in a struct, kept in a map of
//! circuits, sent to another thread, or held open for the lifetime of a
//! service (see `vartol::workspace` in the façade crate). The netlist
//! comes back out with [`TimingSession::into_netlist`].
//!
//! After [`TimingSession::resize`], a
//! [`TimingSession::refresh`] re-analyzes **incrementally**: only the
//! transitive fanout cone of the changed gates (plus their fanins, whose
//! loads changed) is recomputed, instead of the whole netlist — yet the
//! result matches a from-scratch
//! [`TimingEngine::analyze`](crate::TimingEngine::analyze) run bit for
//! bit, because both paths share the same per-node kernels.
//!
//! This is the performance core of the optimization loop: on deep
//! circuits, a single-gate resize near the outputs touches a handful of
//! nodes where a from-scratch pass would touch thousands.
//!
//! For speculative work — scoring many independent `(gate, size)`
//! candidates against one frozen analysis — a session is forked with
//! [`TimingSession::fork`]: each [`crate::branch::SessionBranch`] owns a
//! copy-on-write view of the circuit and serves the parent's refreshed
//! arrival and electrical state as its frozen base, so branches on
//! different worker threads can trial resizes concurrently without ever
//! touching the session or each other.
//!
//! Dirty-flag contract (audited for the parallel optimizer): `resize`
//! and `restore_sizes` mark exactly the gates whose current size differs
//! from the last-analyzed snapshot, resizing back cancels the pending
//! work, and `refresh` re-seeds every dirty gate *plus its fanins*
//! (whose loads changed). Read accessors between a resize/restore and
//! the next `refresh` intentionally serve the last-refreshed state
//! (frozen boundary semantics, §4.3); after a `refresh` they are always
//! bit-identical to a from-scratch analysis — there is no interleaving
//! of `resize`/`restore_sizes`/`refresh` that can leave an accessor
//! serving arrivals stale with respect to a completed refresh (see the
//! `restore_then_refresh_*` and randomized-interleaving tests below).
//!
//! # Example
//!
//! ```
//! use vartol_liberty::Library;
//! use vartol_netlist::generators::ripple_carry_adder;
//! use vartol_ssta::{SstaConfig, TimingSession};
//!
//! let lib = Library::synthetic_90nm();
//! let netlist = ripple_carry_adder(8, &lib);
//! // The session takes the netlist by value and a shared library handle
//! // (`&Library` converts by cloning); it owns everything it needs.
//! let mut session = TimingSession::new(&lib, SstaConfig::default(), netlist);
//!
//! let before = session.refresh();
//! let gate = session.netlist().gate_ids().next().unwrap();
//! session.resize(gate, 4);
//! let after = session.refresh(); // recomputes only the affected cone
//! assert_ne!(before, after);
//! let netlist = session.into_netlist(); // hand the circuit back out
//! assert_eq!(netlist.gate(gate).size(), Some(4));
//! ```

use crate::branch::{BranchError, ForkBase, SessionBranch};
use crate::config::SstaConfig;
use crate::criticality::Criticality;
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingReport};
use crate::slack::StatisticalSlacks;
use crate::state::{CircuitSummary, TimingState};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, PoisonError};
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist, NetlistError};
use vartol_stats::{DiscretePdf, Moments};

/// An incremental timing-analysis session over one netlist — an owned
/// handle with no lifetime parameters.
///
/// The session owns the netlist: all size changes flow through
/// [`TimingSession::resize`] / [`TimingSession::restore_sizes`], which is
/// what makes precise dirty tracking possible, and the circuit comes
/// back out via [`TimingSession::into_netlist`]. The library is shared
/// through an [`Arc`], so many sessions (one per circuit in a service)
/// reference one library without copies. Read accessors reflect the
/// state as of the last [`TimingSession::refresh`] — reading stale
/// arrivals between a resize and a refresh is explicitly supported (the
/// optimizer's subcircuit trials evaluate against frozen boundary
/// statistics, §4.3).
#[derive(Debug)]
pub struct TimingSession {
    library: Arc<Library>,
    config: SstaConfig,
    netlist: Netlist,
    state: TimingState,
    summary: CircuitSummary,
    /// Gate indices resized since the last refresh.
    dirty: BTreeSet<usize>,
    /// Sizes as of the last refresh, for no-op resize detection.
    analyzed_sizes: Vec<usize>,
    /// Cached frozen fork base: the first [`TimingSession::fork`] after a
    /// refresh pays one state copy, every sibling fork is a pointer bump.
    /// Invalidated by anything that mutates sizes or analysis state.
    fork_cache: Mutex<Option<Arc<ForkBase>>>,
}

impl TimingSession {
    /// Opens a session with the accurate engine
    /// ([`EngineKind::FullSsta`]) as the incremental flavor.
    ///
    /// Accepts anything that converts into a shared library handle: an
    /// `Arc<Library>` (shared, no copy), an owned `Library`, or a
    /// `&Library` (cloned once).
    #[must_use]
    pub fn new(library: impl Into<Arc<Library>>, config: SstaConfig, netlist: Netlist) -> Self {
        Self::with_kind(library, config, netlist, EngineKind::FullSsta)
    }

    /// Opens a session with an explicit incremental engine flavor.
    ///
    /// # Panics
    ///
    /// Panics if `kind` does not support incremental re-analysis
    /// ([`EngineKind::MonteCarlo`]) or the netlist references cells
    /// missing from the library.
    #[must_use]
    pub fn with_kind(
        library: impl Into<Arc<Library>>,
        config: SstaConfig,
        netlist: Netlist,
        kind: EngineKind,
    ) -> Self {
        assert!(
            kind.supports_incremental(),
            "{kind} cannot back an incremental session"
        );
        let library = library.into();
        let state = TimingState::full(&netlist, &library, &config, kind);
        let summary = state.circuit(&netlist, &config);
        let analyzed_sizes = netlist.sizes();
        Self {
            library,
            config,
            netlist,
            state,
            summary,
            dirty: BTreeSet::new(),
            analyzed_sizes,
            fork_cache: Mutex::new(None),
        }
    }

    /// Drops the cached fork base. Every mutation of sizes or analysis
    /// state must route through here so no branch can ever fork from (or
    /// commit against) a stale snapshot.
    fn invalidate_fork_cache(&mut self) {
        *self
            .fork_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// The incremental engine flavor.
    #[must_use]
    pub fn kind(&self) -> EngineKind {
        self.state.kind
    }

    /// The session's library.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// A shared handle to the session's library, for building sibling
    /// sessions or sizers against the same cells without another clone.
    #[must_use]
    pub fn library_handle(&self) -> Arc<Library> {
        Arc::clone(&self.library)
    }

    /// Consumes the session and hands the netlist (at its current sizes)
    /// back to the caller.
    #[must_use]
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The shared timing configuration.
    #[must_use]
    pub fn config(&self) -> &SstaConfig {
        &self.config
    }

    /// The netlist under analysis (current sizes, possibly ahead of the
    /// last refresh).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Whether resizes are pending a [`TimingSession::refresh`].
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Cumulative number of per-node recomputations, including the
    /// initial full build — the incremental path's cost meter.
    #[must_use]
    pub fn recompute_count(&self) -> u64 {
        self.state.visits
    }

    /// Number of topological levels the propagation frontier walks — the
    /// depth of the level-ordered arena (inputs count as level 0).
    #[must_use]
    pub fn propagation_levels(&self) -> usize {
        self.state.schedule.level_count()
    }

    /// Widest topological level: the per-level parallelism ceiling of
    /// one propagation (levels below the spawn-amortization threshold
    /// run inline regardless of [`crate::SstaConfig::threads`]).
    #[must_use]
    pub fn max_level_width(&self) -> usize {
        self.state.schedule.max_width()
    }

    /// Sets the size of a cell gate. Resizing back to the last analyzed
    /// size cancels the pending work.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a primary input or out of range (see
    /// [`TimingSession::try_resize`] for the non-panicking form).
    pub fn resize(&mut self, id: GateId, size: usize) {
        self.try_resize(id, size)
            .unwrap_or_else(|e| panic!("cannot size a primary input or bad id: {e}"));
    }

    /// Sets the size of a cell gate, rejecting bad ids and input nodes
    /// instead of panicking; on error the session (netlist, dirty set,
    /// analysis state) is untouched. This is the resize entry point for
    /// services validating untrusted requests.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::try_set_size`] errors.
    pub fn try_resize(&mut self, id: GateId, size: usize) -> Result<(), NetlistError> {
        self.netlist.try_set_size(id, size)?;
        self.invalidate_fork_cache();
        if self.analyzed_sizes[id.index()] == size {
            self.dirty.remove(&id.index());
        } else {
            self.dirty.insert(id.index());
        }
        Ok(())
    }

    /// Snapshot of all gate sizes (see [`Netlist::sizes`]).
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.netlist.sizes()
    }

    /// Stable fingerprint of the current size vector (see
    /// [`crate::fingerprint::size_fingerprint`]) — together with the
    /// circuit name and [`crate::fingerprint::config_fingerprint`] it
    /// identifies every analysis result this session can produce, which
    /// is how the service layer keys its cross-request result cache.
    #[must_use]
    pub fn size_fingerprint(&self) -> u64 {
        crate::fingerprint::size_fingerprint(&self.netlist.sizes())
    }

    /// Restores a size snapshot, marking exactly the differing gates
    /// dirty.
    ///
    /// # Panics
    ///
    /// Panics if `sizes.len() != netlist.node_count()` (see
    /// [`TimingSession::try_restore_sizes`] for the non-panicking form).
    pub fn restore_sizes(&mut self, sizes: &[usize]) {
        self.try_restore_sizes(sizes)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Restores a size snapshot, rejecting a length mismatch instead of
    /// panicking; on error the session is untouched.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::try_restore_sizes`] errors.
    pub fn try_restore_sizes(&mut self, sizes: &[usize]) -> Result<(), NetlistError> {
        self.netlist.try_restore_sizes(sizes)?;
        self.invalidate_fork_cache();
        for id in self.netlist.gate_ids() {
            let i = id.index();
            if sizes[i] == self.analyzed_sizes[i] {
                self.dirty.remove(&i);
            } else {
                self.dirty.insert(i);
            }
        }
        Ok(())
    }

    /// Total cell area at current sizes.
    #[must_use]
    pub fn total_area(&self) -> f64 {
        self.netlist.total_area(&self.library)
    }

    /// Brings the analysis up to date with the netlist's current sizes by
    /// recomputing only the affected cone, and returns the circuit
    /// moments. A no-op when nothing changed.
    pub fn refresh(&mut self) -> Moments {
        if !self.dirty.is_empty() {
            self.invalidate_fork_cache();
            let mut seeds: BTreeSet<usize> = BTreeSet::new();
            for &i in &self.dirty {
                // The resized gate's own drive and delay change, and its
                // input capacitance changes the load (hence delay and
                // output slew) of every fanin.
                seeds.insert(i);
                for &f in self.netlist.gate(GateId::from_index(i)).fanins() {
                    seeds.insert(f.index());
                }
            }
            self.state
                .update(&self.netlist, &self.library, &self.config, seeds);
            self.summary = self.state.circuit(&self.netlist, &self.config);
            // Only the dirty gates can differ from the analyzed snapshot,
            // so the bookkeeping stays proportional to the cone.
            for &i in &self.dirty {
                self.analyzed_sizes[i] = self
                    .netlist
                    .gate(GateId::from_index(i))
                    .size()
                    .expect("dirty nodes are cells");
            }
            self.dirty.clear();
        }
        self.summary.moments
    }

    /// Discards the incremental analysis state and rebuilds it from
    /// scratch for the netlist's current sizes, clearing any pending
    /// dirt. The result is identical to opening a fresh session on
    /// [`TimingSession::into_netlist`] — this is the recovery hatch for
    /// services that must keep a session alive after a query against it
    /// panicked mid-analysis.
    pub fn rebuild(&mut self) {
        self.state = TimingState::full(&self.netlist, &self.library, &self.config, self.state.kind);
        self.summary = self.state.circuit(&self.netlist, &self.config);
        self.analyzed_sizes = self.netlist.sizes();
        self.dirty.clear();
        self.invalidate_fork_cache();
    }

    /// Circuit output moments as of the last refresh.
    #[must_use]
    pub fn circuit_moments(&self) -> Moments {
        self.summary.moments
    }

    /// Circuit output PDF as of the last refresh (FULLSSTA sessions).
    #[must_use]
    pub fn circuit_pdf(&self) -> Option<&DiscretePdf> {
        self.summary.pdf.as_ref()
    }

    /// The statistically-worst output as of the last refresh.
    #[must_use]
    pub fn worst_output(&self) -> GateId {
        self.summary.worst_output
    }

    /// Arrival moments of one node as of the last refresh.
    #[must_use]
    pub fn arrival(&self, id: GateId) -> Moments {
        self.state.arrivals[id.index()]
    }

    /// All arrival moments as of the last refresh, indexed by
    /// [`GateId::index`] — boundary data for the fast engine and the WNSS
    /// tracer.
    #[must_use]
    pub fn arrivals(&self) -> &[Moments] {
        &self.state.arrivals
    }

    /// The electrical snapshot as of the last refresh.
    #[must_use]
    pub fn timing(&self) -> &CircuitTiming {
        &self.state.timing
    }

    /// Packages the incremental state as a [`TimingReport`] (refreshing
    /// first if needed).
    pub fn current_report(&mut self) -> TimingReport {
        self.refresh();
        self.state.to_report(&self.netlist, &self.config)
    }

    /// Runs any engine from scratch over the netlist's current sizes —
    /// the session as an engine front-end.
    #[must_use]
    pub fn report(&self, kind: EngineKind) -> TimingReport {
        kind.engine(&self.library, &self.config)
            .analyze(&self.netlist)
    }

    /// Statistical required times and slacks of the refreshed state
    /// against a required time `t_req` at every output — the session's
    /// own arrivals and electrical snapshot, no external plumbing.
    pub fn slacks(&mut self, t_req: f64) -> StatisticalSlacks {
        self.refresh();
        StatisticalSlacks::compute_with_timing(
            &self.netlist,
            &self.state.timing,
            &self.state.arrivals,
            t_req,
        )
    }

    /// Per-node statistical criticality of the refreshed state (the
    /// probability of lying on the critical path of a manufactured die).
    pub fn criticality(&mut self) -> Criticality {
        self.refresh();
        Criticality::compute(
            &self.netlist,
            &self.library,
            &self.config,
            &self.state.arrivals,
        )
    }

    /// Forks an owned copy-on-write [`SessionBranch`] of this session.
    ///
    /// The first fork after a refresh snapshots the session's state once
    /// into a shared fork base; every further fork of the same state is
    /// a pointer bump, and sibling branches share unchanged chunks of
    /// the size vector and the arrival/electrical snapshots physically
    /// (see [`crate::branch`]). A branch recomputes only its own
    /// divergent cone, memoizes cone results with its siblings, and can
    /// be committed back through [`TimingSession::commit`] or simply
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if resizes are pending ([`TimingSession::is_dirty`]): the
    /// frozen base must be consistent with the sizes it was computed
    /// from, so callers refresh first.
    #[must_use]
    pub fn fork(&self) -> SessionBranch {
        assert!(
            !self.is_dirty(),
            "fork requires a refreshed session (pending resizes would \
             make the frozen snapshot inconsistent)"
        );
        let mut cache = self
            .fork_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let fp = crate::fingerprint::size_fingerprint(&self.netlist.sizes());
        let base = match cache.as_ref() {
            Some(b) if b.size_fp() == fp => Arc::clone(b),
            _ => {
                let b = Arc::new(ForkBase::new(
                    Arc::clone(&self.library),
                    self.config.clone(),
                    self.netlist.clone(),
                    self.state.clone(),
                    self.summary.clone(),
                ));
                *cache = Some(Arc::clone(&b));
                b
            }
        };
        SessionBranch::from_base(base)
    }

    /// Commits a branch back into this session: the session adopts the
    /// branch's sizes and its evaluated propagation state **without
    /// recomputing anything** ([`TimingSession::recompute_count`] is
    /// unchanged), and returns the committed circuit moments. The result
    /// is bit-identical to applying the branch's resizes directly and
    /// refreshing.
    ///
    /// Consumes the branch; sibling branches of the same fork base stay
    /// valid for reads, but committing them afterwards fails with
    /// [`BranchError::BaseMismatch`] because their frozen base no longer
    /// matches the parent.
    ///
    /// # Errors
    ///
    /// [`BranchError::ParentDirty`] when resizes are pending here;
    /// [`BranchError::BaseMismatch`] when this session's sizes changed
    /// since the fork; [`BranchError::CircuitMismatch`] when the branch
    /// belongs to a different circuit, engine kind, or configuration.
    pub fn commit(&mut self, mut branch: SessionBranch) -> Result<Moments, BranchError> {
        if self.is_dirty() {
            return Err(BranchError::ParentDirty);
        }
        let found = self.size_fingerprint();
        if branch.base_fingerprint() != found {
            return Err(BranchError::BaseMismatch {
                expected: branch.base_fingerprint(),
                found,
            });
        }
        if branch.netlist().node_count() != self.netlist.node_count()
            || branch.kind() != self.state.kind
            || branch.config() != &self.config
        {
            return Err(BranchError::CircuitMismatch);
        }
        let Some(eval) = branch.eval_result() else {
            return Ok(self.summary.moments); // never diverged
        };
        self.netlist
            .try_restore_sizes(&branch.sizes())
            .map_err(|_| BranchError::CircuitMismatch)?;
        // Adoption: clone the memoized cone state (a byte copy, zero
        // kernel recomputations) and keep the parent's own cost meter.
        let mut state = eval.state.clone();
        state.visits = self.state.visits;
        self.state = state;
        self.summary = eval.summary.clone();
        self.analyzed_sizes = self.netlist.sizes();
        self.dirty.clear();
        self.invalidate_fork_cache();
        Ok(self.summary.moments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fassta, FullSsta};
    use vartol_netlist::generators::{benchmark, ripple_carry_adder};

    fn assert_moments_eq(a: Moments, b: Moments, tol: f64, what: &str) {
        assert!(
            (a.mean - b.mean).abs() <= tol && (a.var - b.var).abs() <= tol,
            "{what}: {a} vs {b}"
        );
    }

    #[test]
    fn fresh_session_matches_direct_engines() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let full = FullSsta::new(&lib, &config).analyze(&n);
        let fast = Fassta::new(&lib, &config).analyze(&n);

        let session = TimingSession::new(&lib, config.clone(), n);
        assert_eq!(session.circuit_moments(), full.circuit_moments());
        assert_eq!(session.arrivals(), full.arrivals());

        let n2 = ripple_carry_adder(8, &lib);
        let session = TimingSession::with_kind(&lib, config, n2, EngineKind::Fassta);
        assert_eq!(session.circuit_moments(), fast.circuit_moments());
    }

    #[test]
    fn incremental_refresh_equals_from_scratch_for_every_kind() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        for kind in [EngineKind::Dsta, EngineKind::Fassta, EngineKind::FullSsta] {
            let n = benchmark("c432", &lib).expect("known");
            let gates: Vec<GateId> = n.gate_ids().collect();
            let mut session = TimingSession::with_kind(&lib, config.clone(), n, kind);
            // A spread of resizes, including cancelling one out.
            session.resize(gates[3], 4);
            session.resize(gates[40], 2);
            session.resize(gates[40], 0); // back to original
            session.resize(*gates.last().expect("gates"), 5);
            let incremental = session.refresh();
            let scratch = session.report(kind);
            assert_moments_eq(
                incremental,
                scratch.circuit_moments(),
                1e-9,
                &format!("{kind} circuit"),
            );
            assert_eq!(session.arrivals(), scratch.arrivals(), "{kind} arrivals");
        }
    }

    #[test]
    fn refresh_without_changes_is_free() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(6, &lib);
        let mut session = TimingSession::new(&lib, config, n);
        let visits_after_build = session.recompute_count();
        let a = session.refresh();
        let b = session.refresh();
        assert_eq!(a, b);
        assert_eq!(session.recompute_count(), visits_after_build);
    }

    #[test]
    fn resize_back_to_analyzed_size_cancels_dirt() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(6, &lib);
        let mut session = TimingSession::new(&lib, config, n);
        let g = session.netlist().gate_ids().nth(5).expect("gates");
        let original = session.netlist().gate(g).size().expect("cell");
        session.resize(g, 4);
        assert!(session.is_dirty());
        session.resize(g, original);
        assert!(!session.is_dirty());
        let before = session.recompute_count();
        session.refresh();
        assert_eq!(session.recompute_count(), before, "no-op refresh");
    }

    #[test]
    fn restore_sizes_tracks_exact_differences() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(6, &lib);
        let mut session = TimingSession::new(&lib, config, n);
        let snapshot = session.sizes();
        let g = session.netlist().gate_ids().nth(2).expect("gates");
        session.resize(g, 3);
        session.refresh();
        session.restore_sizes(&snapshot);
        assert!(session.is_dirty());
        let restored = session.refresh();
        let scratch = session.report(EngineKind::FullSsta);
        assert_moments_eq(restored, scratch.circuit_moments(), 1e-9, "restored");
    }

    #[test]
    fn current_report_matches_scratch_engine() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(6, &lib);
        let mut session = TimingSession::new(&lib, config, n);
        let g = session.netlist().gate_ids().nth(7).expect("gates");
        session.resize(g, 5);
        let report = session.current_report();
        let scratch = session.report(EngineKind::FullSsta);
        assert_eq!(report.circuit_moments(), scratch.circuit_moments());
        assert_eq!(report.arrivals(), scratch.arrivals());
        assert_eq!(report.worst_output(), scratch.worst_output());
    }

    #[test]
    fn single_resize_visits_only_the_affected_cone() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        // c1908 is comfortably past 500 gates.
        let n = benchmark("c1908", &lib).expect("known");
        assert!(n.gate_count() >= 500, "need a big circuit");
        let node_count = n.node_count();

        // A gate whose affected cone is small: high topological index.
        let g = n.gate_ids().last().expect("gates");
        let mut cone_seeds: Vec<GateId> = vec![g];
        cone_seeds.extend_from_slice(n.gate(g).fanins());
        let cone = n.fanout_cone(cone_seeds.iter().copied());

        let mut session = TimingSession::new(&lib, config, n);
        let before = session.recompute_count();
        session.resize(g, 4);
        session.refresh();
        let visited = session.recompute_count() - before;

        assert!(
            visited <= cone.len() as u64,
            "visited {visited} nodes, affected cone has {}",
            cone.len()
        );
        assert!(
            (visited as usize) < node_count / 10,
            "incremental refresh must not approach a full pass: \
             {visited} of {node_count}"
        );
    }

    #[test]
    fn fork_trials_never_touch_the_parent() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = ripple_carry_adder(8, &lib);
        let mut session = TimingSession::new(&lib, config, n);
        let baseline = session.refresh();
        let sizes_before = session.sizes();
        let arrivals_before = session.arrivals().to_vec();

        let g = session.netlist().gate_ids().nth(4).expect("gates");
        let mut branch = session.fork();
        branch.resize(g, 5);
        assert_eq!(branch.netlist().gate(g).size(), Some(5));
        // Frozen boundary: the branch still serves pass-start arrivals.
        assert_eq!(branch.base_arrivals(), arrivals_before.as_slice());

        // The parent saw none of it.
        assert!(!session.is_dirty());
        assert_eq!(session.sizes(), sizes_before);
        assert_eq!(session.refresh(), baseline);
        assert_eq!(session.arrivals(), arrivals_before.as_slice());
    }

    #[test]
    fn forks_score_candidates_identically_across_pool_widths() {
        use crate::pool::ScopedPool;
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = benchmark("c432", &lib).expect("known");
        let mut session = TimingSession::new(&lib, config, n);
        session.refresh();
        let gates: Vec<GateId> = session.netlist().gate_ids().take(24).collect();

        // Score "upsize by one" for each gate in a branch; the trial is
        // rolled back before the next task, so results depend only on
        // the task index.
        let score = |branch: &mut SessionBranch, i: usize| -> (u64, u64) {
            let g = gates[i];
            let current = branch.netlist().gate(g).size().expect("cell");
            branch.resize(g, current + 1);
            let fast = crate::Fassta::new(branch.library(), branch.config());
            let sub = vartol_netlist::Subcircuit::extract(branch.netlist(), g, 2);
            let outs = fast.evaluate_subcircuit(
                branch.netlist(),
                &sub,
                branch.base_arrivals(),
                branch.base_timing(),
            );
            branch.resize(g, current);
            let m = outs.iter().copied().reduce(|a, b| a + b).expect("outputs");
            (m.mean.to_bits(), m.var.to_bits())
        };

        let serial = ScopedPool::new(1).map_init(gates.len(), || session.fork(), score);
        for threads in [2, 8] {
            let parallel = ScopedPool::new(threads).map_init(gates.len(), || session.fork(), score);
            assert_eq!(serial, parallel, "{threads}-thread pool");
        }
    }

    #[test]
    #[should_panic(expected = "requires a refreshed session")]
    fn fork_of_a_dirty_session_is_rejected() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(4, &lib);
        let mut session = TimingSession::new(&lib, SstaConfig::default(), n);
        let g = session.netlist().gate_ids().next().expect("gates");
        session.resize(g, 3);
        let _ = session.fork();
    }

    #[test]
    fn restore_then_refresh_never_serves_stale_arrivals() {
        // The dirty-flag audit regression: every interleaving of resize /
        // restore_sizes / refresh must leave post-refresh accessors
        // bit-identical to a from-scratch analysis, including restores
        // that cancel part of the pending work.
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = benchmark("c432", &lib).expect("known");
        let gates: Vec<GateId> = n.gate_ids().collect();
        let mut session = TimingSession::new(&lib, config, n);

        let snapshot = session.sizes();
        session.resize(gates[5], 4);
        session.resize(gates[17], 3);
        session.refresh();
        let refreshed_sizes = session.sizes();
        let refreshed_arrivals = session.arrivals().to_vec();

        // Restore while clean: accessors before the refresh still serve
        // the last-refreshed state (documented staleness), never a
        // half-updated one.
        session.restore_sizes(&snapshot);
        assert!(session.is_dirty());
        assert_eq!(session.arrivals(), refreshed_arrivals.as_slice());

        // Partially cancel the restore: gate 5 back to its refreshed
        // size, so only gate 17 (and its cone) should be recomputed.
        session.resize(gates[5], 4);
        let after = session.refresh();
        let mut expected_sizes = snapshot.clone();
        expected_sizes[gates[5].index()] = refreshed_sizes[gates[5].index()];
        assert_eq!(session.sizes(), expected_sizes);

        let scratch = session.report(EngineKind::FullSsta);
        assert_moments_eq(
            after,
            scratch.circuit_moments(),
            0.0,
            "post-restore refresh",
        );
        assert_eq!(
            session.arrivals(),
            scratch.arrivals(),
            "arrivals must be fresh"
        );
    }

    #[test]
    fn randomized_resize_restore_interleavings_match_scratch() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = benchmark("c432", &lib).expect("known");
        let gates: Vec<GateId> = n.gate_ids().collect();
        let mut session = TimingSession::with_kind(&lib, config, n, EngineKind::Fassta);
        let mut rng = StdRng::seed_from_u64(0x5e_5510);
        let mut snapshot = session.sizes();

        for step in 0..60 {
            match rng.gen_range(0..4u8) {
                0 => {
                    let g = gates[rng.gen_range(0..gates.len())];
                    let gate = session.netlist().gate(g);
                    let group = session
                        .library()
                        .group(gate.function().expect("cell"), gate.fanins().len())
                        .expect("library covers suite functions");
                    let size = rng.gen_range(0..group.len());
                    session.resize(g, size);
                }
                1 => snapshot = session.sizes(),
                2 => session.restore_sizes(&snapshot.clone()),
                _ => {
                    let refreshed = session.refresh();
                    let scratch = session.report(EngineKind::Fassta);
                    assert_moments_eq(
                        refreshed,
                        scratch.circuit_moments(),
                        0.0,
                        &format!("step {step}"),
                    );
                    assert_eq!(session.arrivals(), scratch.arrivals(), "step {step}");
                }
            }
        }
        let last = session.refresh();
        let scratch = session.report(EngineKind::Fassta);
        assert_moments_eq(last, scratch.circuit_moments(), 0.0, "final");
    }

    #[test]
    fn sessions_are_owned_handles_storable_and_sendable() {
        // The whole point of the redesign: a session with no lifetime
        // parameters can live in a struct, in a map, and on another
        // thread — none of this compiled against the borrowed API.
        struct Service {
            sessions: Vec<TimingSession>,
        }
        let lib = std::sync::Arc::new(Library::synthetic_90nm());
        let mut service = Service {
            sessions: (4..=6)
                .map(|bits| {
                    TimingSession::new(
                        std::sync::Arc::clone(&lib),
                        SstaConfig::default(),
                        ripple_carry_adder(bits, &lib),
                    )
                })
                .collect(),
        };
        let moments: Vec<Moments> = service
            .sessions
            .iter_mut()
            .map(TimingSession::refresh)
            .collect();
        assert!(moments.windows(2).all(|w| w[0].mean < w[1].mean));

        let session = service.sessions.pop().expect("three sessions");
        let from_thread = std::thread::spawn(move || {
            let mut session = session;
            session.refresh()
        })
        .join()
        .expect("worker");
        assert_eq!(from_thread, moments[2]);
    }

    #[test]
    fn into_netlist_round_trips_the_current_sizes() {
        let lib = Library::synthetic_90nm();
        let mut session =
            TimingSession::new(&lib, SstaConfig::default(), ripple_carry_adder(6, &lib));
        let g = session.netlist().gate_ids().nth(3).expect("gates");
        session.resize(g, 5);
        session.refresh();
        let n = session.into_netlist();
        assert_eq!(n.gate(g).size(), Some(5));
        // A fresh session over the returned netlist agrees exactly.
        let reopened = TimingSession::new(&lib, SstaConfig::default(), n);
        assert!(reopened.circuit_moments().mean > 0.0);
    }

    #[test]
    fn try_resize_rejects_bad_requests_without_dirtying() {
        let lib = Library::synthetic_90nm();
        let mut session =
            TimingSession::new(&lib, SstaConfig::default(), ripple_carry_adder(4, &lib));
        let input = session.netlist().inputs()[0];
        assert!(session.try_resize(input, 2).is_err());
        let bogus = GateId::from_index(session.netlist().node_count() + 7);
        assert!(session.try_resize(bogus, 0).is_err());
        assert!(!session.is_dirty(), "failed resizes leave no dirt");
        assert!(
            session.try_restore_sizes(&[0, 1]).is_err(),
            "length mismatch rejected"
        );
        assert!(!session.is_dirty());
    }

    #[test]
    fn rebuild_matches_incremental_state_exactly() {
        let lib = Library::synthetic_90nm();
        let n = benchmark("c432", &lib).expect("known");
        let mut session = TimingSession::new(&lib, SstaConfig::default(), n);
        let g = session.netlist().gate_ids().nth(20).expect("gates");
        session.resize(g, 3);
        let incremental = session.refresh();
        let arrivals = session.arrivals().to_vec();
        session.rebuild();
        assert!(!session.is_dirty());
        assert_eq!(session.circuit_moments(), incremental);
        assert_eq!(session.arrivals(), arrivals.as_slice());
    }

    #[test]
    fn session_slack_and_criticality_match_free_functions() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(6, &lib);
        let config = SstaConfig::default();
        let mut session = TimingSession::new(&lib, config.clone(), n.clone());
        let m = session.refresh();
        let t = m.mean + 2.0 * m.std();

        let via_session = session.slacks(t);
        let direct =
            StatisticalSlacks::compute_with_timing(&n, session.timing(), session.arrivals(), t);
        assert_eq!(via_session, direct);

        let crit = session.criticality();
        let direct = Criticality::compute(&n, &lib, &config, session.arrivals());
        assert_eq!(crit, direct);
    }

    #[test]
    fn conditioned_incremental_refresh_matches_scratch() {
        // The correlated-variation lanes ride the same worklist as the
        // legacy path: an incremental refresh under a die-to-die model
        // must still reproduce a from-scratch conditioned analysis.
        let lib = Library::synthetic_90nm();
        let config =
            SstaConfig::default().with_model(crate::variation::VariationModel::die_to_die(0.6));
        for kind in [EngineKind::Dsta, EngineKind::Fassta, EngineKind::FullSsta] {
            let n = ripple_carry_adder(8, &lib);
            let gates: Vec<GateId> = n.gate_ids().collect();
            let mut session = TimingSession::with_kind(&lib, config.clone(), n, kind);
            session.resize(gates[3], 4);
            session.resize(*gates.last().expect("gates"), 5);
            let incremental = session.refresh();
            let scratch = session.report(kind);
            assert_moments_eq(
                incremental,
                scratch.circuit_moments(),
                1e-9,
                &format!("{kind} conditioned circuit"),
            );
            assert_eq!(
                session.arrivals(),
                scratch.arrivals(),
                "{kind} conditioned arrivals"
            );
        }
    }

    #[test]
    fn conditioned_refresh_recomputes_only_the_cone() {
        let lib = Library::synthetic_90nm();
        let config =
            SstaConfig::default().with_model(crate::variation::VariationModel::die_to_die(0.5));
        let n = benchmark("c1908", &lib).expect("known");
        let node_count = n.node_count();
        let g = n.gate_ids().last().expect("gates");
        let mut session = TimingSession::new(&lib, config, n);
        let before = session.recompute_count();
        session.resize(g, 4);
        session.refresh();
        let visited = session.recompute_count() - before;
        assert!(
            (visited as usize) < node_count / 10,
            "conditioned incremental refresh must stay cone-local: \
             {visited} of {node_count}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot back an incremental session")]
    fn monte_carlo_sessions_are_rejected() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(4, &lib);
        let _ = TimingSession::with_kind(&lib, SstaConfig::default(), n, EngineKind::MonteCarlo);
    }
}
