//! FASSTA — the fast inner statistical timing engine (§4.3).
//!
//! Where FULLSSTA propagates full discrete PDFs, FASSTA propagates only
//! `(mean, variance)` pairs: sums are exact on moments, maxima use the
//! paper's approximation (dominance shortcuts at ±2.6σ of the gap, Clark
//! with the quadratic erf otherwise). *"The FASSTA engine relies on the
//! point values for means and variances of delays calculated in FULLSSTA
//! rather than the complete discrete pdf representations."*
//!
//! Two modes:
//!
//! * [`Fassta::analyze`] — whole-circuit moment propagation, sharing its
//!   kernel with the incremental [`TimingSession`](crate::TimingSession);
//! * [`Fassta::evaluate_subcircuit`] — the optimizer's inner loop: evaluate
//!   one extracted region against boundary arrivals stored by FULLSSTA,
//!   with member delays recomputed for the netlist's *current* sizes.
//!
//! Under a correlated [`VariationModel`](crate::variation::VariationModel)
//! with global sources, whole-circuit analysis conditions exactly like
//! FULLSSTA (moment lanes per Gauss–Hermite node, recombined per node);
//! `evaluate_subcircuit` keeps scoring against the session's
//! **unconditional** boundary moments — a deliberate approximation: the
//! optimizer's candidate *ranking* runs on the cheap marginal view while
//! every accept/reject decision is validated on the conditioned session.
//!
//! Whole-circuit analysis runs through the level-ordered arena
//! (`state.rs`): wide levels fan their (node × lane) moment
//! kernels out over [`SstaConfig::threads`](crate::SstaConfig)
//! workers and join serially in node order, so reports are
//! **bit-identical at every thread width**.

use crate::config::SstaConfig;
use crate::delay::CircuitTiming;
use crate::engine::{EngineKind, TimingEngine, TimingReport};
use crate::state::TimingState;
use std::collections::HashMap;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist, Subcircuit};
use vartol_stats::fast_max::fast_max_moments;
use vartol_stats::Moments;

/// The fast moment-propagation engine.
#[derive(Debug, Clone, Copy)]
pub struct Fassta<'a> {
    library: &'a Library,
    config: &'a SstaConfig,
}

impl<'a> Fassta<'a> {
    /// Creates an engine over a library with the given configuration.
    #[must_use]
    pub fn new(library: &'a Library, config: &'a SstaConfig) -> Self {
        Self { library, config }
    }

    /// Whole-circuit moment propagation.
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    #[must_use]
    pub fn analyze(&self, netlist: &Netlist) -> TimingReport {
        TimingState::full(netlist, self.library, self.config, EngineKind::Fassta)
            .into_report(netlist, self.config)
    }

    /// Evaluates one subcircuit against stored boundary arrivals.
    ///
    /// `boundary_arrivals[f.index()]` must hold the arrival moments of
    /// every boundary input `f` (typically FULLSSTA's stored node stats);
    /// `base_timing` supplies boundary slews. Member loads and delays are
    /// recomputed from the netlist's current sizes, so the caller can trial
    /// a size assignment by mutating the netlist before calling.
    ///
    /// Returns the arrival moments at each of the subcircuit's local
    /// outputs, ordered as [`Subcircuit::local_outputs`].
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    #[must_use]
    pub fn evaluate_subcircuit(
        &self,
        netlist: &Netlist,
        sub: &Subcircuit,
        boundary_arrivals: &[Moments],
        base_timing: &CircuitTiming,
    ) -> Vec<Moments> {
        let member_delays = base_timing.member_delays(netlist, self.library, self.config, sub);

        // Arrival overlay for members only.
        let mut local: HashMap<GateId, Moments> = HashMap::with_capacity(sub.members().len());
        for (pos, &m) in sub.members().iter().enumerate() {
            let g = netlist.gate(m);
            let mut arrival = Moments::zero();
            let mut first = true;
            for &f in g.fanins() {
                let fa = local
                    .get(&f)
                    .copied()
                    .unwrap_or_else(|| boundary_arrivals[f.index()]);
                arrival = if first {
                    fa
                } else {
                    fast_max_moments(arrival, fa)
                };
                first = false;
            }
            local.insert(m, arrival + member_delays[pos]);
        }

        sub.local_outputs().iter().map(|o| local[o]).collect()
    }
}

impl TimingEngine for Fassta<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Fassta
    }

    fn analyze(&self, netlist: &Netlist) -> TimingReport {
        Fassta::analyze(self, netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullssta::FullSsta;
    use vartol_netlist::generators::{alu, benchmark, magnitude_comparator, ripple_carry_adder};

    #[test]
    fn tracks_fullssta_on_suite_circuits() {
        // FASSTA deliberately ignores reconvergence correlation (§4.3:
        // "this approach emphasizes speed while retaining a reasonable
        // degree of accuracy for small subcircuits"), so whole-circuit
        // agreement with the correlation-aware FULLSSTA is loose: the
        // independence assumption inflates the mean and deflates sigma.
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        for name in ["c432", "c880"] {
            let n = benchmark(name, &lib).expect("known");
            let full = FullSsta::new(&lib, &config).analyze(&n).circuit_moments();
            let fast = Fassta::new(&lib, &config).analyze(&n).circuit_moments();
            assert!(
                (full.mean - fast.mean).abs() / full.mean < 0.12,
                "{name} mean: full {} vs fast {}",
                full.mean,
                fast.mean
            );
            assert!(
                (full.std() - fast.std()).abs() / full.std() < 0.60,
                "{name} sigma: full {} vs fast {}",
                full.std(),
                fast.std()
            );
        }
    }

    #[test]
    fn subcircuit_evaluation_matches_full_when_nothing_changes() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let n = alu(6, &lib);
        let engine = Fassta::new(&lib, &config);
        let full = FullSsta::new(&lib, &config).analyze(&n);

        let center = n.gate_ids().nth(20).expect("enough gates");
        let sub = Subcircuit::extract(&n, center, 2);
        let got = engine.evaluate_subcircuit(&n, &sub, full.arrivals(), full.timing());
        for (o, m) in sub.local_outputs().iter().zip(&got) {
            let want = full.arrival(*o);
            assert!(
                (m.mean - want.mean).abs() / want.mean.max(1.0) < 0.1,
                "output {o}: {m} vs {want}"
            );
        }
    }

    #[test]
    fn subcircuit_sees_size_changes() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let mut n = ripple_carry_adder(8, &lib);
        let engine = Fassta::new(&lib, &config);
        let full = FullSsta::new(&lib, &config).analyze(&n);

        // Take a gate in the middle of the carry chain.
        let center = n.gate_by_name("add_fa4_c").expect("carry gate exists");
        let sub = Subcircuit::extract(&n, center, 2);
        let before = engine.evaluate_subcircuit(&n, &sub, full.arrivals(), full.timing());

        n.set_size(center, 5);
        let after = engine.evaluate_subcircuit(&n, &sub, full.arrivals(), full.timing());

        // The resized gate's sigma contribution shrinks; at least one local
        // output must see a strictly different arrival.
        assert!(
            before
                .iter()
                .zip(&after)
                .any(|(b, a)| (b.mean - a.mean).abs() > 1e-9 || (b.var - a.var).abs() > 1e-9),
            "resizing must be visible to the inner engine"
        );
    }

    #[test]
    fn comparator_outputs_reduce_via_fast_max() {
        let lib = Library::synthetic_90nm();
        let n = magnitude_comparator(8, &lib);
        let config = SstaConfig::default();
        let r = Fassta::new(&lib, &config).analyze(&n);
        let worst = n
            .outputs()
            .iter()
            .map(|&o| r.arrival(o).mean)
            .fold(0.0f64, f64::max);
        assert!(r.circuit_moments().mean >= worst - 1e-9);
    }

    #[test]
    fn deterministic_mode_matches_exactly() {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::deterministic();
        let n = ripple_carry_adder(6, &lib);
        let fast = Fassta::new(&lib, &config).analyze(&n);
        let full = FullSsta::new(&lib, &config).analyze(&n);
        assert!(
            (fast.circuit_moments().mean - full.circuit_moments().mean).abs() < 1e-6,
            "no variation -> both engines are plain STA"
        );
    }
}
