//! Deterministic multi-start simulated annealing over session branches.
//!
//! Each restart is an independent Metropolis walk over the discrete
//! size space, running on its own copy-on-write
//! [`SessionBranch`](crate::SessionBranch): proposing a size is a
//! pointer-cheap private mutation, evaluating it is a memoized
//! incremental cone refresh, and the parent session stays frozen
//! throughout. Restarts fan out over a [`ScopedPool`]; each draws from
//! its own SplitMix64 stream keyed by `(seed, restart index)`, so the
//! walk — and therefore the whole outcome — is **bit-identical at every
//! pool width**, and a run over restarts `[k, k+n)` via
//! [`AnnealingConfig::restart_offset`] reproduces exactly those
//! restarts of a full run (the restart-chunking property the
//! determinism suite pins down).
//!
//! The best branch (lowest energy; ties go to the earliest restart) is
//! adopted with [`TimingSession::commit`] — zero recompute, the
//! branch's memoized cone results become the session's — which is also
//! why the committed winner provably equals its branch fingerprint's
//! memoized report.
//!
//! [`ScopedPool`]: crate::ScopedPool
//! [`TimingSession::commit`]: crate::TimingSession::commit

use super::{Objective, Sizer, SizingOutcome, SizingPass};
use crate::branch::SessionBranch;
use crate::config::SstaConfig;
use crate::engine::EngineKind;
use crate::pool::ScopedPool;
use crate::session::TimingSession;
use std::sync::Arc;
use std::time::Instant;
use vartol_liberty::Library;
use vartol_netlist::{GateId, GateKind, Netlist};
use vartol_stats::Moments;

/// Tuning knobs for [`AnnealingSizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingConfig {
    /// What to minimize. Default: the paper's `μ + 3σ`.
    pub objective: Objective,
    /// Independent restarts (each gets its own branch and RNG stream).
    pub restarts: usize,
    /// Metropolis moves per restart.
    pub moves: usize,
    /// Initial temperature as a fraction of the initial objective
    /// magnitude.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor applied after every move.
    pub cooling: f64,
    /// Area pressure in the energy: `E = objective + area_weight ·
    /// (area / initial_area) · |initial objective|`.
    pub area_weight: f64,
    /// Base RNG seed; restart `r` draws from stream
    /// `mix(seed, restart_offset + r)`.
    pub seed: u64,
    /// Global index of the first restart — lets a sharded run cover
    /// restarts `[offset, offset + restarts)` of a larger schedule and
    /// reproduce them bit for bit.
    pub restart_offset: u64,
    /// Downsize-polish each restart's best state before the winner is
    /// picked (so the committed branch is already polished).
    pub area_recovery: bool,
    /// Fraction of the energy gain the polish must keep: its budget is
    /// `start − keep·(start − best)`, so `1.0` trades nothing back and
    /// `0.8` spends a fifth of the win on area.
    pub recovery_keep_frac: f64,
    /// Timing/variation configuration shared with the session.
    pub ssta: SstaConfig,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            objective: Objective::Statistical { alpha: 3.0 },
            restarts: 4,
            moves: 400,
            initial_temp_frac: 0.05,
            cooling: 0.985,
            area_weight: 0.01,
            seed: 0x5eed_ba5e,
            restart_offset: 0,
            area_recovery: true,
            recovery_keep_frac: 0.85,
            ssta: SstaConfig::default(),
        }
    }
}

impl AnnealingConfig {
    /// Sets the objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the restart count.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Sets the per-restart move budget.
    #[must_use]
    pub fn with_moves(mut self, moves: usize) -> Self {
        self.moves = moves;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts the restart schedule at a global index (for chunked runs).
    #[must_use]
    pub fn with_restart_offset(mut self, offset: u64) -> Self {
        self.restart_offset = offset;
        self
    }

    /// Replaces the timing configuration.
    #[must_use]
    pub fn with_ssta(mut self, ssta: SstaConfig) -> Self {
        self.ssta = ssta;
        self
    }
}

/// SplitMix64 — the tiny deterministic generator behind each restart
/// stream. Sequential, allocation-free, identical on every platform.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let v = (self.next_u64() >> 11) as f64;
        v / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The stream seed of global restart `r` under base `seed`: a SplitMix64
/// finalizer over `seed ⊕ golden·(r+1)`, so neighboring restarts land in
/// unrelated regions of the state space.
#[must_use]
pub fn restart_seed(seed: u64, restart: u64) -> u64 {
    let mut z = seed ^ restart.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one restart walked to: its final (polished) best state, still
/// alive on its branch so the winner can be committed without recompute.
struct RestartResult {
    energy: f64,
    moments: Moments,
    area: f64,
    resized: usize,
    branch: SessionBranch,
}

/// Deterministic multi-start simulated-annealing sizer.
///
/// See the module docs above. Holds its library through a shared
/// handle, like every sizer in the workspace.
#[derive(Debug, Clone)]
pub struct AnnealingSizer {
    library: Arc<Library>,
    config: AnnealingConfig,
}

impl AnnealingSizer {
    /// Creates a sizer over a library. Accepts an `Arc<Library>`, an
    /// owned `Library`, or a `&Library` (cloned once).
    #[must_use]
    pub fn new(library: impl Into<Arc<Library>>, config: AnnealingConfig) -> Self {
        Self {
            library: library.into(),
            config,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &AnnealingConfig {
        &self.config
    }

    /// One Metropolis walk on a private branch. Everything here reads
    /// only the branch and the restart's own RNG stream, so the result
    /// depends on nothing but the global restart index.
    fn run_restart(
        &self,
        mut branch: SessionBranch,
        resizable: &[(GateId, usize)],
        restart: u64,
        base_sizes: &[usize],
        initial_area: f64,
        objective_norm: f64,
    ) -> RestartResult {
        let objective = self.config.objective;
        let energy = |m: Moments, area: f64| {
            objective.value(m) + self.config.area_weight * (area / initial_area) * objective_norm
        };
        let mut rng = SplitMix64::new(restart_seed(self.config.seed, restart));

        let m0 = branch.refresh();
        let mut current_energy = energy(m0, branch.total_area());
        let walk_start_energy = current_energy;
        let mut best_energy = current_energy;
        let mut best_sizes = branch.sizes();
        let mut temp = self.config.initial_temp_frac * objective_norm;

        for _ in 0..self.config.moves {
            let (g, group_len) = resizable[rng.next_below(resizable.len() as u64) as usize];
            let proposal = rng.next_below(group_len as u64) as usize;
            let current = branch.sizes()[g.index()];
            // A same-size proposal still advances the stream (and the
            // schedule) so the walk is a pure function of the seed.
            if proposal != current {
                branch.resize(g, proposal);
                let m = branch.refresh();
                let next_energy = energy(m, branch.total_area());
                let delta = next_energy - current_energy;
                let accept = delta <= 0.0 || (temp > 0.0 && rng.next_f64() < (-delta / temp).exp());
                if accept {
                    current_energy = next_energy;
                    if next_energy < best_energy {
                        best_energy = next_energy;
                        best_sizes = branch.sizes();
                    }
                } else {
                    branch.resize(g, current);
                }
            }
            temp *= self.config.cooling;
        }

        // Land the branch on its best state, then polish: downsize
        // sinks-first wherever the energy does not rise (the area term
        // arbitrates objective-vs-area), so the branch the winner
        // commits is already the polished one.
        branch
            .try_restore_sizes(&best_sizes)
            .expect("best sizes came from this branch");
        branch.refresh();
        if self.config.area_recovery {
            let gain = (walk_start_energy - best_energy).max(0.0);
            let keep = self.config.recovery_keep_frac.clamp(0.0, 1.0);
            let budget = best_energy + (1.0 - keep) * gain + 1e-12 * best_energy.abs().max(1.0);
            // Sinks-first sweeps to a fixpoint: freeing one gate can
            // unlock slack upstream.
            loop {
                let mut changed = false;
                for &(g, _) in resizable.iter().rev() {
                    let current = branch.sizes()[g.index()];
                    let mut kept = current;
                    for size in (0..current).rev() {
                        branch.resize(g, size);
                        let m = branch.refresh();
                        let e = energy(m, branch.total_area());
                        if e <= budget {
                            kept = size;
                            best_energy = best_energy.min(e);
                        } else {
                            break;
                        }
                    }
                    branch.resize(g, kept);
                    branch.refresh();
                    if kept != current {
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        let moments = branch.refresh();
        let area = branch.total_area();
        let resized = branch
            .sizes()
            .iter()
            .zip(base_sizes)
            .filter(|(a, b)| a != b)
            .count();
        RestartResult {
            energy: energy(moments, area),
            moments,
            area,
            resized,
            branch,
        }
    }
}

impl Sizer for AnnealingSizer {
    fn name(&self) -> &'static str {
        "annealing"
    }

    /// Runs the restart schedule and commits the winning branch.
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    fn size(&self, netlist: &mut Netlist) -> SizingOutcome {
        let start = Instant::now();
        let objective = self.config.objective;
        let mut session = TimingSession::with_kind(
            Arc::clone(&self.library),
            self.config.ssta.clone(),
            netlist.clone(),
            EngineKind::FullSsta,
        );
        let initial = session.circuit_moments();
        let initial_area = session.total_area();
        let objective_norm = objective.value(initial).abs().max(1e-9);

        let mut resizable: Vec<(GateId, usize)> = Vec::new();
        for g in session.netlist().gate_ids() {
            let gate = session.netlist().gate(g);
            if let GateKind::Cell { function, .. } = *gate.kind() {
                let arity = gate.fanins().len();
                if let Some(group) = self.library.group(function, arity) {
                    if group.len() > 1 {
                        resizable.push((g, group.len()));
                    }
                }
            }
        }

        if resizable.is_empty() || self.config.restarts == 0 || self.config.moves == 0 {
            let outcome = SizingOutcome {
                optimizer: self.name(),
                objective,
                initial_moments: initial,
                final_moments: initial,
                initial_area,
                final_area: initial_area,
                passes: Vec::new(),
                runtime: start.elapsed(),
            };
            *netlist = session.into_netlist();
            return outcome;
        }

        // Fork the whole population up front (pointer bumps off one
        // frozen base), walk the restarts concurrently, join in restart
        // order.
        let base_sizes = session.sizes();
        let branches: Vec<SessionBranch> =
            (0..self.config.restarts).map(|_| session.fork()).collect();
        let pool = ScopedPool::new(self.config.ssta.threads);
        let results: Vec<RestartResult> = pool.map_items(branches, |r, branch| {
            self.run_restart(
                branch,
                &resizable,
                self.config.restart_offset + r as u64,
                &base_sizes,
                initial_area,
                objective_norm,
            )
        });

        let passes: Vec<SizingPass> = results
            .iter()
            .enumerate()
            .map(|(r, res)| SizingPass {
                pass: usize::try_from(self.config.restart_offset).unwrap_or(usize::MAX) + r + 1,
                moments: res.moments,
                objective: objective.value(res.moments),
                area: res.area,
                resized: res.resized,
            })
            .collect();

        // Lowest energy wins; ties go to the earliest restart, and a
        // winner that is no better than the start is discarded (the
        // outcome is never worse than its starting point).
        let mut winner: Option<usize> = None;
        for (r, res) in results.iter().enumerate() {
            if winner.is_none_or(|w| res.energy < results[w].energy) {
                winner = Some(r);
            }
        }
        let start_energy = objective.value(initial) + self.config.area_weight * objective_norm;
        let winner = winner.filter(|&w| results[w].energy <= start_energy);

        if let Some(w) = winner {
            let branch = results
                .into_iter()
                .nth(w)
                .expect("winner index is in range")
                .branch;
            session
                .commit(branch)
                .expect("the parent stayed frozen while the restarts ran");
        }

        let final_moments = session.circuit_moments();
        let final_area = session.total_area();
        *netlist = session.into_netlist();
        SizingOutcome {
            optimizer: self.name(),
            objective,
            initial_moments: initial,
            final_moments,
            initial_area,
            final_area,
            passes,
            runtime: start.elapsed(),
        }
    }
}
