//! Lagrangian-relaxation / sensitivity-guided global sizing.
//!
//! The discrete sizing problem `min area s.t. cost(endpoint e) ≤ T ∀e`
//! is relaxed two ways: per-endpoint constraints move into the
//! objective with Lagrange multipliers λ_e (projected-subgradient
//! updates, see [`update_multipliers`](super::update_multipliers)), and
//! gate sizes become continuous variables x_g stepped along the
//! Lagrangian gradient `∂A/∂x + (Σ_{e ∈ reach(g)} λ_e)·∂D/∂x`. The
//! delay sensitivity `∂D/∂x` is probed numerically: each gate is
//! re-evaluated at its neighbor drive indices with the fast engine over
//! a local subcircuit against frozen boundary statistics — the same
//! copy-on-write fan-out `StatisticalGreedy` uses, one forked
//! [`SessionBranch`](crate::SessionBranch) per pool worker, so the pass
//! is bit-identical at every pool width. After each gradient step the
//! continuous sizes are rounded back to discrete cells
//! ([`round_to_library`](super::round_to_library)) and the one
//! authoritative [`TimingSession`] repairs itself with an incremental
//! [`refresh`](TimingSession::refresh) of only the changed cones.
//!
//! Unlike the greedy path heuristic, every gate — critical or not —
//! feels area pressure each iteration, and a final deterministic
//! area-recovery sweep downsizes anything the best objective can spare.
//! That global pressure is what puts this sizer on the good side of the
//! area-vs-`μ+3σ` frontier.

use super::{round_to_library, update_multipliers, Objective, Sizer, SizingOutcome, SizingPass};
use crate::config::SstaConfig;
use crate::engine::EngineKind;
use crate::fassta::Fassta;
use crate::pool::ScopedPool;
use crate::session::TimingSession;
use std::sync::Arc;
use std::time::Instant;
use vartol_liberty::Library;
use vartol_netlist::{GateId, GateKind, Netlist, Subcircuit};

/// Tuning knobs for [`LagrangianSizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct LagrangianConfig {
    /// What to minimize. Default: the paper's `μ + 3σ`.
    pub objective: Objective,
    /// Outer gradient/multiplier iterations.
    pub max_iters: usize,
    /// Subgradient step η for the multiplier updates.
    pub multiplier_step: f64,
    /// Scale of the continuous size step per iteration (in drive-index
    /// units after gradient normalization).
    pub size_step: f64,
    /// Timing target as a fraction of the initial worst endpoint cost:
    /// endpoints above `T` accumulate multiplier weight.
    pub target_factor: f64,
    /// Weight of the area term in the per-gate gradient.
    pub area_weight: f64,
    /// Run the final downsizing sweep that returns spare area.
    pub area_recovery: bool,
    /// Fraction of the objective gain the recovery sweep must keep:
    /// its budget is `initial − keep·(initial − best)`, so `1.0` trades
    /// nothing back and `0.8` spends a fifth of the win on area.
    pub recovery_keep_frac: f64,
    /// Neighborhood depth for sensitivity subcircuits.
    pub subcircuit_depth: usize,
    /// Timing/variation configuration shared with the session.
    pub ssta: SstaConfig,
}

impl Default for LagrangianConfig {
    fn default() -> Self {
        Self {
            objective: Objective::Statistical { alpha: 3.0 },
            max_iters: 64,
            multiplier_step: 1.0,
            size_step: 1.0,
            target_factor: 0.7,
            area_weight: 1.0,
            area_recovery: true,
            recovery_keep_frac: 0.9,
            subcircuit_depth: 2,
            ssta: SstaConfig::default(),
        }
    }
}

impl LagrangianConfig {
    /// Sets the objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Caps the outer iterations.
    #[must_use]
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Replaces the timing configuration.
    #[must_use]
    pub fn with_ssta(mut self, ssta: SstaConfig) -> Self {
        self.ssta = ssta;
        self
    }
}

/// Sensitivity-guided continuous sizer with per-endpoint multipliers.
///
/// See the module docs above for the algorithm. Holds its library
/// through a shared handle, like every sizer in the workspace.
#[derive(Debug, Clone)]
pub struct LagrangianSizer {
    library: Arc<Library>,
    config: LagrangianConfig,
}

/// Per-gate sensitivity probe result: `(∂D/∂size, ∂A/∂size)` central
/// differences in drive-index units, or `None` for fixed gates.
type Gradient = Option<(f64, f64)>;

impl LagrangianSizer {
    /// Creates a sizer over a library. Accepts an `Arc<Library>`, an
    /// owned `Library`, or a `&Library` (cloned once).
    #[must_use]
    pub fn new(library: impl Into<Arc<Library>>, config: LagrangianConfig) -> Self {
        Self {
            library: library.into(),
            config,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &LagrangianConfig {
        &self.config
    }

    /// For every gate, which endpoints it can reach — packed bitsets
    /// over the endpoint list, filled in one reverse-topological sweep
    /// (netlist node order is topological by construction).
    fn endpoint_reach(netlist: &Netlist, endpoints: &[GateId]) -> Vec<Vec<u64>> {
        let chunks = endpoints.len().div_ceil(64);
        let mut reach = vec![vec![0u64; chunks]; netlist.node_count()];
        for (bit, &e) in endpoints.iter().enumerate() {
            reach[e.index()][bit / 64] |= 1u64 << (bit % 64);
        }
        let ids: Vec<GateId> = netlist.gate_ids().collect();
        for &g in ids.iter().rev() {
            let mut acc = reach[g.index()].clone();
            for &f in netlist.gate(g).fanouts() {
                for (dst, &src) in acc.iter_mut().zip(&reach[f.index()]) {
                    *dst |= src;
                }
            }
            reach[g.index()] = acc;
        }
        reach
    }

    /// Probes `(∂D/∂size, ∂A/∂size)` for one gate on a frozen branch:
    /// the local objective is evaluated at the neighbor drive indices
    /// with the fast engine against the branch's pass-start boundary,
    /// then the trial resize is rolled back, so the result depends on
    /// nothing but the gate — the parallel fan-out contract.
    fn probe_gradient(
        &self,
        branch: &mut crate::branch::SessionBranch,
        g: GateId,
        fast: &Fassta<'_>,
    ) -> Gradient {
        let gate = branch.netlist().gate(g);
        let GateKind::Cell { function, size } = *gate.kind() else {
            return None;
        };
        let arity = gate.fanins().len();
        let group = self.library.group(function, arity)?;
        if group.len() <= 1 {
            return None;
        }
        let sub = Subcircuit::extract(branch.netlist(), g, self.config.subcircuit_depth);
        let local = |branch: &crate::branch::SessionBranch| {
            let outs = fast.evaluate_subcircuit(
                branch.netlist(),
                &sub,
                branch.base_arrivals(),
                branch.base_timing(),
            );
            self.config.objective.local_value(&outs)
        };
        let d_here = local(branch);
        let lo = size.checked_sub(1);
        let hi = (size + 1 < group.len()).then_some(size + 1);
        let d_lo = lo.map(|s| {
            branch.resize(g, s);
            local(branch)
        });
        let d_hi = hi.map(|s| {
            branch.resize(g, s);
            local(branch)
        });
        branch.resize(g, size); // trial state rolled back
        let area = |s: usize| group.cells()[s].area();
        let (dd, da) = match (lo, hi) {
            (Some(l), Some(h)) => (
                (d_hi.unwrap() - d_lo.unwrap()) / 2.0,
                (area(h) - area(l)) / 2.0,
            ),
            (Some(l), None) => (d_here - d_lo.unwrap(), area(size) - area(l)),
            (None, Some(h)) => (d_hi.unwrap() - d_here, area(h) - area(size)),
            (None, None) => return None,
        };
        Some((dd, da))
    }
}

impl Sizer for LagrangianSizer {
    fn name(&self) -> &'static str {
        "lagrangian"
    }

    /// Runs the relaxation. See the module docs above for the loop
    /// structure; determinism holds at any pool width because every
    /// parallel probe reads only frozen state and results join in gate
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the netlist references cells missing from the library.
    fn size(&self, netlist: &mut Netlist) -> SizingOutcome {
        let start = Instant::now();
        let objective = self.config.objective;
        let fast = Fassta::new(&self.library, &self.config.ssta);
        let mut session = TimingSession::with_kind(
            Arc::clone(&self.library),
            self.config.ssta.clone(),
            netlist.clone(),
            EngineKind::FullSsta,
        );
        let pool = ScopedPool::new(self.config.ssta.threads);

        let initial = session.circuit_moments();
        let initial_area = session.total_area();
        let endpoints: Vec<GateId> = session.netlist().outputs().to_vec();
        let reach = Self::endpoint_reach(session.netlist(), &endpoints);

        // Continuous relaxation state: x_g per resizable cell gate,
        // seeded at the current drive index.
        let mut probed: Vec<GateId> = Vec::new();
        let mut group_lens: Vec<usize> = Vec::new();
        for g in session.netlist().gate_ids() {
            let gate = session.netlist().gate(g);
            if let GateKind::Cell { function, .. } = *gate.kind() {
                let arity = gate.fanins().len();
                if let Some(group) = self.library.group(function, arity) {
                    if group.len() > 1 {
                        probed.push(g);
                        group_lens.push(group.len());
                    }
                }
            }
        }
        let mut x: Vec<f64> = probed
            .iter()
            .map(|&g| match *session.netlist().gate(g).kind() {
                GateKind::Cell { size, .. } => size as f64,
                _ => unreachable!("probed gates are cells"),
            })
            .collect();

        let endpoint_cost = |session: &TimingSession| -> Vec<f64> {
            endpoints
                .iter()
                .map(|&e| objective.value(session.arrival(e)))
                .collect()
        };

        let mut best_objective = objective.value(initial);
        let mut best_area = initial_area;
        let mut best_sizes = session.sizes();
        let mut passes: Vec<SizingPass> = Vec::new();

        // Target: demand a fixed relative improvement over the initial
        // worst endpoint. `scale` keeps multiplier updates dimensionless
        // (yield costs live in [−1, 0], statistical ones in time units).
        let initial_costs = endpoint_cost(&session);
        let worst0 = initial_costs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let scale = match objective {
            Objective::Statistical { .. } => worst0.abs().max(1e-9),
            Objective::Yield { .. } => 1.0,
        };
        let target = worst0 - (1.0 - self.config.target_factor) * scale;

        let mut lambdas = vec![1.0 / endpoints.len().max(1) as f64; endpoints.len()];
        let mut stalled = 0usize;
        for iter in 0..self.config.max_iters {
            // Multiplier step on the current per-endpoint violations.
            let costs = endpoint_cost(&session);
            let violations: Vec<f64> = costs.iter().map(|&c| (c - target) / scale).collect();
            lambdas = update_multipliers(&lambdas, &violations, self.config.multiplier_step);

            // Per-gate timing weight: total multiplier mass of the
            // endpoints this gate can reach.
            let weights: Vec<f64> = probed
                .iter()
                .map(|&g| {
                    let mut w = 0.0;
                    for (chunk, &bits) in reach[g.index()].iter().enumerate() {
                        let mut bits = bits;
                        while bits != 0 {
                            let bit = bits.trailing_zeros() as usize;
                            w += lambdas[chunk * 64 + bit];
                            bits &= bits - 1;
                        }
                    }
                    w
                })
                .collect();

            // Parallel sensitivity probes against the frozen pass-start
            // state: one COW branch per worker, one task per gate,
            // results in gate order.
            let grads = pool.map_init(
                probed.len(),
                || session.fork(),
                |branch, i| self.probe_gradient(branch, probed[i], &fast),
            );

            // Normalized gradient step on the continuous sizes.
            let full: Vec<f64> = grads
                .iter()
                .zip(&weights)
                .map(|(g, &w)| g.map_or(0.0, |(dd, da)| self.config.area_weight * da + w * dd))
                .collect();
            let norm = full.iter().map(|g| g.abs()).sum::<f64>() / full.len().max(1) as f64;
            let norm = norm.max(1e-12);
            let mut sizes = session.sizes();
            let mut resized = 0usize;
            for (i, &g) in probed.iter().enumerate() {
                let top = (group_lens[i] - 1) as f64;
                x[i] = (x[i] - self.config.size_step * full[i] / norm).clamp(0.0, top);
                let rounded = round_to_library(x[i], group_lens[i]);
                if sizes[g.index()] != rounded {
                    sizes[g.index()] = rounded;
                    resized += 1;
                }
            }

            // Apply the rounded schedule; the session repairs itself by
            // refreshing only the changed fanout cones.
            session
                .try_restore_sizes(&sizes)
                .expect("rounded sizes are within each gate's ladder");
            let moments = session.refresh();
            let value = objective.value(moments);
            let area = session.total_area();
            passes.push(SizingPass {
                pass: iter + 1,
                moments,
                objective: value,
                area,
                resized,
            });

            // Keep-best guard: the relaxation may overshoot while the
            // multipliers settle; only strictly better (objective, then
            // area) states are remembered.
            let tol = 1e-12 * best_objective.abs().max(1.0);
            if value < best_objective - tol
                || (value <= best_objective + tol && area < best_area - 1e-12)
            {
                best_objective = best_objective.min(value);
                best_area = area;
                best_sizes = session.sizes();
            }
            if resized == 0 {
                stalled += 1;
                if stalled >= 2 {
                    break;
                }
            } else {
                stalled = 0;
            }
        }

        // Land on the best state seen, then return any area the
        // objective can spare: a deterministic sinks-first downsizing
        // sweep, each trial an incremental cone refresh.
        session
            .try_restore_sizes(&best_sizes)
            .expect("best sizes came from this session");
        session.refresh();
        if self.config.area_recovery {
            let initial_objective = objective.value(initial);
            let gain = (initial_objective - best_objective).max(0.0);
            let keep = self.config.recovery_keep_frac.clamp(0.0, 1.0);
            let budget =
                best_objective + (1.0 - keep) * gain + 1e-9 * best_objective.abs().max(1.0);
            // Sinks-first sweeps to a fixpoint: freeing one gate can
            // unlock slack upstream, so keep sweeping until a full pass
            // changes nothing (bounded by the total size mass).
            let mut polished = 0usize;
            loop {
                let mut changed = false;
                for &g in probed.iter().rev() {
                    let current = session.sizes()[g.index()];
                    let mut kept = current;
                    for size in (0..current).rev() {
                        session.resize(g, size);
                        let m = session.refresh();
                        if objective.value(m) <= budget {
                            kept = size;
                        } else {
                            break;
                        }
                    }
                    session.resize(g, kept);
                    session.refresh();
                    if kept != current {
                        polished += 1;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if polished > 0 {
                let moments = session.circuit_moments();
                passes.push(SizingPass {
                    pass: passes.len() + 1,
                    moments,
                    objective: objective.value(moments),
                    area: session.total_area(),
                    resized: polished,
                });
            }
        }

        let final_moments = session.circuit_moments();
        let final_area = session.total_area();
        *netlist = session.into_netlist();
        SizingOutcome {
            optimizer: self.name(),
            objective,
            initial_moments: initial,
            final_moments,
            initial_area,
            final_area,
            passes,
            runtime: start.elapsed(),
        }
    }
}
