//! Global sizing optimizers behind a shared [`Sizer`] trait.
//!
//! [`StatisticalGreedy`](../../vartol_core/struct.StatisticalGreedy.html)
//! reproduces the paper's single-path heuristic; this module adds the
//! global methods the ROADMAP asked for, all speaking the same
//! [`SizingOutcome`] vocabulary so they can be swept side by side on a
//! quality/runtime frontier:
//!
//! * [`LagrangianSizer`] — sensitivity-guided continuous sizing with
//!   per-endpoint Lagrange multipliers, rounded back to discrete cells
//!   and repaired via incremental [`TimingSession::refresh`].
//! * [`AnnealingSizer`] — a deterministic multi-start simulated
//!   annealing wrapper whose restart population fans out over
//!   copy-on-write [`SessionBranch`]es and commits the winning branch
//!   with [`TimingSession::commit`] (zero recompute).
//!
//! Both support a yield-targeted [`Objective::Yield`] mode that
//! maximizes `P(delay ≤ deadline)` under the correlated variation model
//! instead of the nominal `μ + α·σ` cost.
//!
//! Every optimizer is bit-identical at any [`ScopedPool`] width; the
//! determinism argument is the same one the rest of the crate makes:
//! work units are scored independently against frozen state and joined
//! in a fixed order.
//!
//! [`TimingSession::refresh`]: crate::TimingSession::refresh
//! [`TimingSession::commit`]: crate::TimingSession::commit
//! [`SessionBranch`]: crate::SessionBranch
//! [`ScopedPool`]: crate::ScopedPool

mod annealing;
mod lagrangian;

pub use annealing::{AnnealingConfig, AnnealingSizer};
pub use lagrangian::{LagrangianConfig, LagrangianSizer};

use std::time::Duration;
use vartol_netlist::Netlist;
use vartol_stats::{Moments, Normal};

/// What a sizing run is minimizing.
///
/// Objective values are always *lower is better*, so a yield target is
/// expressed as the negated success probability.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// The paper's statistical cost `μ + α·σ` of the circuit delay.
    Statistical {
        /// Sigma weight (`α = 3` reproduces the paper's `μ + 3σ`).
        alpha: f64,
    },
    /// Negated timing yield `−P(delay ≤ deadline)` under the session's
    /// variation model — optimizing σ/`prob_met` directly instead of a
    /// nominal corner.
    Yield {
        /// Required arrival deadline (same time unit as the library).
        deadline: f64,
    },
}

impl Objective {
    /// The objective value of circuit-delay moments (lower is better).
    #[must_use]
    pub fn value(&self, m: Moments) -> f64 {
        match *self {
            Self::Statistical { alpha } => m.cost(alpha),
            Self::Yield { deadline } => -prob_met(m, deadline),
        }
    }

    /// A local proxy for subcircuit sensitivity probing. A subcircuit
    /// output is not the circuit delay, so a yield deadline does not
    /// apply to it directly; both modes fall back to a `μ + 3σ` corner,
    /// which points downhill for yield too (smaller mean *and* spread
    /// both raise `P(delay ≤ deadline)`).
    #[must_use]
    pub fn local_value(&self, outs: &[Moments]) -> f64 {
        let alpha = match *self {
            Self::Statistical { alpha } => alpha,
            Self::Yield { .. } => 3.0,
        };
        outs.iter()
            .map(|m| m.cost(alpha))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Short label used in reports and frontier rows.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Statistical { .. } => "statistical",
            Self::Yield { .. } => "yield",
        }
    }
}

/// `P(delay ≤ deadline)` for Gaussian circuit-delay moments, with the
/// degenerate σ = 0 case handled as a step function.
#[must_use]
pub fn prob_met(m: Moments, deadline: f64) -> f64 {
    let sigma = m.std();
    if sigma <= 1e-12 {
        return if m.mean <= deadline { 1.0 } else { 0.0 };
    }
    Normal::from_moments(m).cdf(deadline)
}

/// One outer pass (or annealing restart) of a sizing run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SizingPass {
    /// 1-based pass (or restart) index.
    pub pass: usize,
    /// Circuit-delay moments at the end of the pass.
    pub moments: Moments,
    /// Objective value at the end of the pass (lower is better).
    pub objective: f64,
    /// Total area at the end of the pass.
    pub area: f64,
    /// Gates whose size changed during the pass.
    pub resized: usize,
}

/// Summary of one optimizer run — the shared vocabulary every [`Sizer`]
/// speaks, whatever its internal search strategy.
///
/// `PartialEq` ignores the wall-clock `runtime`, so outcomes can be
/// compared bit-for-bit across pool widths.
#[derive(Debug, Clone)]
pub struct SizingOutcome {
    /// Optimizer name (e.g. `"lagrangian"`).
    pub optimizer: &'static str,
    /// What the run minimized.
    pub objective: Objective,
    /// Circuit-delay moments before sizing.
    pub initial_moments: Moments,
    /// Circuit-delay moments after sizing.
    pub final_moments: Moments,
    /// Total area before sizing.
    pub initial_area: f64,
    /// Total area after sizing.
    pub final_area: f64,
    /// Per-pass (or per-restart) progress rows.
    pub passes: Vec<SizingPass>,
    /// Wall-clock time of the run (ignored by `PartialEq`).
    pub runtime: Duration,
}

impl SizingOutcome {
    /// Objective value before sizing.
    #[must_use]
    pub fn initial_objective(&self) -> f64 {
        self.objective.value(self.initial_moments)
    }

    /// Objective value after sizing.
    #[must_use]
    pub fn final_objective(&self) -> f64 {
        self.objective.value(self.final_moments)
    }

    /// Gates resized across all passes.
    #[must_use]
    pub fn total_resized(&self) -> usize {
        self.passes.iter().map(|p| p.resized).sum()
    }
}

impl PartialEq for SizingOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.optimizer == other.optimizer
            && self.objective == other.objective
            && self.initial_moments == other.initial_moments
            && self.final_moments == other.final_moments
            && self.initial_area == other.initial_area
            && self.final_area == other.final_area
            && self.passes == other.passes
    }
}

/// A global gate-sizing method.
///
/// Implementors mutate the netlist's size assignment in place and
/// report what happened. The contract every implementation upholds:
/// deterministic (bit-identical results at any pool width, any thread
/// count) and never worse than the starting point on its own objective.
pub trait Sizer {
    /// Short stable name used in frontier rows and wire payloads.
    fn name(&self) -> &'static str;

    /// Optimizes the size assignment of a combinational netlist (or a
    /// netlist whose timing endpoints are already marked as outputs).
    fn size(&self, netlist: &mut Netlist) -> SizingOutcome;

    /// Clock-aware entry point: on a sequential netlist, optimizes the
    /// endpoint-marked view ([`Netlist::endpoint_marked`]) so register D
    /// pins count as timing endpoints, then copies the sizes back. On a
    /// combinational netlist this is exactly [`Sizer::size`].
    fn size_clocked(&self, netlist: &mut Netlist) -> SizingOutcome {
        if !netlist.is_sequential() {
            return self.size(netlist);
        }
        let mut marked = netlist.endpoint_marked();
        let outcome = self.size(&mut marked);
        netlist.restore_sizes(&marked.sizes());
        outcome
    }
}

/// Selector for the optimizer behind a sizing request — the value the
/// `Workspace` and the wire protocol thread through to pick a [`Sizer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OptimizerKind {
    /// The paper's statistical greedy (`StatisticalGreedy`). Default.
    #[default]
    Greedy,
    /// Deterministic mean-delay baseline (`MeanDelaySizer`).
    MeanDelay,
    /// Lagrangian-relaxation / sensitivity-guided sizing.
    Lagrangian,
    /// Deterministic multi-start simulated annealing.
    Annealing,
}

impl OptimizerKind {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::MeanDelay => "mean_delay",
            Self::Lagrangian => "lagrangian",
            Self::Annealing => "annealing",
        }
    }

    /// Parses a wire name; `None` for anything unrecognized.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "greedy" => Some(Self::Greedy),
            "mean_delay" => Some(Self::MeanDelay),
            "lagrangian" => Some(Self::Lagrangian),
            "annealing" => Some(Self::Annealing),
            _ => None,
        }
    }

    /// All selectable kinds, in wire-name order.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [
            Self::Greedy,
            Self::MeanDelay,
            Self::Lagrangian,
            Self::Annealing,
        ]
    }
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Projected-subgradient multiplier update: `λ ← max(0, λ + step·v)`
/// elementwise. Positive violations (endpoint cost above target) raise
/// the endpoint's multiplier, satisfied endpoints decay toward zero and
/// are projected onto the non-negative orthant — the invariant the
/// KKT proptests pin down.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn update_multipliers(lambdas: &[f64], violations: &[f64], step: f64) -> Vec<f64> {
    assert_eq!(
        lambdas.len(),
        violations.len(),
        "one violation per multiplier"
    );
    lambdas
        .iter()
        .zip(violations)
        .map(|(&l, &v)| (l + step * v).max(0.0))
        .collect()
}

/// Rounds a continuous size to the nearest discrete drive index of a
/// size ladder with `group_len` cells, clamping to `[0, group_len)`.
/// Non-finite inputs clamp to the nearest bound (NaN rounds to 0).
///
/// # Panics
///
/// Panics if the ladder is empty.
#[must_use]
pub fn round_to_library(x: f64, group_len: usize) -> usize {
    assert!(group_len > 0, "a size ladder has at least one cell");
    let top = (group_len - 1) as f64;
    let clamped = if x.is_nan() { 0.0 } else { x.clamp(0.0, top) };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = clamped.round() as usize;
    idx.min(group_len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_values_point_the_same_way() {
        let fast = Moments::from_mean_std(10.0, 1.0);
        let slow = Moments::from_mean_std(12.0, 1.0);
        let stat = Objective::Statistical { alpha: 3.0 };
        let yld = Objective::Yield { deadline: 11.0 };
        assert!(stat.value(fast) < stat.value(slow));
        assert!(yld.value(fast) < yld.value(slow));
        assert!((stat.value(fast) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn yield_objective_is_negated_probability() {
        let m = Moments::from_mean_std(10.0, 1.0);
        let v = Objective::Yield { deadline: 10.0 }.value(m);
        assert!((v + 0.5).abs() < 1e-9, "deadline at the mean: −50%");
        let sure = Moments::from_mean_std(10.0, 0.0);
        assert!((Objective::Yield { deadline: 10.0 }.value(sure) + 1.0).abs() < 1e-12);
        assert!(Objective::Yield { deadline: 9.0 }.value(sure).abs() < 1e-12);
    }

    #[test]
    fn multiplier_update_projects_and_decays() {
        let next = update_multipliers(&[0.5, 0.0, 0.25], &[1.0, -1.0, -0.1], 0.5);
        assert_eq!(next, vec![1.0, 0.0, 0.2]);
    }

    #[test]
    fn rounding_clamps_to_the_ladder() {
        assert_eq!(round_to_library(-3.0, 4), 0);
        assert_eq!(round_to_library(1.4, 4), 1);
        assert_eq!(round_to_library(1.6, 4), 2);
        assert_eq!(round_to_library(99.0, 4), 3);
        assert_eq!(round_to_library(f64::NAN, 4), 0);
        assert_eq!(round_to_library(f64::INFINITY, 1), 0);
    }

    #[test]
    fn optimizer_kind_round_trips_wire_names() {
        for kind in OptimizerKind::all() {
            assert_eq!(OptimizerKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(OptimizerKind::parse("gradient"), None);
        assert_eq!(OptimizerKind::default(), OptimizerKind::Greedy);
    }
}
