//! Stable fingerprints for cache keys — the primitive behind
//! cross-request result caching in the service layer.
//!
//! A warm-cache timing service needs to answer "is this exactly the
//! query I already computed?" without holding the full query around.
//! Three ingredients identify an analysis result completely:
//!
//! 1. the **circuit** (structure is immutable after registration, so
//!    its name suffices),
//! 2. the **size vector** — the only mutable state of a registered
//!    circuit ([`size_fingerprint`]),
//! 3. the **engine configuration** — PDF resolution, variation model,
//!    correlation handling, slews and loads
//!    ([`config_fingerprint`]).
//!
//! The fingerprints are 64-bit [FNV-1a] hashes over a canonical byte
//! encoding, so they are **stable across runs, platforms, and
//! processes** (unlike `std::hash`, whose hasher is unspecified and, for
//! `HashMap`, randomly seeded). Two configurations that compare equal
//! modulo wall-clock knobs always fingerprint equal; any change to a
//! field that can affect results changes the fingerprint with
//! overwhelming probability.
//!
//! [`config_fingerprint`] deliberately **excludes
//! [`SstaConfig::threads`]**: the worker-pool width is a pure speed knob
//! — every engine is bit-identical at every width — so two services
//! running the same model at different pool widths must share cache
//! identity. That exclusion is what lets the service's determinism
//! contract ("byte-identical answers at every shard/pool width") extend
//! to its cache.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/
//!
//! # Example
//!
//! ```
//! use vartol_ssta::fingerprint::{config_fingerprint, size_fingerprint};
//! use vartol_ssta::SstaConfig;
//!
//! let a = SstaConfig::default().with_threads(1);
//! let b = SstaConfig::default().with_threads(8);
//! assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
//!
//! let c = SstaConfig::default().with_pdf_samples(15);
//! assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
//!
//! assert_ne!(size_fingerprint(&[0, 1, 2]), size_fingerprint(&[0, 2, 1]));
//! ```

use crate::config::SstaConfig;
use serde::{Serialize, Value};

/// A 64-bit [FNV-1a](self) streaming hasher with a stable, documented
/// algorithm — the workspace-wide primitive for cache keys.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the standard FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Feeds one `f64` into the hash via its IEEE-754 bit pattern, so
    /// `0.0` and `-0.0` fingerprint differently and every NaN payload is
    /// distinguished — bit-identity is exactly the service's contract.
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// The final hash value.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprints a raw byte string.
#[must_use]
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Fingerprints a netlist size vector (gate index order). Primary
/// inputs carry no size and are encoded by their fixed sentinel in
/// [`vartol_netlist::Netlist::sizes`], so the vector identifies the
/// complete mutable state of a registered circuit.
#[must_use]
pub fn size_fingerprint(sizes: &[usize]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(sizes.len() as u64);
    for &s in sizes {
        h.write_u64(s as u64);
    }
    h.finish()
}

/// Fingerprints everything in an [`SstaConfig`] that can affect a
/// result — PDF resolution, both variation models, slews, loads, and
/// the correlation mode — while **excluding** the `threads` pool-width
/// knob (see the [module docs](self)).
#[must_use]
pub fn config_fingerprint(config: &SstaConfig) -> u64 {
    let Value::Object(fields) = config.to_value() else {
        unreachable!("SstaConfig serializes as an object");
    };
    let mut h = Fnv64::new();
    for (name, value) in &fields {
        if name == "threads" {
            continue;
        }
        h.write(name.as_bytes());
        hash_value(value, &mut h);
    }
    h.finish()
}

/// Hashes a serialized [`Value`] tree with an unambiguous tagged
/// encoding (every node contributes a type tag, every composite its
/// length), so structurally different trees cannot collide by
/// concatenation accidents.
fn hash_value(value: &Value, h: &mut Fnv64) {
    match value {
        Value::Null => h.write(b"n"),
        Value::Bool(b) => {
            h.write(b"b");
            h.write(&[u8::from(*b)]);
        }
        Value::Number(x) => {
            h.write(b"d");
            h.write_f64(*x);
        }
        Value::String(s) => {
            h.write(b"s");
            h.write_u64(s.len() as u64);
            h.write(s.as_bytes());
        }
        Value::Array(items) => {
            h.write(b"a");
            h.write_u64(items.len() as u64);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Object(fields) => {
            h.write(b"o");
            h.write_u64(fields.len() as u64);
            for (name, item) in fields {
                h.write_u64(name.len() as u64);
                h.write(name.as_bytes());
                hash_value(item, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fingerprint_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn size_fingerprint_is_order_and_length_sensitive() {
        assert_ne!(size_fingerprint(&[1, 2]), size_fingerprint(&[2, 1]));
        assert_ne!(size_fingerprint(&[1]), size_fingerprint(&[1, 0]));
        assert_eq!(size_fingerprint(&[3, 1, 4]), size_fingerprint(&[3, 1, 4]));
        // A trailing zero must not be absorbed by an empty tail.
        assert_ne!(size_fingerprint(&[]), size_fingerprint(&[0]));
    }

    #[test]
    fn config_fingerprint_ignores_threads_only() {
        let base = SstaConfig::default();
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&base.clone().with_threads(16)),
            "pool width is a speed knob, not a result knob"
        );
        let changed = [
            base.clone().with_pdf_samples(15),
            base.clone()
                .with_correlation(crate::CorrelationMode::Independent),
            base.clone()
                .with_model(variation::VariationModel::die_to_die(0.5)),
            base.clone()
                .with_variation(vartol_liberty::VariationModel::new(0.1, 0.5, 1.0)),
        ];
        for c in &changed {
            assert_ne!(
                config_fingerprint(&base),
                config_fingerprint(c),
                "result-affecting field must move the fingerprint: {c:?}"
            );
        }
    }

    #[test]
    fn config_fingerprint_is_stable_across_calls() {
        let c = SstaConfig::default().with_model(variation::VariationModel::die_to_die(0.3));
        assert_eq!(config_fingerprint(&c), config_fingerprint(&c));
    }

    #[test]
    fn value_hash_distinguishes_shapes() {
        let mut a = Fnv64::new();
        hash_value(&Value::Array(vec![Value::Number(1.0)]), &mut a);
        let mut b = Fnv64::new();
        hash_value(&Value::Number(1.0), &mut b);
        assert_ne!(a.finish(), b.finish());

        let mut zero = Fnv64::new();
        hash_value(&Value::Number(0.0), &mut zero);
        let mut neg_zero = Fnv64::new();
        hash_value(&Value::Number(-0.0), &mut neg_zero);
        assert_ne!(zero.finish(), neg_zero.finish(), "bit-level identity");
    }
}
