//! Statistical gate criticality.
//!
//! The probability that a gate lies on *the* critical path of a
//! manufactured die. Hashimoto & Onodera (ISPD'00 — the paper's reference
//! \[5\]) optimize using such criticalities; the paper contrasts its
//! WNSS-path approach against them but both views are useful: criticality
//! is the natural per-gate "how much does this gate matter" metric, and it
//! complements the single-path tracer when reporting results.
//!
//! The owned-handle session exposes this analysis directly:
//! [`TimingSession::criticality`](crate::TimingSession::criticality)
//! computes it from the session's refreshed arrivals, which is how the
//! `vartol::workspace` service answers criticality-ranking queries.
//!
//! Computation: backward propagation of path probability. A primary
//! output's criticality is the probability it realizes the circuit max;
//! a node's criticality is the sum over its fanouts of the fanout's
//! criticality times the probability this node supplies the fanout's
//! latest input. Win probabilities come from Clark tightness values over
//! the stored arrival moments (independence across siblings assumed, as in
//! the fast engine).

use crate::config::SstaConfig;
use vartol_liberty::Library;
use vartol_netlist::{GateId, Netlist};
use vartol_stats::clark::clark_max;
use vartol_stats::Moments;

/// Per-node criticality: the probability of lying on the statistically
/// critical path.
///
/// # Example
///
/// ```
/// use vartol_liberty::Library;
/// use vartol_netlist::generators::ripple_carry_adder;
/// use vartol_ssta::{Criticality, FullSsta, SstaConfig};
///
/// let lib = Library::synthetic_90nm();
/// let n = ripple_carry_adder(8, &lib);
/// let config = SstaConfig::default();
/// let analysis = FullSsta::new(&lib, &config).analyze(&n);
/// let crit = Criticality::compute(&n, &lib, &config, analysis.arrivals());
/// // Probabilities are well-formed.
/// for id in n.node_ids() {
///     assert!((0.0..=1.0 + 1e-9).contains(&crit.of(id)));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Criticality {
    values: Vec<f64>,
}

impl Criticality {
    /// Computes criticalities from stored arrival moments.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals.len() != netlist.node_count()`.
    #[must_use]
    pub fn compute(
        netlist: &Netlist,
        library: &Library,
        config: &SstaConfig,
        arrivals: &[Moments],
    ) -> Self {
        assert_eq!(
            arrivals.len(),
            netlist.node_count(),
            "arrival vector must cover every node"
        );
        let _ = (library, config); // reserved for arc-delay-aware refinement
        let n = netlist.node_count();
        let mut crit = vec![0.0f64; n];

        // Seed: each primary output wins the circuit max with its win
        // probability among all outputs.
        let output_arrivals: Vec<Moments> = netlist
            .outputs()
            .iter()
            .map(|&o| arrivals[o.index()])
            .collect();
        for (k, &o) in netlist.outputs().iter().enumerate() {
            crit[o.index()] += win_probability(&output_arrivals, k);
        }

        // Backward: distribute each gate's criticality over its fanins.
        let ids: Vec<GateId> = netlist.node_ids().collect();
        for &id in ids.iter().rev() {
            let g = netlist.gate(id);
            if g.is_input() || crit[id.index()] == 0.0 {
                continue;
            }
            let fanin_arrivals: Vec<Moments> =
                g.fanins().iter().map(|f| arrivals[f.index()]).collect();
            for (k, &f) in g.fanins().iter().enumerate() {
                crit[f.index()] += crit[id.index()] * win_probability(&fanin_arrivals, k);
            }
        }

        Self { values: crit }
    }

    /// The criticality of one node.
    #[must_use]
    pub fn of(&self, id: GateId) -> f64 {
        self.values[id.index()]
    }

    /// All criticalities, indexed by [`GateId::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Nodes sorted by descending criticality — an alternative
    /// optimization frontier to the WNSS path.
    #[must_use]
    pub fn ranking(&self) -> Vec<GateId> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&a, &b| self.values[b].total_cmp(&self.values[a]));
        idx.into_iter().map(GateId::from_index).collect()
    }
}

/// Probability that `inputs[k]` is the largest of `inputs` (independent
/// normals): fold everything else with Clark, then take the tightness of
/// the pairwise max against the candidate. Exact for two inputs.
fn win_probability(inputs: &[Moments], k: usize) -> f64 {
    if inputs.len() == 1 {
        return 1.0;
    }
    let mut others: Option<Moments> = None;
    for (i, &m) in inputs.iter().enumerate() {
        if i == k {
            continue;
        }
        others = Some(match others {
            None => m,
            Some(acc) => clark_max(acc, m).max,
        });
    }
    let others = others.expect("at least one other input");
    clark_max(inputs[k], others).tightness_a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullssta::FullSsta;
    use vartol_liberty::LogicFunction;
    use vartol_netlist::generators::ripple_carry_adder;
    use vartol_netlist::NetlistBuilder;

    fn criticality_of(netlist: &Netlist) -> Criticality {
        let lib = Library::synthetic_90nm();
        let config = SstaConfig::default();
        let analysis = FullSsta::new(&lib, &config).analyze(netlist);
        Criticality::compute(netlist, &lib, &config, analysis.arrivals())
    }

    #[test]
    fn chain_is_fully_critical() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let g0 = b.gate("g0", LogicFunction::Inv, &[a]);
        let g1 = b.gate("g1", LogicFunction::Inv, &[g0]);
        b.mark_output(g1);
        let n = b.build().expect("valid");
        let c = criticality_of(&n);
        assert!((c.of(g0) - 1.0).abs() < 1e-9);
        assert!((c.of(g1) - 1.0).abs() < 1e-9);
        assert!((c.of(a) - 1.0).abs() < 1e-9, "the PI feeds the only path");
    }

    #[test]
    fn symmetric_fork_splits_criticality() {
        let mut b = NetlistBuilder::new("fork");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let g1 = b.gate("g1", LogicFunction::Inv, &[i1]);
        let g2 = b.gate("g2", LogicFunction::Inv, &[i2]);
        let join = b.gate("join", LogicFunction::Nand, &[g1, g2]);
        b.mark_output(join);
        let n = b.build().expect("valid");
        let c = criticality_of(&n);
        assert!((c.of(join) - 1.0).abs() < 1e-9);
        // Identical branches: each wins with probability one half.
        assert!((c.of(g1) - 0.5).abs() < 0.05, "got {}", c.of(g1));
        assert!((c.of(g2) - 0.5).abs() < 0.05, "got {}", c.of(g2));
        assert!(
            (c.of(g1) + c.of(g2) - 1.0).abs() < 1e-9,
            "probability conserved"
        );
    }

    #[test]
    fn dominant_branch_takes_all() {
        // One branch is three gates deep, the other one gate: the deep
        // branch arrives much later and absorbs the criticality.
        let mut b = NetlistBuilder::new("skew");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let d1 = b.gate("d1", LogicFunction::Inv, &[i1]);
        let d2 = b.gate("d2", LogicFunction::Inv, &[d1]);
        let d3 = b.gate("d3", LogicFunction::Inv, &[d2]);
        let s1 = b.gate("s1", LogicFunction::Inv, &[i2]);
        let join = b.gate("join", LogicFunction::Nand, &[d3, s1]);
        b.mark_output(join);
        let n = b.build().expect("valid");
        let c = criticality_of(&n);
        assert!(c.of(d3) > 0.9, "deep branch critical: {}", c.of(d3));
        assert!(c.of(s1) < 0.1, "shallow branch not: {}", c.of(s1));
    }

    #[test]
    fn criticality_conserved_across_levels_of_a_tree() {
        // In a balanced XOR tree every level's criticalities sum to 1.
        let lib = Library::synthetic_90nm();
        let n = vartol_netlist::generators::parity_tree(16, &lib);
        let c = criticality_of(&n);
        let levels = n.levels();
        let depth = n.depth();
        for level in 1..=depth {
            let total: f64 = n
                .gate_ids()
                .filter(|id| levels[id.index()] == level)
                .map(|id| c.of(id))
                .sum();
            assert!(
                (total - 1.0).abs() < 0.05,
                "level {level} criticality sums to {total}"
            );
        }
    }

    #[test]
    fn ranking_puts_critical_gates_first() {
        let lib = Library::synthetic_90nm();
        let n = ripple_carry_adder(8, &lib);
        let c = criticality_of(&n);
        let ranking = c.ranking();
        // Ranking is sorted by descending criticality.
        for w in ranking.windows(2) {
            assert!(c.of(w[0]) >= c.of(w[1]));
        }
        // The top-ranked node is meaningfully critical.
        assert!(c.of(ranking[0]) > 0.5);
    }
}
