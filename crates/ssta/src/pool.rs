//! A minimal scoped-thread worker pool for deterministic fan-out.
//!
//! `std`-only (no rayon in the offline shims environment): a
//! [`ScopedPool`] runs `tasks` independent jobs — identified by their
//! index — across up to `threads` scoped worker threads that pull indices
//! from a shared atomic counter, and returns the results **ordered by task
//! index**, regardless of which worker computed what or in which order
//! workers finished.
//!
//! That index-ordered contract is what the parallel Monte-Carlo engine
//! builds its determinism guarantee on: each task derives everything it
//! needs (its RNG stream, its sample range) from the task index alone, so
//! the gathered result vector — and anything folded over it in index
//! order — is bit-identical for 1 thread and N threads.
//!
//! # Spawn cost and amortization
//!
//! Workers are *scoped threads spawned per `map` call*, not a resident
//! pool — that is what lets borrowed data flow into jobs with no `Arc`
//! or channel plumbing, but it prices every call at a few tens of
//! microseconds of spawn/join overhead. Callers with many small
//! batches must amortize: either batch the work (the Monte-Carlo
//! engine maps over a handful of large sample chunks, not one task per
//! sample) or gate the call on a task-count threshold and run small
//! batches inline on the calling thread. The level-ordered propagation
//! arena does the latter — a per-level fan-out only pays for spawns
//! when the level holds at least `PARALLEL_LEVEL_MIN` work items
//! (see `state.rs`), so narrow circuits like c17 never spawn at all,
//! at any configured width. The `analytic_parallel` group in
//! `crates/bench/benches/ssta_engines.rs` tracks both sides of that
//! trade.
//!
//! # Example
//!
//! ```
//! use vartol_ssta::pool::ScopedPool;
//!
//! let serial = ScopedPool::new(1).map(8, |i| i * i);
//! let parallel = ScopedPool::new(4).map(8, |i| i * i);
//! assert_eq!(serial, parallel);
//! assert_eq!(serial, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width pool of scoped worker threads.
///
/// Cheap to construct; threads are spawned per [`ScopedPool::map`] call
/// (via [`std::thread::scope`]) and joined before it returns, so borrowed
/// data can flow into the job closure freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopedPool {
    threads: usize,
}

impl ScopedPool {
    /// Creates a pool with the given width. `0` means "one worker per
    /// available CPU" (`std::thread::available_parallelism`).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        Self { threads }
    }

    /// The resolved worker count (never zero).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for every `i in 0..tasks` and returns the results in
    /// task-index order. Runs inline on the calling thread when the pool
    /// is single-width or there is at most one task.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (after joining the other workers).
    pub fn map<T, F>(&self, tasks: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_init(tasks, || (), move |(), i| job(i))
    }

    /// Like [`ScopedPool::map`], but every worker builds one reusable
    /// scratch state with `init` before pulling task indices, and `job`
    /// receives `&mut` access to its worker's state alongside the index.
    ///
    /// This is the amortization hook for jobs that need an expensive
    /// mutable workspace (the optimizer's speculative netlist forks): the
    /// workspace is built once per worker, not once per task.
    ///
    /// Determinism contract: the result of `job(state, i)` must depend
    /// only on `i` (and on data captured by the closures) — never on
    /// which worker ran it or on what that worker ran before. In
    /// practice, `job` must leave `state` observationally unchanged
    /// (e.g. roll back every trial mutation) before returning. Under that
    /// contract the returned vector is bit-identical for every pool
    /// width, exactly like [`ScopedPool::map`].
    ///
    /// # Panics
    ///
    /// Propagates a panic from any `init` or `job` call (after joining
    /// the other workers).
    pub fn map_init<S, T, I, F>(&self, tasks: usize, init: I, job: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(tasks);
        if workers <= 1 {
            let mut state = init();
            return (0..tasks).map(|i| job(&mut state, i)).collect();
        }

        let next = AtomicUsize::new(0);
        let init = &init;
        let job = &job;
        let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut state = init();
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            done.push((i, job(&mut state, i)));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        let mut out: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        for (i, v) in buckets.into_iter().flatten() {
            out[i] = Some(v);
        }
        out.into_iter()
            .map(|slot| slot.expect("every task index produced exactly one result"))
            .collect()
    }

    /// Distributes **owned** work items across the pool: runs
    /// `job(i, items[i])` for every item, handing each item to whichever
    /// worker pulls its index, and returns results in item order. This is
    /// the fan-out primitive for jobs that need `&mut` (or by-value)
    /// access to per-task state — e.g. one mutable circuit session per
    /// task — which the shared-closure [`ScopedPool::map`] cannot grant.
    ///
    /// Determinism contract: identical to [`ScopedPool::map`] — the
    /// result of `job(i, item)` must depend only on `(i, item)` and
    /// captured data, never on the worker or its history; under that
    /// contract the returned vector is bit-identical for every pool
    /// width.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (after joining the other
    /// workers).
    pub fn map_items<T, U, F>(&self, items: Vec<T>, job: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let tasks = items.len();
        // Hand-off slots: worker `i` takes item `i` exactly once, so the
        // per-slot locks are never contended.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.map(tasks, |i| {
            let item = slots[i]
                .lock()
                .expect("hand-off slots are never poisoned")
                .take()
                .expect("each item index is pulled exactly once");
            job(i, item)
        })
    }
}

impl Default for ScopedPool {
    /// One worker per available CPU.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_width_resolves_to_available_parallelism() {
        assert!(ScopedPool::new(0).threads() >= 1);
        assert_eq!(ScopedPool::default(), ScopedPool::new(0));
    }

    #[test]
    fn explicit_width_is_kept() {
        assert_eq!(ScopedPool::new(3).threads(), 3);
    }

    #[test]
    fn results_are_index_ordered_for_all_widths() {
        let expected: Vec<usize> = (0..100).map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ScopedPool::new(threads).map(100, |i| i * 7 + 1);
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_single_task_work() {
        assert_eq!(ScopedPool::new(8).map(0, |i| i), Vec::<usize>::new());
        assert_eq!(ScopedPool::new(8).map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let out = ScopedPool::new(4).map(1000, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn borrowed_data_flows_into_jobs() {
        let data: Vec<f64> = (0..64).map(f64::from).collect();
        let sums = ScopedPool::new(4).map(8, |i| data[i * 8..(i + 1) * 8].iter().sum::<f64>());
        assert_eq!(sums.iter().sum::<f64>(), data.iter().sum::<f64>());
    }

    #[test]
    fn map_init_results_are_index_ordered_for_all_widths() {
        // A per-worker scratch buffer, mutated and rolled back per task —
        // the optimizer-fork usage pattern.
        let expected: Vec<usize> = (0..200).map(|i| i * 3 + 5).collect();
        for threads in [1, 2, 3, 8] {
            let inits = AtomicUsize::new(0);
            let got = ScopedPool::new(threads).map_init(
                200,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    vec![0usize; 4]
                },
                |scratch, i| {
                    scratch[i % 4] = i; // trial mutation
                    let r = scratch[i % 4] * 3 + 5;
                    scratch[i % 4] = 0; // rolled back
                    r
                },
            );
            assert_eq!(got, expected, "{threads} threads");
            assert!(
                inits.load(Ordering::Relaxed) <= threads.max(1),
                "at most one init per worker"
            );
        }
    }

    #[test]
    fn map_init_zero_tasks_never_calls_init() {
        let inits = AtomicUsize::new(0);
        let out = ScopedPool::new(4).map_init(
            0,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), i| i,
        );
        assert!(out.is_empty());
        assert_eq!(inits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn map_items_moves_each_item_exactly_once_in_order() {
        // Items are owned (non-Clone wrapper) and results must come back
        // in item order for every width.
        struct Owned(usize);
        for threads in [1, 2, 3, 8] {
            let items: Vec<Owned> = (0..100).map(Owned).collect();
            let got = ScopedPool::new(threads).map_items(items, |i, item| {
                assert_eq!(i, item.0, "slot i hands out item i");
                item.0 * 11 + 2
            });
            let expected: Vec<usize> = (0..100).map(|i| i * 11 + 2).collect();
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn map_items_empty_is_empty() {
        let got = ScopedPool::new(4).map_items(Vec::<u32>::new(), |_, x| x);
        assert!(got.is_empty());
    }

    #[test]
    #[should_panic(expected = "job 3 failed")]
    fn worker_panics_propagate() {
        let _ = ScopedPool::new(2).map(8, |i| {
            assert!(i != 3, "job {i} failed");
            i
        });
    }
}
