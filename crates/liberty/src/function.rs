//! Logic functions implementable by library cells.

/// The boolean function computed by a combinational cell.
///
/// Arity is stored separately (on [`crate::Cell`] / [`crate::CellGroup`]);
/// `LogicFunction` describes the family. [`eval`](LogicFunction::eval)
/// defines the semantics for any supported arity.
///
/// # Example
///
/// ```
/// use vartol_liberty::LogicFunction;
///
/// assert!(!LogicFunction::Nand.eval(&[true, true]));
/// assert!(LogicFunction::Xor.eval(&[true, false]));
/// assert!(LogicFunction::Maj3.eval(&[true, true, false]));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum LogicFunction {
    /// Identity (arity 1).
    Buf,
    /// Inversion (arity 1).
    Inv,
    /// n-input AND.
    And,
    /// n-input NAND.
    Nand,
    /// n-input OR.
    Or,
    /// n-input NOR.
    Nor,
    /// n-input XOR (odd parity).
    Xor,
    /// n-input XNOR (even parity).
    Xnor,
    /// AND-OR-invert: `!((a & b) | c)`, arity 3.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`, arity 3.
    Oai21,
    /// 3-input majority (the carry function of a full adder), arity 3.
    Maj3,
    /// D flip-flop output stage (arity 1). In the flattened timing graph a
    /// register's Q pin is a `Dff` gate whose single fanin is the clock
    /// net, so its cell delay **is** the clk→Q delay and every engine
    /// propagates launch offsets with no special casing. The D pin is not
    /// a graph edge — it is recorded as a register cut on the netlist
    /// (see `vartol_netlist::Register`). For boolean simulation the stage
    /// is transparent (`eval` passes its input through): state-element
    /// semantics live in the sequential view, not the gate function.
    Dff,
}

impl LogicFunction {
    /// All functions, in a stable order.
    pub const ALL: [Self; 12] = [
        Self::Buf,
        Self::Inv,
        Self::And,
        Self::Nand,
        Self::Or,
        Self::Nor,
        Self::Xor,
        Self::Xnor,
        Self::Aoi21,
        Self::Oai21,
        Self::Maj3,
        Self::Dff,
    ];

    /// The inclusive range of input counts this function supports.
    #[must_use]
    pub fn arity_range(self) -> (usize, usize) {
        match self {
            Self::Buf | Self::Inv | Self::Dff => (1, 1),
            Self::And | Self::Nand | Self::Or | Self::Nor => (2, 4),
            Self::Xor | Self::Xnor => (2, 3),
            Self::Aoi21 | Self::Oai21 | Self::Maj3 => (3, 3),
        }
    }

    /// Whether `n` inputs is a legal arity for this function.
    #[must_use]
    pub fn supports_arity(self, n: usize) -> bool {
        let (lo, hi) = self.arity_range();
        (lo..=hi).contains(&n)
    }

    /// True for functions whose output inverts the "natural" polarity
    /// (NAND/NOR/INV/XNOR/AOI/OAI). Useful for technology-mapping helpers.
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            Self::Inv | Self::Nand | Self::Nor | Self::Xnor | Self::Aoi21 | Self::Oai21
        )
    }

    /// Evaluates the function on the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a supported arity.
    #[must_use]
    #[allow(clippy::nonminimal_bool)] // the textbook majority form is clearer
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.supports_arity(inputs.len()),
            "{self:?} does not support arity {}",
            inputs.len()
        );
        match self {
            Self::Buf | Self::Dff => inputs[0],
            Self::Inv => !inputs[0],
            Self::And => inputs.iter().all(|&b| b),
            Self::Nand => !inputs.iter().all(|&b| b),
            Self::Or => inputs.iter().any(|&b| b),
            Self::Nor => !inputs.iter().any(|&b| b),
            Self::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            Self::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
            Self::Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            Self::Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
            Self::Maj3 => {
                (inputs[0] && inputs[1]) || (inputs[0] && inputs[2]) || (inputs[1] && inputs[2])
            }
        }
    }

    /// Canonical short name used in cell names and `.bench` files
    /// (e.g. `NAND`).
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Buf => "BUF",
            Self::Inv => "NOT",
            Self::And => "AND",
            Self::Nand => "NAND",
            Self::Or => "OR",
            Self::Nor => "NOR",
            Self::Xor => "XOR",
            Self::Xnor => "XNOR",
            Self::Aoi21 => "AOI21",
            Self::Oai21 => "OAI21",
            Self::Maj3 => "MAJ3",
            Self::Dff => "DFF",
        }
    }

    /// Parses the canonical short name (case-insensitive). `NOT` and `INV`
    /// both map to [`LogicFunction::Inv`], `BUFF` to [`LogicFunction::Buf`].
    #[must_use]
    pub fn parse_short_name(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => Some(Self::Buf),
            "NOT" | "INV" => Some(Self::Inv),
            "AND" => Some(Self::And),
            "NAND" => Some(Self::Nand),
            "OR" => Some(Self::Or),
            "NOR" => Some(Self::Nor),
            "XOR" => Some(Self::Xor),
            "XNOR" => Some(Self::Xnor),
            "AOI21" => Some(Self::Aoi21),
            "OAI21" => Some(Self::Oai21),
            "MAJ3" => Some(Self::Maj3),
            "DFF" => Some(Self::Dff),
            _ => None,
        }
    }
}

impl std::fmt::Display for LogicFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_two_input() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            let v = [a, b];
            assert_eq!(LogicFunction::And.eval(&v), a && b);
            assert_eq!(LogicFunction::Nand.eval(&v), !(a && b));
            assert_eq!(LogicFunction::Or.eval(&v), a || b);
            assert_eq!(LogicFunction::Nor.eval(&v), !(a || b));
            assert_eq!(LogicFunction::Xor.eval(&v), a ^ b);
            assert_eq!(LogicFunction::Xnor.eval(&v), !(a ^ b));
        }
    }

    #[test]
    fn unary_functions() {
        assert!(LogicFunction::Buf.eval(&[true]));
        assert!(!LogicFunction::Buf.eval(&[false]));
        assert!(!LogicFunction::Inv.eval(&[true]));
        assert!(LogicFunction::Inv.eval(&[false]));
    }

    #[test]
    #[allow(clippy::nonminimal_bool)]
    fn complex_gates() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let v = [a, b, c];
                    assert_eq!(LogicFunction::Aoi21.eval(&v), !((a && b) || c));
                    assert_eq!(LogicFunction::Oai21.eval(&v), !((a || b) && c));
                    let maj = (a && b) || (a && c) || (b && c);
                    assert_eq!(LogicFunction::Maj3.eval(&v), maj);
                }
            }
        }
    }

    #[test]
    fn wide_gates() {
        assert!(LogicFunction::And.eval(&[true, true, true, true]));
        assert!(!LogicFunction::And.eval(&[true, true, false, true]));
        assert!(LogicFunction::Xor.eval(&[true, true, true]));
        assert!(!LogicFunction::Xor.eval(&[true, true]));
        assert!(LogicFunction::Xnor.eval(&[true, true]));
    }

    #[test]
    #[should_panic(expected = "does not support arity")]
    fn bad_arity_panics() {
        let _ = LogicFunction::Inv.eval(&[true, false]);
    }

    #[test]
    fn arity_ranges_consistent() {
        for f in LogicFunction::ALL {
            let (lo, hi) = f.arity_range();
            assert!(lo >= 1 && lo <= hi && hi <= 4);
            assert!(f.supports_arity(lo) && f.supports_arity(hi));
            assert!(!f.supports_arity(hi + 1));
            assert!(lo == 1 || !f.supports_arity(lo - 1));
        }
    }

    #[test]
    fn short_name_round_trips() {
        for f in LogicFunction::ALL {
            assert_eq!(LogicFunction::parse_short_name(f.short_name()), Some(f));
        }
        assert_eq!(
            LogicFunction::parse_short_name("not"),
            Some(LogicFunction::Inv)
        );
        assert_eq!(
            LogicFunction::parse_short_name("INV"),
            Some(LogicFunction::Inv)
        );
        assert_eq!(
            LogicFunction::parse_short_name("BUFF"),
            Some(LogicFunction::Buf)
        );
        assert_eq!(LogicFunction::parse_short_name("bogus"), None);
    }

    #[test]
    fn dff_is_a_transparent_unary_stage() {
        assert_eq!(LogicFunction::Dff.arity_range(), (1, 1));
        assert!(LogicFunction::Dff.eval(&[true]));
        assert!(!LogicFunction::Dff.eval(&[false]));
        assert!(!LogicFunction::Dff.is_inverting());
        assert_eq!(
            LogicFunction::parse_short_name("dff"),
            Some(LogicFunction::Dff)
        );
    }

    #[test]
    fn inverting_classification() {
        assert!(LogicFunction::Nand.is_inverting());
        assert!(LogicFunction::Inv.is_inverting());
        assert!(!LogicFunction::And.is_inverting());
        assert!(!LogicFunction::Maj3.is_inverting());
    }
}
