//! The process-variation model: proportional + random delay components.
//!
//! §5 of the paper: *"Two variations components were added to the gate
//! delays: one proportional to delay through gate and another random source
//! corresponding to unsystematic manufacturing variations"* (following Cong
//! \[25\] and Nassif \[26\]).
//!
//! The proportional component shrinks with device size — larger devices
//! average out dopant/geometry fluctuations — which is the physical lever
//! the whole optimization rests on ("our algorithm favors bigger gate sizes
//! that reduce the variance of delay across them"). The random component is
//! an absolute floor that no sizing can remove; it is why the paper observes
//! that increasing α beyond a circuit-dependent point yields no further
//! variance reduction.
//!
//! This model answers *how much* one gate's delay varies. How gate
//! variations **co-vary** — die-to-die shifts and spatially correlated
//! within-die fields — is layered on top by the ssta crate's correlated
//! `VariationModel` (`vartol_ssta::variation`), which decomposes each
//! gate's σ from this model into local/global/spatial components.

use vartol_stats::Moments;

/// Parameters of the two-component variation model.
///
/// Standard deviation of a gate's delay:
///
/// ```text
/// σ² = (k_prop · delay / drive^size_exponent)² + sigma_floor²
/// ```
///
/// # Example
///
/// ```
/// use vartol_liberty::VariationModel;
///
/// let var = VariationModel::default();
/// // Bigger drive -> smaller sigma at the same nominal delay.
/// assert!(var.sigma(40.0, 4.0) < var.sigma(40.0, 1.0));
/// // But never below the unsystematic floor.
/// assert!(var.sigma(40.0, 1e9) >= var.sigma_floor);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VariationModel {
    /// Coefficient of the delay-proportional component at drive X1.
    pub k_prop: f64,
    /// Exponent of the drive-strength attenuation (0.5 = Pelgrom-style
    /// `1/√area` averaging).
    pub size_exponent: f64,
    /// Absolute standard deviation (ps) of the unsystematic random source.
    pub sigma_floor: f64,
}

impl VariationModel {
    /// Creates a model from its three parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite.
    #[must_use]
    pub fn new(k_prop: f64, size_exponent: f64, sigma_floor: f64) -> Self {
        assert!(
            k_prop.is_finite() && k_prop >= 0.0,
            "k_prop must be non-negative"
        );
        assert!(
            size_exponent.is_finite() && size_exponent >= 0.0,
            "size_exponent must be non-negative"
        );
        assert!(
            sigma_floor.is_finite() && sigma_floor >= 0.0,
            "sigma_floor must be non-negative"
        );
        Self {
            k_prop,
            size_exponent,
            sigma_floor,
        }
    }

    /// A variation-free model (deterministic timing).
    #[must_use]
    pub fn none() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Standard deviation of a gate delay given its nominal delay (ps) and
    /// drive strength.
    ///
    /// # Panics
    ///
    /// Panics if `drive <= 0`.
    #[must_use]
    pub fn sigma(&self, nominal_delay: f64, drive: f64) -> f64 {
        assert!(drive > 0.0, "drive must be positive, got {drive}");
        let prop = self.k_prop * nominal_delay / drive.powf(self.size_exponent);
        (prop * prop + self.sigma_floor * self.sigma_floor).sqrt()
    }

    /// The full random-delay moments for a gate arc.
    ///
    /// # Panics
    ///
    /// Panics if `drive <= 0` or `nominal_delay < 0`.
    #[must_use]
    pub fn delay_moments(&self, nominal_delay: f64, drive: f64) -> Moments {
        assert!(nominal_delay >= 0.0, "nominal delay must be non-negative");
        Moments::from_mean_std(nominal_delay, self.sigma(nominal_delay, drive))
    }

    /// The μ→σ coupling constant used by the WNSS sensitivity tracer: the
    /// paper sets the linear link `Δσ = c·Δμ` to "values ... equal to those
    /// assumed to relate mean delay through a gate to its variance", i.e.
    /// the proportional coefficient at X1.
    #[must_use]
    pub fn mu_sigma_coupling(&self) -> f64 {
        self.k_prop
    }
}

impl Default for VariationModel {
    /// The calibration used for the Table-1 reproduction: 35% proportional
    /// variation at X1 with `1/drive` attenuation and a 1.5ps random
    /// floor. The `1/drive` exponent (rather than Pelgrom's `1/√area`)
    /// reflects that the paper's delay variability mixes threshold
    /// mismatch with systematic length variation, both of which average
    /// down quickly in wide devices; DESIGN.md §5 lists this as an
    /// ablation-worthy choice and the `ablation` bench sweeps it.
    fn default() -> Self {
        Self::new(0.35, 1.0, 1.5)
    }
}

impl std::fmt::Display for VariationModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "σ = sqrt(({:.3}·d/s^{:.2})² + {:.2}²)",
            self.k_prop, self.size_exponent, self.sigma_floor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_combines_components_in_quadrature() {
        let v = VariationModel::new(0.1, 0.5, 2.0);
        let want = ((0.1f64 * 40.0).powi(2) + 4.0).sqrt();
        assert!((v.sigma(40.0, 1.0) - want).abs() < 1e-12);
    }

    #[test]
    fn sigma_shrinks_with_drive() {
        let v = VariationModel::default();
        let s1 = v.sigma(40.0, 1.0);
        let s4 = v.sigma(40.0, 4.0);
        // Default exponent 1.0: drive 4 quarters the proportional part.
        assert!(s4 < s1 / 2.0);
        assert!(s4 > s1 / 4.0, "floor prevents the full 4x reduction");
    }

    #[test]
    fn floor_bounds_sigma_below() {
        let v = VariationModel::new(0.2, 0.5, 3.0);
        assert!(v.sigma(100.0, 1e12) >= 3.0 - 1e-12);
        assert!((v.sigma(0.0, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn none_is_deterministic() {
        let v = VariationModel::none();
        assert_eq!(v.sigma(123.0, 1.0), 0.0);
        let m = v.delay_moments(123.0, 1.0);
        assert_eq!(m, Moments::deterministic(123.0));
    }

    #[test]
    fn moments_mean_is_nominal() {
        let v = VariationModel::default();
        let m = v.delay_moments(55.0, 2.0);
        assert_eq!(m.mean, 55.0);
        assert!((m.std() - v.sigma(55.0, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_size_exponent_ignores_drive() {
        let v = VariationModel::new(0.15, 0.0, 0.0);
        assert_eq!(v.sigma(10.0, 1.0), v.sigma(10.0, 8.0));
    }

    #[test]
    fn coupling_equals_k_prop() {
        let v = VariationModel::new(0.123, 0.5, 1.0);
        assert_eq!(v.mu_sigma_coupling(), 0.123);
    }

    #[test]
    #[should_panic(expected = "drive must be positive")]
    fn zero_drive_panics() {
        let _ = VariationModel::default().sigma(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "nominal delay must be non-negative")]
    fn negative_delay_panics() {
        let _ = VariationModel::default().delay_moments(-1.0, 1.0);
    }

    #[test]
    fn display_shows_parameters() {
        let s = VariationModel::default().to_string();
        assert!(s.contains("σ"));
    }
}
