//! Two-dimensional lookup tables with bilinear interpolation — the
//! non-linear delay model (NLDM) representation used by lookup-table based
//! standard-cell libraries like the one in the paper's evaluation.

/// A 2-D lookup table indexed by input slew (rows) and output load
/// (columns), with bilinear interpolation inside the grid and clamped
/// linear extrapolation outside it.
///
/// # Example
///
/// ```
/// use vartol_liberty::LookupTable2d;
///
/// let t = LookupTable2d::from_fn(
///     vec![10.0, 20.0],
///     vec![1.0, 2.0],
///     |slew, load| slew + load,
/// );
/// assert!((t.lookup(15.0, 1.5) - 16.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LookupTable2d {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    /// `values[i][j]` = value at `slew_axis[i]`, `load_axis[j]`.
    values: Vec<Vec<f64>>,
}

impl LookupTable2d {
    /// Creates a table from explicit axes and values.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing, or if the
    /// value grid does not match the axis dimensions.
    #[must_use]
    pub fn new(slew_axis: Vec<f64>, load_axis: Vec<f64>, values: Vec<Vec<f64>>) -> Self {
        assert!(!slew_axis.is_empty(), "slew axis must be non-empty");
        assert!(!load_axis.is_empty(), "load axis must be non-empty");
        assert!(
            slew_axis.windows(2).all(|w| w[0] < w[1]),
            "slew axis must be strictly increasing"
        );
        assert!(
            load_axis.windows(2).all(|w| w[0] < w[1]),
            "load axis must be strictly increasing"
        );
        assert_eq!(
            values.len(),
            slew_axis.len(),
            "row count must match slew axis"
        );
        for row in &values {
            assert_eq!(
                row.len(),
                load_axis.len(),
                "column count must match load axis"
            );
        }
        Self {
            slew_axis,
            load_axis,
            values,
        }
    }

    /// Creates a table by sampling `f(slew, load)` on the given axes.
    ///
    /// # Panics
    ///
    /// Panics under the same axis conditions as [`LookupTable2d::new`].
    #[must_use]
    pub fn from_fn<F: Fn(f64, f64) -> f64>(slew_axis: Vec<f64>, load_axis: Vec<f64>, f: F) -> Self {
        let values = slew_axis
            .iter()
            .map(|&s| load_axis.iter().map(|&l| f(s, l)).collect())
            .collect();
        Self::new(slew_axis, load_axis, values)
    }

    /// The slew (row) axis.
    #[must_use]
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The load (column) axis.
    #[must_use]
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// Bilinear interpolation at `(slew, load)`, with linear extrapolation
    /// using the boundary segment slope outside the grid. With a single
    /// axis point in a dimension, that dimension is treated as constant.
    #[must_use]
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (i0, i1, ts) = Self::bracket(&self.slew_axis, slew);
        let (j0, j1, tl) = Self::bracket(&self.load_axis, load);
        let v00 = self.values[i0][j0];
        let v01 = self.values[i0][j1];
        let v10 = self.values[i1][j0];
        let v11 = self.values[i1][j1];
        let v0 = v00 + (v01 - v00) * tl;
        let v1 = v10 + (v11 - v10) * tl;
        v0 + (v1 - v0) * ts
    }

    /// Finds the bracketing indices and the interpolation parameter for `x`
    /// on `axis`. The parameter may lie outside `[0,1]` for extrapolation.
    fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
        let n = axis.len();
        if n == 1 {
            return (0, 0, 0.0);
        }
        // Index of the segment [i, i+1] to use: interior segment containing
        // x, or the first/last segment for extrapolation.
        let seg = match axis.iter().position(|&a| x < a) {
            Some(0) => 0,
            Some(i) => i - 1,
            None => n - 2,
        };
        let (a, b) = (axis[seg], axis[seg + 1]);
        (seg, seg + 1, (x - a) / (b - a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_table() -> LookupTable2d {
        LookupTable2d::from_fn(
            vec![5.0, 10.0, 20.0, 40.0],
            vec![1.0, 2.0, 4.0, 8.0, 16.0],
            |s, l| 3.0 + 0.2 * s + 1.5 * l,
        )
    }

    #[test]
    fn exact_at_grid_points() {
        let t = linear_table();
        for &s in t.slew_axis().to_vec().iter() {
            for &l in t.load_axis().to_vec().iter() {
                assert!((t.lookup(s, l) - (3.0 + 0.2 * s + 1.5 * l)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bilinear_reproduces_linear_functions_everywhere() {
        let t = linear_table();
        for &(s, l) in &[(7.3, 1.4), (12.0, 5.5), (33.0, 12.0), (5.0, 16.0)] {
            assert!(
                (t.lookup(s, l) - (3.0 + 0.2 * s + 1.5 * l)).abs() < 1e-9,
                "at ({s},{l})"
            );
        }
    }

    #[test]
    fn extrapolation_is_linear_continuation() {
        let t = linear_table();
        // Outside the grid on both ends.
        for &(s, l) in &[(1.0, 0.5), (60.0, 32.0), (1.0, 32.0), (60.0, 0.5)] {
            assert!(
                (t.lookup(s, l) - (3.0 + 0.2 * s + 1.5 * l)).abs() < 1e-9,
                "at ({s},{l})"
            );
        }
    }

    #[test]
    fn nonlinear_surface_interpolates_between_grid() {
        let t = LookupTable2d::from_fn(vec![0.0, 10.0], vec![0.0, 10.0], |s, l| s * l);
        // Bilinear on product function is exact for this 2x2 grid.
        assert!((t.lookup(5.0, 5.0) - 25.0).abs() < 1e-12);
        assert!((t.lookup(2.0, 8.0) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_axis_is_constant() {
        let t = LookupTable2d::new(vec![10.0], vec![1.0, 2.0], vec![vec![7.0, 9.0]]);
        assert!((t.lookup(999.0, 1.5) - 8.0).abs() < 1e-12);
        let t2 = LookupTable2d::new(vec![1.0, 2.0], vec![10.0], vec![vec![7.0], vec![9.0]]);
        assert!((t2.lookup(1.5, -3.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_panics() {
        let _ = LookupTable2d::new(vec![2.0, 1.0], vec![1.0], vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn wrong_rows_panics() {
        let _ = LookupTable2d::new(vec![1.0, 2.0], vec![1.0], vec![vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn wrong_cols_panics() {
        let _ = LookupTable2d::new(vec![1.0], vec![1.0, 2.0], vec![vec![0.0]]);
    }
}
