//! # vartol-liberty
//!
//! A synthetic lookup-table (NLDM-style) standard-cell library with discrete
//! drive strengths, playing the role of the "industrial 90nm lookup-table
//! based standard cell library with 6-8 sizes per gate type" used in the
//! DATE'05 paper's evaluation (§5).
//!
//! The library exposes exactly what statistical gate sizing consumes:
//!
//! * per-cell **delay** as a function of input slew and output load,
//!   interpolated from 2-D tables ([`nldm::LookupTable2d`]),
//! * per-cell **area** and **input capacitance** (bigger drives cost area
//!   and load their fanins harder — the effect the paper points out when
//!   explaining why upsizing near outputs slows predecessor gates),
//! * a discrete ladder of **drive strengths** per logic function
//!   ([`CellGroup`]), the optimizer's decision space,
//! * a **process-variation model** ([`variation::VariationModel`]) adding
//!   the paper's two components to each nominal delay: one proportional to
//!   the delay through the gate (shrinking with device size) and one random
//!   unsystematic source.
//!
//! # Example
//!
//! ```
//! use vartol_liberty::{Library, LogicFunction};
//!
//! let lib = Library::synthetic_90nm();
//! let group = lib.group(LogicFunction::Nand, 2).expect("NAND2 exists");
//! assert!(group.len() >= 6, "paper: 6-8 sizes per gate type");
//!
//! // Bigger drives are faster under load but present more input cap.
//! let small = group.cell(0);
//! let big = group.cell(group.len() - 1);
//! let load = 8.0;
//! assert!(big.delay(20.0, load) < small.delay(20.0, load));
//! assert!(big.input_cap() > small.input_cap());
//! assert!(big.area() > small.area());
//! ```

pub mod cell;
pub mod function;
pub mod library;
pub mod nldm;
pub mod variation;

pub use cell::Cell;
pub use function::LogicFunction;
pub use library::{CellGroup, Library};
pub use nldm::LookupTable2d;
pub use variation::VariationModel;
