//! A single library cell: one logic function at one drive strength.

use crate::function::LogicFunction;
use crate::nldm::LookupTable2d;

/// One standard cell: a logic function at a specific drive strength, with
/// its timing tables, area, and input capacitance.
///
/// Delays are in picoseconds; capacitance in normalized "unit loads" where
/// the X1 inverter input pin is 1.0; area in normalized units where the X1
/// inverter is 1.0.
///
/// # Example
///
/// ```
/// use vartol_liberty::Library;
///
/// let lib = Library::synthetic_90nm();
/// let inv = lib.cell_by_name("NOT_X1").expect("X1 inverter exists");
/// // Delay grows with output load.
/// assert!(inv.delay(20.0, 8.0) > inv.delay(20.0, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    name: String,
    function: LogicFunction,
    arity: usize,
    drive_index: usize,
    drive: f64,
    area: f64,
    input_cap: f64,
    delay_table: LookupTable2d,
    slew_table: LookupTable2d,
    setup: f64,
    hold: f64,
}

impl Cell {
    /// Assembles a cell from its components. Intended for library builders;
    /// most users obtain cells from [`crate::Library`].
    ///
    /// # Panics
    ///
    /// Panics if the arity is unsupported by the function, or if `drive`,
    /// `area`, or `input_cap` are not strictly positive.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: String,
        function: LogicFunction,
        arity: usize,
        drive_index: usize,
        drive: f64,
        area: f64,
        input_cap: f64,
        delay_table: LookupTable2d,
        slew_table: LookupTable2d,
    ) -> Self {
        assert!(
            function.supports_arity(arity),
            "{function:?} does not support arity {arity}"
        );
        assert!(drive > 0.0, "drive strength must be positive");
        assert!(area > 0.0, "area must be positive");
        assert!(input_cap > 0.0, "input capacitance must be positive");
        Self {
            name,
            function,
            arity,
            drive_index,
            drive,
            area,
            input_cap,
            delay_table,
            slew_table,
            setup: 0.0,
            hold: 0.0,
        }
    }

    /// Attaches sequential timing constraints (register cells only): the
    /// setup and hold windows (ps) of the cell's D pin relative to the
    /// clock edge. Combinational cells keep the zero defaults.
    ///
    /// # Panics
    ///
    /// Panics if either constraint is negative or non-finite.
    #[must_use]
    pub fn with_setup_hold(mut self, setup: f64, hold: f64) -> Self {
        assert!(
            setup.is_finite() && setup >= 0.0,
            "setup must be non-negative"
        );
        assert!(hold.is_finite() && hold >= 0.0, "hold must be non-negative");
        self.setup = setup;
        self.hold = hold;
        self
    }

    /// The cell name, e.g. `NAND2_X4`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boolean function.
    #[must_use]
    pub fn function(&self) -> LogicFunction {
        self.function
    }

    /// Number of input pins.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Zero-based index of this cell within its size ladder (0 = smallest).
    #[must_use]
    pub fn drive_index(&self) -> usize {
        self.drive_index
    }

    /// The drive-strength multiplier (X1 = 1.0).
    #[must_use]
    pub fn drive(&self) -> f64 {
        self.drive
    }

    /// Cell area in normalized units.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Capacitance presented by each input pin, in unit loads.
    #[must_use]
    pub fn input_cap(&self) -> f64 {
        self.input_cap
    }

    /// Nominal pin-to-output delay (ps) for the given input slew (ps) and
    /// output load (unit loads), from the NLDM table.
    #[must_use]
    pub fn delay(&self, input_slew: f64, load: f64) -> f64 {
        self.delay_table.lookup(input_slew, load)
    }

    /// Output slew (ps) for the given input slew and output load.
    #[must_use]
    pub fn output_slew(&self, input_slew: f64, load: f64) -> f64 {
        self.slew_table.lookup(input_slew, load)
    }

    /// Setup window (ps) of the cell's D pin before the clock edge; zero
    /// for combinational cells.
    #[must_use]
    pub fn setup(&self) -> f64 {
        self.setup
    }

    /// Hold window (ps) of the cell's D pin after the clock edge; zero
    /// for combinational cells.
    #[must_use]
    pub fn hold(&self) -> f64 {
        self.hold
    }

    /// Evaluates the cell's boolean function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity, "input count must match arity");
        self.function.eval(inputs)
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (area {:.2}, cap {:.2})",
            self.name, self.area, self.input_cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(c: f64) -> LookupTable2d {
        LookupTable2d::from_fn(vec![10.0, 40.0], vec![1.0, 16.0], move |s, l| {
            c + 0.1 * s + l
        })
    }

    fn cell() -> Cell {
        Cell::new(
            "NAND2_X2".into(),
            LogicFunction::Nand,
            2,
            1,
            2.0,
            2.5,
            1.3,
            table(5.0),
            table(2.0),
        )
    }

    #[test]
    fn accessors() {
        let c = cell();
        assert_eq!(c.name(), "NAND2_X2");
        assert_eq!(c.function(), LogicFunction::Nand);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.drive_index(), 1);
        assert_eq!(c.drive(), 2.0);
        assert_eq!(c.area(), 2.5);
        assert_eq!(c.input_cap(), 1.3);
    }

    #[test]
    fn delay_and_slew_lookups() {
        let c = cell();
        assert!((c.delay(10.0, 1.0) - 7.0).abs() < 1e-12);
        assert!((c.output_slew(10.0, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eval_uses_function() {
        let c = cell();
        assert!(!c.eval(&[true, true]));
        assert!(c.eval(&[true, false]));
    }

    #[test]
    fn setup_hold_default_to_zero_and_attach_via_builder() {
        let c = cell();
        assert_eq!(c.setup(), 0.0);
        assert_eq!(c.hold(), 0.0);
        let d = Cell::new(
            "DFF_X1".into(),
            LogicFunction::Dff,
            1,
            0,
            1.0,
            4.0,
            1.1,
            table(8.0),
            table(3.0),
        )
        .with_setup_hold(22.0, 4.0);
        assert_eq!(d.setup(), 22.0);
        assert_eq!(d.hold(), 4.0);
    }

    #[test]
    #[should_panic(expected = "setup must be non-negative")]
    fn negative_setup_panics() {
        let _ = cell().with_setup_hold(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "input count must match arity")]
    fn eval_wrong_arity_panics() {
        let _ = cell().eval(&[true]);
    }

    #[test]
    #[should_panic(expected = "does not support arity")]
    fn bad_arity_panics() {
        let _ = Cell::new(
            "INV_X1".into(),
            LogicFunction::Inv,
            2,
            0,
            1.0,
            1.0,
            1.0,
            table(1.0),
            table(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "drive strength must be positive")]
    fn zero_drive_panics() {
        let _ = Cell::new(
            "INV_X0".into(),
            LogicFunction::Inv,
            1,
            0,
            0.0,
            1.0,
            1.0,
            table(1.0),
            table(1.0),
        );
    }
}
