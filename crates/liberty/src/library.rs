//! The cell library: size ladders per logic function and the synthetic
//! 90nm library used throughout the reproduction.

use crate::cell::Cell;
use crate::function::LogicFunction;
use crate::nldm::LookupTable2d;
use std::collections::HashMap;

/// All cells implementing one `(function, arity)` pair, ordered by
/// ascending drive strength — the optimizer's discrete decision space for
/// a gate ("foreach I in (sizes of g)" in the paper's pseudo-code).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellGroup {
    function: LogicFunction,
    arity: usize,
    cells: Vec<Cell>,
}

impl CellGroup {
    /// Creates a group from cells sharing a function and arity.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty, any cell disagrees on function/arity,
    /// drives are not strictly increasing, or a cell's `drive_index` does
    /// not match its position.
    #[must_use]
    pub fn new(function: LogicFunction, arity: usize, cells: Vec<Cell>) -> Self {
        assert!(!cells.is_empty(), "a cell group needs at least one size");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(
                c.function(),
                function,
                "cell {} function mismatch",
                c.name()
            );
            assert_eq!(c.arity(), arity, "cell {} arity mismatch", c.name());
            assert_eq!(c.drive_index(), i, "cell {} drive_index mismatch", c.name());
        }
        assert!(
            cells.windows(2).all(|w| w[0].drive() < w[1].drive()),
            "drives must be strictly increasing"
        );
        Self {
            function,
            arity,
            cells,
        }
    }

    /// The group's logic function.
    #[must_use]
    pub fn function(&self) -> LogicFunction {
        self.function
    }

    /// The group's input count.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of available sizes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false: groups hold at least one cell.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The cell at size index `i` (0 = smallest drive).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn cell(&self, i: usize) -> &Cell {
        &self.cells[i]
    }

    /// All sizes, ascending drive.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The smallest (minimum-area) size.
    #[must_use]
    pub fn smallest(&self) -> &Cell {
        &self.cells[0]
    }

    /// The largest (maximum-drive) size.
    #[must_use]
    pub fn largest(&self) -> &Cell {
        self.cells.last().expect("non-empty by construction")
    }
}

/// A standard-cell library: a set of [`CellGroup`]s indexed by
/// `(function, arity)` and by cell name.
///
/// # Example
///
/// ```
/// use vartol_liberty::{Library, LogicFunction};
///
/// let lib = Library::synthetic_90nm();
/// assert!(lib.group(LogicFunction::Nand, 2).is_some());
/// assert!(lib.group(LogicFunction::Nand, 9).is_none());
/// let inv = lib.cell_by_name("NOT_X1").expect("inverter");
/// assert_eq!(inv.function(), LogicFunction::Inv);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: String,
    groups: Vec<CellGroup>,
    group_index: HashMap<(LogicFunction, usize), usize>,
    name_index: HashMap<String, (usize, usize)>,
}

/// A borrowed library converts into a shared handle by cloning — the
/// bridge that lets owned-handle consumers ([`std::sync::Arc`]-holding
/// sessions, sizers, workspaces) accept `&Library` at construction
/// without a lifetime parameter. Libraries are small (a few dozen cells
/// of lookup tables), so the clone is cheap relative to any analysis.
impl From<&Library> for std::sync::Arc<Library> {
    fn from(library: &Library) -> Self {
        std::sync::Arc::new(library.clone())
    }
}

impl Library {
    /// Builds a library from groups.
    ///
    /// # Panics
    ///
    /// Panics if two groups share a `(function, arity)` pair or two cells
    /// share a name.
    #[must_use]
    pub fn new(name: String, groups: Vec<CellGroup>) -> Self {
        let mut group_index = HashMap::new();
        let mut name_index = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            let prev = group_index.insert((g.function(), g.arity()), gi);
            assert!(
                prev.is_none(),
                "duplicate group {:?}/{}",
                g.function(),
                g.arity()
            );
            for (ci, c) in g.cells().iter().enumerate() {
                let prev = name_index.insert(c.name().to_owned(), (gi, ci));
                assert!(prev.is_none(), "duplicate cell name {}", c.name());
            }
        }
        Self {
            name,
            groups,
            group_index,
            name_index,
        }
    }

    /// The library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All groups.
    #[must_use]
    pub fn groups(&self) -> &[CellGroup] {
        &self.groups
    }

    /// The size ladder for `(function, arity)`, if present.
    #[must_use]
    pub fn group(&self, function: LogicFunction, arity: usize) -> Option<&CellGroup> {
        self.group_index
            .get(&(function, arity))
            .map(|&i| &self.groups[i])
    }

    /// The cell for `(function, arity)` at size index `drive_index`.
    #[must_use]
    pub fn cell(&self, function: LogicFunction, arity: usize, drive_index: usize) -> Option<&Cell> {
        self.group(function, arity)
            .and_then(|g| g.cells().get(drive_index))
    }

    /// Looks up a cell by name, e.g. `NAND2_X4`.
    #[must_use]
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.name_index
            .get(name)
            .map(|&(gi, ci)| self.groups[gi].cell(ci))
    }

    /// Total number of cells across all groups.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.groups.iter().map(CellGroup::len).sum()
    }

    /// The synthetic 90nm library standing in for the paper's industrial
    /// one: every common combinational function with **6–8 discrete drive
    /// strengths**, NLDM delay/slew tables, and consistent area/cap trends.
    ///
    /// Electrical model (normalized units; time ps, cap in X1-inverter
    /// input loads, area in X1-inverter areas):
    ///
    /// * `delay(slew, load) = p + (r / drive) · load + k_s · slew`
    ///   sampled on a slew×load grid (the tables are what downstream code
    ///   consumes — the closed form is only the generator);
    /// * `input_cap = c₀ · drive` — upsizing loads predecessors harder;
    /// * `area = a₀ · (0.35 + 0.65 · drive)` — slightly sublinear.
    #[must_use]
    pub fn synthetic_90nm() -> Self {
        // (function, arity, p_intrinsic, r_drive, c0_cap, a0_area)
        #[rustfmt::skip]
        let params: &[(LogicFunction, usize, f64, f64, f64, f64)] = &[
            (LogicFunction::Inv,   1,  6.0, 12.0, 1.00, 1.0),
            (LogicFunction::Buf,   1, 10.0, 12.0, 1.00, 1.4),
            (LogicFunction::Nand,  2, 10.0, 16.0, 1.25, 1.6),
            (LogicFunction::Nand,  3, 13.0, 18.0, 1.40, 2.1),
            (LogicFunction::Nand,  4, 16.0, 20.0, 1.55, 2.6),
            (LogicFunction::Nor,   2, 11.0, 18.0, 1.35, 1.6),
            (LogicFunction::Nor,   3, 14.5, 21.0, 1.50, 2.1),
            (LogicFunction::Nor,   4, 18.0, 24.0, 1.65, 2.6),
            (LogicFunction::And,   2, 15.0, 14.0, 1.25, 2.4),
            (LogicFunction::And,   3, 18.0, 15.0, 1.40, 2.9),
            (LogicFunction::And,   4, 21.0, 16.0, 1.55, 3.4),
            (LogicFunction::Or,    2, 16.0, 15.0, 1.35, 2.4),
            (LogicFunction::Or,    3, 19.5, 16.5, 1.50, 2.9),
            (LogicFunction::Or,    4, 23.0, 18.0, 1.65, 3.4),
            (LogicFunction::Xor,   2, 16.0, 20.0, 1.80, 2.8),
            (LogicFunction::Xor,   3, 22.0, 23.0, 2.00, 4.2),
            (LogicFunction::Xnor,  2, 17.0, 20.0, 1.80, 2.8),
            (LogicFunction::Xnor,  3, 23.0, 23.0, 2.00, 4.2),
            (LogicFunction::Aoi21, 3, 13.0, 18.0, 1.40, 2.2),
            (LogicFunction::Oai21, 3, 13.0, 18.0, 1.40, 2.2),
            (LogicFunction::Maj3,  3, 18.0, 20.0, 1.70, 3.0),
            // The register family: the cell delay is the clk→Q arc (the
            // launch offset every engine propagates through the Q gate);
            // the D-pin setup/hold windows are attached below.
            (LogicFunction::Dff,   1, 35.0, 22.0, 1.60, 6.0),
        ];

        // 8 sizes for the workhorse INV/BUF, 6 for everything else —
        // matching the paper's "6-8 sizes per gate type".
        let drives_8: Vec<f64> = vec![1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0];
        let drives_6: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0];

        let slew_axis = vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0];
        let load_axis = vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        const K_SLEW: f64 = 0.08;

        let mut groups = Vec::with_capacity(params.len());
        for &(function, arity, p, r, c0, a0) in params {
            let drives = if matches!(function, LogicFunction::Inv | LogicFunction::Buf) {
                &drives_8
            } else {
                &drives_6
            };
            let cells = drives
                .iter()
                .enumerate()
                .map(|(i, &drive)| {
                    let delay_table = LookupTable2d::from_fn(
                        slew_axis.clone(),
                        load_axis.clone(),
                        move |s, l| p + (r / drive) * l + K_SLEW * s,
                    );
                    let slew_table = LookupTable2d::from_fn(
                        slew_axis.clone(),
                        load_axis.clone(),
                        move |s, l| 0.6 * p + 0.9 * (r / drive) * l + 0.05 * s,
                    );
                    let suffix = if (drive.fract()).abs() < 1e-9 {
                        format!("X{}", drive as u64)
                    } else {
                        format!("X{drive:.1}")
                    };
                    // INV/BUF and the fixed-arity complex cells omit
                    // the arity from the name.
                    let name = if matches!(
                        function,
                        LogicFunction::Inv
                            | LogicFunction::Buf
                            | LogicFunction::Aoi21
                            | LogicFunction::Oai21
                            | LogicFunction::Maj3
                            | LogicFunction::Dff
                    ) {
                        format!("{}_{}", function.short_name(), suffix)
                    } else {
                        format!("{}{}_{}", function.short_name(), arity, suffix)
                    };
                    let cell = Cell::new(
                        name,
                        function,
                        arity,
                        i,
                        drive,
                        a0 * (0.35 + 0.65 * drive),
                        c0 * drive,
                        delay_table,
                        slew_table,
                    );
                    if function == LogicFunction::Dff {
                        // A stronger register resolves its master latch
                        // faster: the setup window shrinks as the drive
                        // grows (hold stays a fixed race margin).
                        cell.with_setup_hold(18.0 + 12.0 / drive, 4.0)
                    } else {
                        cell
                    }
                })
                .collect();
            groups.push(CellGroup::new(function, arity, cells));
        }
        Self::new("vartol_synthetic_90nm".to_owned(), groups)
    }
}

impl std::fmt::Display for Library {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} groups, {} cells)",
            self.name,
            self.groups.len(),
            self.cell_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_library_has_expected_shape() {
        let lib = Library::synthetic_90nm();
        assert!(lib.groups().len() >= 20);
        for g in lib.groups() {
            assert!(
                (6..=8).contains(&g.len()),
                "{:?}/{} has {} sizes; paper says 6-8",
                g.function(),
                g.arity(),
                g.len()
            );
        }
    }

    #[test]
    fn inverter_has_eight_sizes() {
        let lib = Library::synthetic_90nm();
        assert_eq!(lib.group(LogicFunction::Inv, 1).expect("inv").len(), 8);
        assert_eq!(lib.group(LogicFunction::Nand, 2).expect("nand2").len(), 6);
    }

    #[test]
    fn register_family_carries_setup_and_hold() {
        let lib = Library::synthetic_90nm();
        let g = lib.group(LogicFunction::Dff, 1).expect("dff group");
        assert_eq!(g.len(), 6);
        for w in g.cells().windows(2) {
            let (small, big) = (&w[0], &w[1]);
            assert!(small.setup() > big.setup(), "setup shrinks with drive");
            assert_eq!(small.hold(), big.hold(), "hold is a fixed margin");
            assert!(small.setup() > 0.0 && small.hold() > 0.0);
        }
        // Combinational cells keep the zero defaults.
        let nand = lib.cell_by_name("NAND2_X1").expect("nand2 x1");
        assert_eq!(nand.setup(), 0.0);
        assert_eq!(nand.hold(), 0.0);
        assert!(lib.cell_by_name("DFF_X1").is_some());
    }

    #[test]
    fn upsizing_trades_delay_for_cap_and_area() {
        let lib = Library::synthetic_90nm();
        for g in lib.groups() {
            for w in g.cells().windows(2) {
                let (small, big) = (&w[0], &w[1]);
                // Under a heavy load, the bigger cell is strictly faster.
                assert!(
                    big.delay(20.0, 16.0) < small.delay(20.0, 16.0),
                    "{} vs {}",
                    big.name(),
                    small.name()
                );
                assert!(big.input_cap() > small.input_cap());
                assert!(big.area() > small.area());
            }
        }
    }

    #[test]
    fn delay_monotone_in_load_and_slew() {
        let lib = Library::synthetic_90nm();
        let c = lib.cell_by_name("NAND2_X1").expect("nand2 x1");
        assert!(c.delay(20.0, 8.0) > c.delay(20.0, 2.0));
        assert!(c.delay(80.0, 2.0) > c.delay(10.0, 2.0));
        assert!(c.output_slew(20.0, 8.0) > c.output_slew(20.0, 2.0));
    }

    #[test]
    fn name_lookup_round_trips() {
        let lib = Library::synthetic_90nm();
        for g in lib.groups() {
            for c in g.cells() {
                let found = lib.cell_by_name(c.name()).expect("every cell is indexed");
                assert_eq!(found.name(), c.name());
                assert_eq!(found.drive_index(), c.drive_index());
            }
        }
        assert!(lib.cell_by_name("NAND17_X99").is_none());
    }

    #[test]
    fn group_lookup_by_function_arity() {
        let lib = Library::synthetic_90nm();
        let g = lib.group(LogicFunction::Xor, 2).expect("xor2");
        assert_eq!(g.function(), LogicFunction::Xor);
        assert_eq!(g.arity(), 2);
        assert!(lib.group(LogicFunction::Xor, 4).is_none());
        assert!(lib.cell(LogicFunction::Xor, 2, 0).is_some());
        assert!(lib.cell(LogicFunction::Xor, 2, 99).is_none());
    }

    #[test]
    fn smallest_and_largest() {
        let lib = Library::synthetic_90nm();
        let g = lib.group(LogicFunction::Nor, 2).expect("nor2");
        assert_eq!(g.smallest().drive_index(), 0);
        assert_eq!(g.largest().drive_index(), g.len() - 1);
        assert!(g.largest().drive() > g.smallest().drive());
    }

    #[test]
    fn inverting_cells_cheaper_than_noninverting() {
        // Sanity of the electrical model: NAND2 is faster than AND2 at X1
        // intrinsically (AND = NAND + INV internally).
        let lib = Library::synthetic_90nm();
        let nand = lib.cell_by_name("NAND2_X1").expect("nand2");
        let and = lib.cell_by_name("AND2_X1").expect("and2");
        assert!(nand.delay(20.0, 0.5) < and.delay(20.0, 0.5));
    }

    #[test]
    #[should_panic(expected = "drives must be strictly increasing")]
    fn group_rejects_unsorted_drives() {
        let lib = Library::synthetic_90nm();
        let g = lib.group(LogicFunction::Inv, 1).expect("inv");
        let mut cells = vec![g.cell(1).clone(), g.cell(0).clone()];
        // Fix drive_index fields so the index assertion doesn't fire first.
        cells = cells
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                Cell::new(
                    format!("T{i}"),
                    c.function(),
                    c.arity(),
                    i,
                    c.drive(),
                    c.area(),
                    c.input_cap(),
                    LookupTable2d::from_fn(vec![1.0], vec![1.0], |_, _| 1.0),
                    LookupTable2d::from_fn(vec![1.0], vec![1.0], |_, _| 1.0),
                )
            })
            .collect();
        let _ = CellGroup::new(LogicFunction::Inv, 1, cells);
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn library_rejects_duplicate_names() {
        let lib = Library::synthetic_90nm();
        let g = lib.group(LogicFunction::Inv, 1).expect("inv").clone();
        let _ = Library::new(
            "dup".into(),
            vec![
                g.clone(),
                CellGroup::new(
                    LogicFunction::Buf,
                    1,
                    g.cells()
                        .iter()
                        .map(|c| {
                            Cell::new(
                                c.name().to_owned(), // same names -> duplicate
                                LogicFunction::Buf,
                                1,
                                c.drive_index(),
                                c.drive(),
                                c.area(),
                                c.input_cap(),
                                LookupTable2d::from_fn(vec![1.0], vec![1.0], |_, _| 1.0),
                                LookupTable2d::from_fn(vec![1.0], vec![1.0], |_, _| 1.0),
                            )
                        })
                        .collect(),
                ),
            ],
        );
    }

    #[test]
    fn display_mentions_counts() {
        let s = Library::synthetic_90nm().to_string();
        assert!(s.contains("groups") && s.contains("cells"));
    }
}
