//! # vartol-core
//!
//! The paper's primary contribution: **StatisticalGreedy**, a gain-based
//! gate sizing algorithm that reduces the performance *variance* of a
//! technology-mapped circuit under process variation (Neiroukh & Song,
//! DATE 2005, §4).
//!
//! The algorithm (paper Fig. 2):
//!
//! ```text
//! repeat {
//!     FULLSSTA                       // accurate outer analysis
//!     trace critical (WNSS) path
//!     foreach g on WNSS path {
//!         extract subcircuit S around g (2 levels of fanin/fanout)
//!         foreach size I of g {
//!             evaluate Cost(S) with FASSTA    // fast inner engine
//!             keep the best size
//!         }
//!         schedule g for resizing if a better size was found
//!     }
//!     resize scheduled gates
//! } until constraints met or no further improvement
//! ```
//!
//! with the subcircuit cost (eq. 7) `Cost(Oᵢ) = μᵢ + α·σᵢ` maximized over
//! the subcircuit outputs. The weight `α` is the user's μ/σ tradeoff knob:
//! the paper reports results at α = 3 and α = 9, and Fig. 4 sweeps it.
//!
//! The crate also provides the deterministic [`baseline::MeanDelaySizer`]
//! that produces the paper's "original" comparison point (a circuit sized
//! to minimize nominal delay), plus its area-recovery pass.
//!
//! Both sizers are **owned handles**: they hold their library through a
//! shared `Arc` (a plain `&Library` converts by cloning once) and carry
//! no lifetime parameters, so a sizer can be stored in a service, cached
//! between runs, or sent to a worker thread. Internally each run opens an
//! owned [`TimingSession`](vartol_ssta::TimingSession) on a working copy
//! of the netlist and writes the optimized sizes back through the
//! `&mut Netlist` argument.
//!
//! # Example
//!
//! ```
//! use vartol_liberty::Library;
//! use vartol_netlist::generators::ripple_carry_adder;
//! use vartol_core::{SizerConfig, StatisticalGreedy};
//!
//! let lib = Library::synthetic_90nm();
//! let mut netlist = ripple_carry_adder(8, &lib);
//! let sizer = StatisticalGreedy::new(&lib, SizerConfig::with_alpha(3.0));
//! let report = sizer.optimize(&mut netlist);
//! assert!(report.final_moments().std() <= report.initial_moments().std());
//! ```

pub mod baseline;
pub mod config;
pub mod cost;
pub mod greedy;
pub mod report;

pub use baseline::MeanDelaySizer;
pub use config::{PathSelection, SizerConfig};
pub use cost::{moments_cost, subcircuit_cost};
pub use greedy::StatisticalGreedy;
pub use report::{OptimizationReport, PassStats};
